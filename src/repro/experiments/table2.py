"""Experiment E-T2: reproduce Table 2 (locality-model bounds).

Table 2 compares, for the polynomial locality family
``f(n) = n^{1/p}``, ``g = f/γ``, the Theorem 8 lower bound at baseline
cache size ``h = i + b`` against the Theorem 9/10 layer upper bounds
of an equally-split IBLP (``i = b``, i.e. augmentation 2x).  Rows are
the three spatial regimes ``γ ∈ {1, B^{1−1/p}, B}``.

Two views are produced: the *asymptotic coefficients* of the paper's
table (via :func:`repro.bounds.locality.table2_asymptotics`) and a
*finite-size numeric* evaluation of the exact bound expressions, whose
ratios must converge to those coefficients as sizes grow.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import format_table
from repro.bounds.locality import (
    block_layer_fault_upper,
    fault_rate_lower,
    iblp_fault_rate_upper,
    item_layer_fault_upper,
    table2_asymptotics,
)
from repro.locality.functions import PolynomialLocality

__all__ = ["run_asymptotic", "run_numeric", "render"]


def run_asymptotic(p: float = 2.0, B: float = 64.0) -> List[Dict[str, float]]:
    """The paper's leading-order Table 2 entries."""
    rows = table2_asymptotics(p=p, B=B)
    for row in rows:
        row["p"] = p
        row["B"] = B
    return rows


def run_numeric(
    p: float = 2.0, B: float = 64.0, i: float = 4096.0
) -> List[Dict[str, float]]:
    """Exact Theorem 8–11 values for an equal split at finite size.

    ``i = b``; the baseline lower bound uses ``h = i`` — "a cache of
    the same size as each partition", §7.3 — so IBLP's total size is
    ``k = i + b = 2h`` (augmentation 2x).
    """
    b = i
    h = i
    rows: List[Dict[str, float]] = []
    for label, gamma in (
        ("no_spatial", 1.0),
        ("high_spatial", B ** (1.0 - 1.0 / p)),
        ("max_spatial", float(B)),
    ):
        loc = PolynomialLocality(p=p, gamma=gamma).to_bounds()
        lower = fault_rate_lower(loc, h)
        item_ub = item_layer_fault_upper(loc, i)
        block_ub = block_layer_fault_upper(loc, b, B)
        iblp_ub = iblp_fault_rate_upper(loc, i, b, B)
        rows.append(
            {
                "label": label,
                "gamma": gamma,
                "p": p,
                "B": B,
                "i": i,
                "lower_bound": lower,
                "item_layer_ub": item_ub,
                "block_layer_ub": block_ub,
                "iblp_ub": iblp_ub,
                "gap_vs_baseline": iblp_ub / lower if lower else float("inf"),
            }
        )
    return rows


def render(p: float = 2.0, B: float = 64.0, i: float = 4096.0) -> str:
    """Both Table 2 views, formatted."""
    asym = format_table(
        run_asymptotic(p=p, B=B),
        title=f"Table 2 (asymptotic coefficients), p={p:g}, B={B:g}",
    )
    num = format_table(
        run_numeric(p=p, B=B, i=i),
        title=f"\nTable 2 (finite-size bounds), i=b={i:g}, h=i (k=2h)",
    )
    return asym + "\n" + num

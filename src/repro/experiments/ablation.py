"""Experiment E-ABL: design-choice ablations the paper argues for.

Four studies, each pinned to a paper claim:

1. **Layer order** (§5.1): canonical IBLP vs :class:`BlockFirstIBLP`
   on a hot-items-over-streaming-blocks mixture.  Letting temporal
   hits refresh block-layer recency lets a few hot blocks pollute it.
2. **Load granularity** (§4.4): sweep :class:`AThresholdLRU` over
   ``a``; the extremes (1 and B) should dominate the middle under the
   Theorem 4 adversary, and ``a = 1`` should win on spatial workloads.
3. **Eviction granularity** (§4.4): Block cache (block eviction) vs
   IBLP/athreshold (item eviction) on sparse-block traffic.
4. **GCM marking discipline** (§6): GCM vs a marker that ignores
   blocks vs one that marks side loads, on mixed traffic.

Every trace-driven study accepts an optional
:class:`~repro.campaign.CampaignCache`; with one, simulations are
memoized by content address and the whole ablation becomes resumable.
The a-threshold sweep is adaptive-adversarial (no trace to fingerprint)
and always runs live.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.adversary import GeneralAdversary
from repro.analysis.competitive import measure_adversarial
from repro.analysis.tables import format_table
from repro.campaign.integrate import CampaignCache, cached_simulate
from repro.workloads import hot_and_stream

__all__ = [
    "layer_order",
    "athreshold_sweep",
    "eviction_granularity",
    "granularity_sweep",
    "gcm_variants",
    "render",
]


def layer_order(
    k: int = 256,
    B: int = 8,
    length: int = 60_000,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, float]]:
    """§5.1: item-first vs block-first layering on pollution traffic.

    The hazard needs two ingredients: a small hot set whose frequent
    accesses would keep refreshing its blocks' recency, and stream
    reuse that needs nearly the whole block layer.  We interleave a
    hot set of ``k/32`` items (one per block) with enough concurrent
    sequential streams that the block layer only fits them if the hot
    blocks age out — which happens under canonical IBLP (item-layer
    hits never touch block recency) but not under the block-first
    variant (every hot hit re-pins its block).
    """
    import numpy as np

    from repro.core.mapping import FixedBlockMapping
    from repro.core.trace import Trace

    hot_items = max(2, min(8, k // 32))
    block_slots = (k // 2) // B  # block layer of the even split
    # More streams than block-first's post-pollution slots, but no more
    # than the full block layer (canonical fits them once the hot
    # blocks age out).
    streams = block_slots - hot_items // 2
    blocks_per_stream = 32
    hot_blocks = hot_items
    universe = (hot_blocks + streams * blocks_per_stream) * B
    mapping = FixedBlockMapping(universe=universe, block_size=B)
    lap = blocks_per_stream * B
    stream_base = hot_blocks * B
    accesses = [h * B for h in range(hot_items)]  # warm the hot blocks
    cursor = 0
    hot_cursor = 0
    # Deterministic 1:1 interleave: each hot item recurs every
    # 2*hot_items accesses, far more often than block-first's LRU can
    # ever age its block out — the §5.1 pinning in its purest form.
    while len(accesses) < length:
        accesses.append((hot_cursor % hot_items) * B)
        hot_cursor += 1
        s = cursor % streams
        offset = (cursor // streams) % lap
        accesses.append(stream_base + s * lap + offset)
        cursor += 1
    trace = Trace(
        np.asarray(accesses[:length], dtype=np.int64),
        mapping,
        {"generator": "layer_order_pollution"},
    )
    rows = []
    for name in ("iblp", "iblp-blockfirst"):
        res = cached_simulate(cache, name, k, trace, fast=True)
        rows.append(
            {
                "study": "layer_order",
                "policy": name,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
                "spatial_hits": res.spatial_hits,
                "spatial_fraction": res.spatial_fraction,
                "mean_load_set_size": res.mean_load_set_size,
            }
        )
    return rows


def athreshold_sweep(
    k: int = 256, h: int = 48, B: int = 8, cycles: int = 4
) -> List[Dict[str, float]]:
    """§4.4: the a-extremes dominate under the Theorem 4 adversary."""
    from repro.policies import AThresholdLRU

    rows = []
    for a in range(1, B + 1):
        adv = GeneralAdversary(k, h, B)
        m = measure_adversarial(
            adv, lambda mp, a=a: AThresholdLRU(k, mp, a=a), cycles=cycles
        )
        rows.append(
            {
                "study": "athreshold",
                "a": a,
                "ratio": m.ratio_vs_claimed,
            }
        )
    return rows


def eviction_granularity(
    k: int = 256,
    B: int = 8,
    length: int = 60_000,
    seed: int = 5,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, float]]:
    """§4.4: item-granularity eviction vs block eviction on sparse reuse.

    The workload reuses exactly one item per block (working set = k
    items, one per block).  A block-evicting cache keeps only ``k/B``
    useful items; policies that evict items individually — and prefer
    accessed items over never-touched neighbours, as IBLP's item layer
    does structurally — retain far more of the working set.
    """
    import numpy as np

    from repro.core.mapping import FixedBlockMapping
    from repro.core.trace import Trace

    rng = np.random.default_rng(seed)
    n_hot = k  # one hot item per block, exactly cache-sized
    mapping = FixedBlockMapping(universe=n_hot * B, block_size=B)
    items = (rng.integers(0, n_hot, length) * B).astype(np.int64)
    trace = Trace(items, mapping, {"generator": "one_hot_per_block"})
    rows = []
    for name, kwargs in (
        ("block-lru", {}),
        ("athreshold-lru", {"a": 1}),
        ("iblp", {}),
    ):
        res = cached_simulate(cache, name, k, trace, fast=True, **kwargs)
        rows.append(
            {
                "study": "eviction_granularity",
                "policy": name,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
            }
        )
    return rows


def granularity_sweep(
    B: int = 8,
    length: int = 60_000,
    seed: int = 5,
    capacities: tuple = (32, 64, 128, 256, 512, 1024, 2048, 4096),
) -> List[Dict[str, float]]:
    """§4.4 continued: the block-eviction penalty as a function of ``k``.

    Replays :func:`eviction_granularity`'s sparse-reuse trace (one hot
    item per block) under Item-LRU and Block-LRU at every capacity.
    Block eviction wastes ``B - 1`` slots per useful item, so its curve
    lags Item-LRU's by roughly a factor ``B`` in capacity.  Both are
    stack policies, so the full grid collapses into two batched
    multi-capacity replays (``sweep``'s Mattson path) — the whole curve
    costs two stack-distance passes, not 16 replays.
    """
    import numpy as np

    from repro.analysis.sweep import grid, simulate_cell, sweep
    from repro.core.mapping import FixedBlockMapping
    from repro.core.trace import Trace

    rng = np.random.default_rng(seed)
    n_hot = 512  # fixed working set, decoupled from the swept capacity
    mapping = FixedBlockMapping(universe=n_hot * B, block_size=B)
    items = (rng.integers(0, n_hot, length) * B).astype(np.int64)
    trace = Trace(items, mapping, {"generator": "one_hot_per_block"})
    cells = grid(
        policy=["item-lru", "block-lru"],
        capacity=list(capacities),
        trace=[trace],
    )
    return [
        {
            "study": "granularity_sweep",
            "policy": row["policy"],
            "capacity": row["capacity"],
            "misses": row["misses"],
            "miss_ratio": row["miss_ratio"],
        }
        for row in sweep(simulate_cell, cells)
    ]


def gcm_variants(
    k: int = 256,
    B: int = 8,
    length: int = 60_000,
    seed: int = 9,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, float]]:
    """§6: GCM vs block-oblivious marking vs mark-everything."""
    trace = hot_and_stream(
        length=length,
        hot_items=k // 2,
        stream_blocks=4 * k // B,
        block_size=B,
        hot_fraction=0.5,
        seed=seed,
    )
    rows = []
    for name in ("gcm", "gcm-markall", "marking-lru"):
        res = cached_simulate(cache, name, k, trace, fast=True)
        rows.append(
            {
                "study": "gcm_variants",
                "policy": name,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
                "spatial_hits": res.spatial_hits,
                "spatial_fraction": res.spatial_fraction,
                "mean_load_set_size": res.mean_load_set_size,
            }
        )
    return rows


def render(
    k: int = 256, B: int = 8, cache: Optional[CampaignCache] = None
) -> str:
    """All four ablations, formatted.

    With ``cache``, the three trace-driven studies are memoized (and a
    rerun after a crash recomputes only what is missing); the
    adversarial a-threshold sweep always executes live.
    """
    sections = [
        format_table(
            layer_order(k=k, B=B, cache=cache), title="§5.1 layer order"
        ),
        format_table(
            athreshold_sweep(k=k, B=B), title="\n§4.4 a-threshold sweep"
        ),
        format_table(
            eviction_granularity(k=k, B=B, cache=cache),
            title="\n§4.4 eviction granularity",
        ),
        format_table(
            granularity_sweep(B=B),
            title="\n§4.4 block-eviction penalty across cache sizes "
            "(batched Mattson replay)",
        ),
        format_table(
            gcm_variants(k=k, B=B, cache=cache), title="\n§6 GCM variants"
        ),
    ]
    return "\n".join(sections)

"""Experiment E-ABL: design-choice ablations the paper argues for.

Four studies, each pinned to a paper claim:

1. **Layer order** (§5.1): canonical IBLP vs :class:`BlockFirstIBLP`
   on a hot-items-over-streaming-blocks mixture.  Letting temporal
   hits refresh block-layer recency lets a few hot blocks pollute it.
2. **Load granularity** (§4.4): sweep :class:`AThresholdLRU` over
   ``a``; the extremes (1 and B) should dominate the middle under the
   Theorem 4 adversary, and ``a = 1`` should win on spatial workloads.
3. **Eviction granularity** (§4.4): Block cache (block eviction) vs
   IBLP/athreshold (item eviction) on sparse-block traffic.
4. **GCM marking discipline** (§6): GCM vs a marker that ignores
   blocks vs one that marks side loads, on mixed traffic.
5. **Full policy matrix** (§5–§6): every registered online policy —
   20 cells including the parameterized variants — on mixed traffic,
   replayed in one single-pass ``multi_policy_replay`` traversal.

Every trace-driven study accepts an optional
:class:`~repro.campaign.CampaignCache`; with one, simulations are
memoized by content address and the whole ablation becomes resumable.
The a-threshold sweep is adaptive-adversarial (no trace to fingerprint)
and always runs live.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.adversary import GeneralAdversary
from repro.analysis.competitive import measure_adversarial
from repro.analysis.tables import format_table
from repro.campaign.integrate import CampaignCache, cached_serve, cached_simulate
from repro.workloads import hot_and_stream

__all__ = [
    "layer_order",
    "athreshold_sweep",
    "eviction_granularity",
    "granularity_sweep",
    "gcm_variants",
    "policy_matrix",
    "matrix_cells",
    "render",
]


def _serving_columns(
    cache: Optional[CampaignCache],
    policy: str,
    capacity: int,
    trace,
    serving,
    **policy_kwargs,
) -> Dict[str, float]:
    """Optional p50/p99 sojourn columns for one experiment row.

    ``serving`` is a :class:`repro.serving.ServingConfig` (or dict
    form) — ``None`` keeps the row offline-only, so existing tables are
    byte-identical unless serving is requested.  Runs through
    :func:`cached_serve`, so with a campaign cache the request-level
    runs memoize alongside the offline cells.
    """
    if serving is None:
        return {}
    result = cached_serve(
        cache, policy, capacity, trace, serving, **policy_kwargs
    )
    return {"p50_sojourn": result.p50, "p99_sojourn": result.p99}


def layer_order(
    k: int = 256,
    B: int = 8,
    length: int = 60_000,
    cache: Optional[CampaignCache] = None,
    serving=None,
) -> List[Dict[str, float]]:
    """§5.1: item-first vs block-first layering on pollution traffic.

    The hazard needs two ingredients: a small hot set whose frequent
    accesses would keep refreshing its blocks' recency, and stream
    reuse that needs nearly the whole block layer.  We interleave a
    hot set of ``k/32`` items (one per block) with enough concurrent
    sequential streams that the block layer only fits them if the hot
    blocks age out — which happens under canonical IBLP (item-layer
    hits never touch block recency) but not under the block-first
    variant (every hot hit re-pins its block).
    """
    import numpy as np

    from repro.core.mapping import FixedBlockMapping
    from repro.core.trace import Trace

    hot_items = max(2, min(8, k // 32))
    block_slots = (k // 2) // B  # block layer of the even split
    # More streams than block-first's post-pollution slots, but no more
    # than the full block layer (canonical fits them once the hot
    # blocks age out).
    streams = block_slots - hot_items // 2
    blocks_per_stream = 32
    hot_blocks = hot_items
    universe = (hot_blocks + streams * blocks_per_stream) * B
    mapping = FixedBlockMapping(universe=universe, block_size=B)
    lap = blocks_per_stream * B
    stream_base = hot_blocks * B
    accesses = [h * B for h in range(hot_items)]  # warm the hot blocks
    cursor = 0
    hot_cursor = 0
    # Deterministic 1:1 interleave: each hot item recurs every
    # 2*hot_items accesses, far more often than block-first's LRU can
    # ever age its block out — the §5.1 pinning in its purest form.
    while len(accesses) < length:
        accesses.append((hot_cursor % hot_items) * B)
        hot_cursor += 1
        s = cursor % streams
        offset = (cursor // streams) % lap
        accesses.append(stream_base + s * lap + offset)
        cursor += 1
    trace = Trace(
        np.asarray(accesses[:length], dtype=np.int64),
        mapping,
        {"generator": "layer_order_pollution"},
    )
    rows = []
    for name in ("iblp", "iblp-blockfirst"):
        res = cached_simulate(cache, name, k, trace, fast=True)
        rows.append(
            {
                "study": "layer_order",
                "policy": name,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
                "spatial_hits": res.spatial_hits,
                "spatial_fraction": res.spatial_fraction,
                "mean_load_set_size": res.mean_load_set_size,
                **_serving_columns(cache, name, k, trace, serving),
            }
        )
    return rows


def athreshold_sweep(
    k: int = 256, h: int = 48, B: int = 8, cycles: int = 4
) -> List[Dict[str, float]]:
    """§4.4: the a-extremes dominate under the Theorem 4 adversary."""
    from repro.policies import AThresholdLRU

    rows = []
    for a in range(1, B + 1):
        adv = GeneralAdversary(k, h, B)
        m = measure_adversarial(
            adv, lambda mp, a=a: AThresholdLRU(k, mp, a=a), cycles=cycles
        )
        rows.append(
            {
                "study": "athreshold",
                "a": a,
                "ratio": m.ratio_vs_claimed,
            }
        )
    return rows


def eviction_granularity(
    k: int = 256,
    B: int = 8,
    length: int = 60_000,
    seed: int = 5,
    cache: Optional[CampaignCache] = None,
    serving=None,
) -> List[Dict[str, float]]:
    """§4.4: item-granularity eviction vs block eviction on sparse reuse.

    The workload reuses exactly one item per block (working set = k
    items, one per block).  A block-evicting cache keeps only ``k/B``
    useful items; policies that evict items individually — and prefer
    accessed items over never-touched neighbours, as IBLP's item layer
    does structurally — retain far more of the working set.
    """
    import numpy as np

    from repro.core.mapping import FixedBlockMapping
    from repro.core.trace import Trace

    rng = np.random.default_rng(seed)
    n_hot = k  # one hot item per block, exactly cache-sized
    mapping = FixedBlockMapping(universe=n_hot * B, block_size=B)
    items = (rng.integers(0, n_hot, length) * B).astype(np.int64)
    trace = Trace(items, mapping, {"generator": "one_hot_per_block"})
    rows = []
    for name, kwargs in (
        ("block-lru", {}),
        ("athreshold-lru", {"a": 1}),
        ("iblp", {}),
    ):
        res = cached_simulate(cache, name, k, trace, fast=True, **kwargs)
        rows.append(
            {
                "study": "eviction_granularity",
                "policy": name,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
                **_serving_columns(cache, name, k, trace, serving, **kwargs),
            }
        )
    return rows


def granularity_sweep(
    B: int = 8,
    length: int = 60_000,
    seed: int = 5,
    capacities: tuple = (32, 64, 128, 256, 512, 1024, 2048, 4096),
) -> List[Dict[str, float]]:
    """§4.4 continued: the block-eviction penalty as a function of ``k``.

    Replays :func:`eviction_granularity`'s sparse-reuse trace (one hot
    item per block) under Item-LRU and Block-LRU at every capacity.
    Block eviction wastes ``B - 1`` slots per useful item, so its curve
    lags Item-LRU's by roughly a factor ``B`` in capacity.  Both are
    stack policies, so the full grid collapses into two batched
    multi-capacity replays (``sweep``'s Mattson path) — the whole curve
    costs two stack-distance passes, not 16 replays.
    """
    import numpy as np

    from repro.analysis.sweep import grid, simulate_cell, sweep
    from repro.core.mapping import FixedBlockMapping
    from repro.core.trace import Trace

    rng = np.random.default_rng(seed)
    n_hot = 512  # fixed working set, decoupled from the swept capacity
    mapping = FixedBlockMapping(universe=n_hot * B, block_size=B)
    items = (rng.integers(0, n_hot, length) * B).astype(np.int64)
    trace = Trace(items, mapping, {"generator": "one_hot_per_block"})
    cells = grid(
        policy=["item-lru", "block-lru"],
        capacity=list(capacities),
        trace=[trace],
    )
    return [
        {
            "study": "granularity_sweep",
            "policy": row["policy"],
            "capacity": row["capacity"],
            "misses": row["misses"],
            "miss_ratio": row["miss_ratio"],
        }
        for row in sweep(simulate_cell, cells)
    ]


def gcm_variants(
    k: int = 256,
    B: int = 8,
    length: int = 60_000,
    seed: int = 9,
    cache: Optional[CampaignCache] = None,
    serving=None,
) -> List[Dict[str, float]]:
    """§6: GCM vs block-oblivious marking vs mark-everything."""
    trace = hot_and_stream(
        length=length,
        hot_items=k // 2,
        stream_blocks=4 * k // B,
        block_size=B,
        hot_fraction=0.5,
        seed=seed,
    )
    rows = []
    for name in ("gcm", "gcm-markall", "marking-lru"):
        res = cached_simulate(cache, name, k, trace, fast=True)
        rows.append(
            {
                "study": "gcm_variants",
                "policy": name,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
                "spatial_hits": res.spatial_hits,
                "spatial_fraction": res.spatial_fraction,
                "mean_load_set_size": res.mean_load_set_size,
                **_serving_columns(cache, name, k, trace, serving),
            }
        )
    return rows


def matrix_cells(k: int = 256) -> List[tuple]:
    """The full ablation-matrix cells: every registered online policy.

    One default-kwargs cell per kernel-covered policy plus the
    parameterized variants the paper's sections call for (a-threshold
    at ``a=2``, IBLP with a quarter-sized item layer, partial-marking
    GCM loading 4 neighbours) — 20 cells, all with fast kernels, so the
    matrix replays in a single :func:`repro.core.fast`
    ``multi_policy_replay`` traversal.
    """
    from repro.core.fast import FAST_POLICY_NAMES

    cells: List[tuple] = [(name, k) for name in FAST_POLICY_NAMES]
    cells.append(("athreshold-lru", k, {"a": 2}))
    cells.append(("iblp", k, {"item_layer_size": k // 4}))
    cells.append(("gcm-partial", k, {"load_count": 4}))
    return cells


def policy_matrix(
    k: int = 256,
    B: int = 8,
    length: int = 60_000,
    seed: int = 9,
    cache: Optional[CampaignCache] = None,
    serving=None,
) -> List[Dict[str, float]]:
    """The headline comparison: every policy family on mixed traffic.

    The paper's §5–§6 argument pits GCM/Marking/IBLP against the
    item/block baselines; this study runs *all* of them (the 20-cell
    :func:`matrix_cells` grid) over one :func:`hot_and_stream` trace.
    Every cell has a fast kernel, so the whole matrix advances in a
    single shared traversal — via :meth:`CampaignCache.simulate_many`
    when a cache is given (each cell memoized under its own content
    address) and :func:`repro.core.fast.multi_policy_replay` otherwise.
    """
    trace = hot_and_stream(
        length=length,
        hot_items=k // 2,
        stream_blocks=4 * k // B,
        block_size=B,
        hot_fraction=0.5,
        seed=seed,
    )
    cells = matrix_cells(k=k)
    if cache is not None:
        results = cache.simulate_many(cells, trace, fast=True)
    else:
        from repro.core.fast import multi_policy_replay

        results = multi_policy_replay(cells, trace)
    rows = []
    for cell, res in zip(cells, results):
        name = cell[0]
        kwargs = cell[2] if len(cell) == 3 else {}
        variant = (
            name
            if not kwargs
            else name + "[" + ",".join(f"{a}={v}" for a, v in kwargs.items()) + "]"
        )
        rows.append(
            {
                "study": "policy_matrix",
                "policy": variant,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
                "spatial_fraction": res.spatial_fraction,
                "mean_load_set_size": res.mean_load_set_size,
                **_serving_columns(cache, name, k, trace, serving, **kwargs),
            }
        )
    return rows


def render(
    k: int = 256,
    B: int = 8,
    cache: Optional[CampaignCache] = None,
    serving=None,
) -> str:
    """All ablations, formatted.

    With ``cache``, the trace-driven studies are memoized (and a rerun
    after a crash recomputes only what is missing); the adversarial
    a-threshold sweep always executes live.  With ``serving`` (a
    :class:`repro.serving.ServingConfig` or dict), the single-capacity
    studies gain p50/p99 sojourn columns from request-level runs.
    """
    sections = [
        format_table(
            layer_order(k=k, B=B, cache=cache, serving=serving),
            title="§5.1 layer order",
        ),
        format_table(
            athreshold_sweep(k=k, B=B), title="\n§4.4 a-threshold sweep"
        ),
        format_table(
            eviction_granularity(k=k, B=B, cache=cache, serving=serving),
            title="\n§4.4 eviction granularity",
        ),
        format_table(
            granularity_sweep(B=B),
            title="\n§4.4 block-eviction penalty across cache sizes "
            "(batched Mattson replay)",
        ),
        format_table(
            gcm_variants(k=k, B=B, cache=cache, serving=serving),
            title="\n§6 GCM variants",
        ),
        format_table(
            policy_matrix(k=k, B=B, cache=cache, serving=serving),
            title="\n§5–§6 full policy matrix (single-pass multi-policy "
            "replay)",
        ),
    ]
    return "\n".join(sections)

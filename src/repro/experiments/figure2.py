"""Experiment E-F2: the §3 reduction preserves optimal cost (Figure 2).

Runs the worked Figure 2 instance and a battery of random tiny
variable-size-caching instances through the reduction, solving both
sides exactly, and reports the costs side by side.  Equality on every
row is the executable content of the NP-completeness proof's
correctness argument.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.tables import format_table
from repro.offline.exact import solve_gc_exact
from repro.offline.lower_bounds import gc_opt_lower
from repro.offline.heuristics import gc_opt_upper
from repro.offline.reduction import figure2_instance, reduce_vsc_to_gc
from repro.offline.vsc import VSCInstance, solve_vsc_exact

__all__ = ["run", "render", "random_instance"]


def random_instance(rng: np.random.Generator) -> VSCInstance:
    """A random tiny VSC instance solvable by the exact searchers."""
    n = int(rng.integers(2, 4))
    sizes = [int(rng.integers(1, 4)) for _ in range(n)]
    capacity = max(sizes) + int(rng.integers(0, 3))
    trace = [int(rng.integers(n)) for _ in range(int(rng.integers(4, 9)))]
    return VSCInstance.build(sizes, capacity, trace)


def run(trials: int = 10, seed: int = 2022) -> List[Dict[str, object]]:
    """Figure 2's instance plus ``trials`` random ones; costs compared."""
    rows: List[Dict[str, object]] = []
    vsc, reduced = figure2_instance()
    rows.append(_row("figure2", vsc))
    rng = np.random.default_rng(seed)
    for t in range(trials):
        rows.append(_row(f"random{t}", random_instance(rng)))
    return rows


def _row(name: str, vsc: VSCInstance) -> Dict[str, object]:
    reduced = reduce_vsc_to_gc(vsc)
    vsc_opt = solve_vsc_exact(vsc)
    gc_opt = solve_gc_exact(reduced.trace, reduced.capacity)
    return {
        "instance": name,
        "sizes": list(vsc.sizes),
        "capacity": vsc.capacity,
        "vsc_trace_len": len(vsc.trace),
        "gc_trace_len": len(reduced.trace),
        "vsc_opt": vsc_opt,
        "gc_opt": gc_opt,
        "equal": vsc_opt == gc_opt,
        "gc_lower": gc_opt_lower(reduced.trace, reduced.capacity),
        "gc_heuristic_upper": gc_opt_upper(reduced.trace, reduced.capacity),
    }


def render(trials: int = 10, seed: int = 2022) -> str:
    """Formatted reduction-equality table."""
    rows = run(trials=trials, seed=seed)
    ok = all(r["equal"] for r in rows)
    table = format_table(
        rows,
        title="Figure 2 / §3 reduction: variable-size OPT == GC OPT",
    )
    return table + (
        "\nALL EQUAL — reduction preserves optimal cost"
        if ok
        else "\nMISMATCH DETECTED"
    )

"""Executable checks of the schematic figures (1 and 4).

Figures 1 and 4 are diagrams, not data plots; their reproduction is a
pair of scripted micro-traces asserting the engine implements exactly
the pictured semantics:

* **Figure 1** — requesting ``A1`` may load the subset ``{A1, A2}`` of
  block ``{A1, A2, A3}`` for one unit of cost; the later access to
  ``A2`` is a *spatial* hit.
* **Figure 4** — IBLP's two-layer flow: an access missing both layers
  loads the item into the item layer and the whole block into the
  block layer; an item-layer hit does not touch block-layer recency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.engine import Engine
from repro.core.mapping import FixedBlockMapping
from repro.policies import IBLP, AThresholdLRU
from repro.types import HitKind

__all__ = ["figure1_demo", "figure4_demo", "render"]


def figure1_demo() -> List[Dict[str, object]]:
    """Replay Figure 1's subset-load scenario and log what happened."""
    mapping = FixedBlockMapping(universe=12, block_size=3)
    # AThresholdLRU(a=1) loads whole blocks on first miss with item
    # granularity elsewhere — close to the figure's "any subset" cache.
    policy = AThresholdLRU(capacity=6, mapping=mapping, a=1)
    engine = Engine(policy, mapping)
    log: List[Dict[str, object]] = []
    for item in (0, 1, 2, 0):  # A1, A2, A3, A1
        kind = engine.access(item)
        log.append(
            {
                "item": item,
                "kind": kind.value,
                "resident": sorted(engine.resident),
            }
        )
    return log


def figure4_demo() -> List[Dict[str, object]]:
    """Replay Figure 4's layered flow with introspection."""
    mapping = FixedBlockMapping(universe=24, block_size=3)
    policy = IBLP(capacity=8, mapping=mapping, item_layer_size=4)
    engine = Engine(policy, mapping)
    log: List[Dict[str, object]] = []
    script = [
        (0, "full miss: item->item layer, block->block layer"),
        (1, "spatial hit from the block layer"),
        (0, "temporal hit from the item layer (block LRU untouched)"),
        (3, "full miss on a second block"),
        (4, "spatial hit"),
    ]
    for item, expectation in script:
        kind = engine.access(item)
        log.append(
            {
                "item": item,
                "kind": kind.value,
                "expectation": expectation,
                "item_layer": sorted(policy.item_layer_contents()),
                "block_layer": sorted(policy.block_layer_blocks()),
            }
        )
    return log


def render() -> str:
    """Human-readable transcript of both demos."""
    lines = ["Figure 1 semantics (subset loads, spatial hits):"]
    for entry in figure1_demo():
        lines.append(
            f"  access {entry['item']}: {entry['kind']:8s} "
            f"resident={entry['resident']}"
        )
    lines.append("Figure 4 semantics (IBLP layered flow):")
    for entry in figure4_demo():
        lines.append(
            f"  access {entry['item']}: {entry['kind']:8s} "
            f"item_layer={entry['item_layer']} "
            f"block_layer={entry['block_layer']}  # {entry['expectation']}"
        )
    return "\n".join(lines)

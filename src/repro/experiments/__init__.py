"""Experiment drivers: one module per paper artifact.

Every module exposes a ``run(...)`` returning plain row-dicts (and,
for figures, an ASCII rendering), so the same code backs the CLI
(``gc-caching figure 3``), the benches, and EXPERIMENTS.md.

=================  ======================================================
``table1``         Salient bound points (Table 1)
``figure3``        Competitive-ratio curves vs ``h`` (Figure 3)
``figure6``        Fixed vs optimal IBLP splits (Figure 6)
``table2``         Locality-model fault-rate bounds (Table 2)
``figure2``        VSC→GC reduction cost equality (Figure 2 / §3)
``figure5``        LP-vs-closed-form validation (Figure 5 / §5.2)
``adversarial``    Empirical Theorem 2/3/4 ratios (supports Fig. 3)
``locality_exp``   Empirical Theorem 8–11 fault rates (supports Tab. 2)
``ablation``       §4.4/§5.1/§6 design-choice ablations
``schematics``     Executable Figures 1 & 4 semantics checks
``size_dependence`` §5.3/§6.2: competitiveness depends on comparison size
``latency_vs_load`` Request-level p50/p99/p999 latency at offered load
``sampled_mrc``    SHARDS-sampled vs exact MRC error bounds
``spatial_degradation`` Cluster sharding vs spatial locality (hash schemes)
``isolation``      Multi-tenant partitioning configurations on a cluster
=================  ======================================================
"""

from repro.experiments import (  # noqa: F401 (re-export modules)
    ablation,
    adversarial,
    figure2,
    figure3,
    figure5,
    figure6,
    gcm_analysis,
    isolation,
    latency_vs_load,
    locality_exp,
    sampled_mrc,
    scale_check,
    schematics,
    size_dependence,
    spatial_degradation,
    table1,
    table2,
)

__all__ = [
    "table1",
    "table2",
    "figure2",
    "figure3",
    "figure5",
    "figure6",
    "adversarial",
    "locality_exp",
    "ablation",
    "schematics",
    "size_dependence",
    "scale_check",
    "gcm_analysis",
    "latency_vs_load",
    "sampled_mrc",
    "spatial_degradation",
    "isolation",
]

"""Scale-stability check for the empirical adversary experiments.

DESIGN.md substitutes simulator-scale `(k, h, B)` for the paper's
`k = 1.28M, B = 64` on the grounds that every bound is an explicit
function of the parameters, so the measured/bound ratio should be
scale-invariant (up to the proofs' own `⌈·⌉` slop, which shrinks as
`(k-h+1)/B` grows).  This experiment measures exactly that: the
Theorem 2 and Theorem 4 adversaries against their pinned policies over
a grid of scales, reporting ``measured/bound`` per cell.

Runs through :func:`repro.analysis.sweep.sweep`, optionally with
process parallelism (cells are independent games).
"""

from __future__ import annotations

from typing import Dict, List

from repro.adversary import GeneralAdversary, ItemCacheAdversary
from repro.analysis.competitive import measure_adversarial
from repro.analysis.sweep import grid, sweep
from repro.analysis.tables import format_table
from repro.bounds.lower import gc_general_lower, item_cache_lower
from repro.policies import IBLP, ItemLRU

__all__ = ["scale_cell", "run", "render"]


def scale_cell(k: int, h_frac: float, B: int, cycles: int = 3) -> Dict[str, float]:
    """One grid cell: both adversaries at scale ``(k, h = h_frac·k, B)``."""
    h = max(B + 1, int(h_frac * k))
    adv2 = ItemCacheAdversary(k, h, B)
    m2 = measure_adversarial(adv2, lambda mp: ItemLRU(k, mp), cycles=cycles)
    adv4 = GeneralAdversary(k, h, B)
    m4 = measure_adversarial(adv4, lambda mp: IBLP(k, mp), cycles=cycles)
    thm2 = item_cache_lower(k, h, B)
    thm4 = gc_general_lower(k, h, B)
    return {
        "h": h,
        "thm2_measured": m2.ratio_vs_claimed,
        "thm2_bound": thm2,
        "thm2_fidelity": m2.ratio_vs_claimed / thm2,
        "thm4_measured": m4.ratio_vs_claimed,
        "thm4_bound": thm4,
        "thm4_fidelity": m4.ratio_vs_claimed / thm4,
    }


def run(parallel: bool = False, cycles: int = 3) -> List[Dict[str, float]]:
    """Sweep scales from tiny to simulator-large."""
    cells = grid(
        k=[64, 128, 256, 512],
        h_frac=[0.125, 0.25],
        B=[4, 8],
        cycles=[cycles],
    )
    # scale_cell is a module-level function, so the sweep can fan out
    # across processes when parallel=True.
    return sweep(scale_cell, cells, parallel=parallel)


def render(parallel: bool = False) -> str:
    """Formatted fidelity table across scales."""
    rows = run(parallel=parallel)
    worst = min(
        min(r["thm2_fidelity"], r["thm4_fidelity"]) for r in rows
    )
    return (
        format_table(rows, title="Scale stability: measured/bound per scale")
        + f"\nworst fidelity across scales: {worst:.3f} (1.0 = exact)"
    )

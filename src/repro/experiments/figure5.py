"""Experiment E-F5: validate the §5.2 LP analysis (Figure 5).

Figure 5 illustrates the worst-case access pattern behind Theorems
5–7: temporal hits pinning ``i`` space and spatial hits forming the
``b/B + 1`` triangle.  The executable counterpart solves the linear
programs numerically (:mod:`repro.analysis.lp`) across a parameter
sweep and compares against the closed forms:

* Theorems 5 and 6 must match the numeric optimum exactly;
* Theorem 7's closed form must upper-bound the numeric optimum, with
  equality whenever the paper's interior solution is feasible
  (its optimal ``r`` is non-negative).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.lp import thm5_numeric, thm6_numeric, thm7_numeric
from repro.analysis.tables import format_table
from repro.bounds.upper import (
    iblp_block_layer_upper,
    iblp_item_layer_upper,
    iblp_ratio,
)

__all__ = ["run", "render", "paper_interior_r"]


def paper_interior_r(i: float, b: float, h: float, B: float) -> float:
    """The interior-optimal ``r`` from Theorem 7's proof.

    ``r = (b + B(4h - 2i - 1)) / (b + B(2i - 1))`` — when negative the
    closed form sits outside the feasible region and is loose.
    """
    return (b + B * (4 * h - 2 * i - 1)) / (b + B * (2 * i - 1))


def run(B: float = 16.0) -> List[Dict[str, float]]:
    """Sweep (i, b, h) and compare numeric LP optima to closed forms."""
    cases = [
        (200.0, 200.0, 50.0),
        (100.0, 1000.0, 60.0),
        (500.0, 100.0, 80.0),
        (1000.0, 1000.0, 30.0),
        (64.0, 64.0, 20.0),
        (256.0, 768.0, 100.0),
        (3000.0, 200.0, 500.0),
    ]
    rows: List[Dict[str, float]] = []
    for i, b, h in cases:
        lp5 = thm5_numeric(i, h)
        lp6 = thm6_numeric(b, h, B)
        lp7 = thm7_numeric(i, b, h, B)
        closed7 = iblp_ratio(i, b, h, B)
        rows.append(
            {
                "i": i,
                "b": b,
                "h": h,
                "B": B,
                "thm5_lp": lp5.ratio,
                "thm5_closed": iblp_item_layer_upper(i, h),
                "thm6_lp": lp6.ratio,
                "thm6_closed": iblp_block_layer_upper(b, h, B),
                "thm7_lp": lp7.ratio,
                "thm7_closed": closed7,
                "thm7_t_star": lp7.t,
                "thm7_r_star": lp7.r,
                "interior_r": paper_interior_r(i, b, h, B),
                "closed_is_upper": lp7.ratio <= closed7 * (1 + 1e-6),
            }
        )
    return rows


def render(B: float = 16.0) -> str:
    """Formatted LP-validation table."""
    rows = run(B=B)
    ok = all(r["closed_is_upper"] for r in rows)
    return format_table(
        rows,
        title=f"Figure 5 / §5.2 LP validation (B={B:g})",
    ) + ("\nclosed forms upper-bound numeric optima: OK" if ok else "\nVIOLATION")

"""Experiment E-ISOLATION: multi-tenant partitioning on a GC cluster.

A shared cache serving a temporal tenant (Zipf keys) next to a spatial
tenant (Markov within-block walks) faces two entangled problems: the
tenants *compete for capacity*, and no single policy exploits both
tenants' locality structure.  This experiment separates the two by
running the same tenant mix through four configurations, mirroring the
cache_ext-style "right policy per workload" argument:

``shared``
    One pool, one generic policy (item-LRU) — the baseline everything
    else is compared against.  Tenants interfere freely.
``static-lru``
    Static 50/50 capacity split, item-LRU on both sides — isolates
    *capacity* interference only.
``static-iblp``
    Same split, IBLP on both sides — one granularity-aware policy for
    everyone, still no per-tenant specialization.
``per-tenant``
    The full split: each tenant gets its share *and* its own policy
    (item-LRU for the temporal tenant, IBLP for the spatial one).

The headline is the spatial tenant's miss ratio falling monotonically
across the columns — most of the win appears only in ``per-tenant``,
because the spatial tenant needs a policy that loads whole-block
neighbourhoods, not merely its own slice of capacity.  Per-tenant
taxonomies come from the replay's exact hit-kind attribution
(:func:`repro.cluster.replay_multitenant`), so the numbers are
referee-grade, not sampled.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.tables import format_table
from repro.campaign.integrate import CampaignCache
from repro.cluster import ClusterSpec, replay_multitenant
from repro.core.trace import Trace
from repro.workloads import markov_spatial, zipf_items

__all__ = ["run", "render", "default_tenants", "CONFIGS"]

#: The four partitioning configurations:
#: name → (tenancy mode, base policy, per-tenant policy overrides).
CONFIGS: Tuple[Tuple[str, str, str, Optional[Dict[str, str]]], ...] = (
    ("shared", "shared", "item-lru", None),
    ("static-lru", "static", "item-lru", None),
    ("static-iblp", "static", "iblp", None),
    (
        "per-tenant",
        "per-tenant",
        "item-lru",
        {"temporal": "item-lru", "spatial": "iblp"},
    ),
)


def default_tenants(
    length: int = 40_000,
    universe: int = 2048,
    block_size: int = 8,
    seed: int = 7,
) -> Dict[str, Trace]:
    """The canonical antagonistic pair.

    ``temporal`` reuses a small hot set (Zipf α=1.1 — item-LRU's home
    turf); ``spatial`` walks within blocks (Markov stay=0.9 — worthless
    to an item policy, gold to a granularity-aware one).
    """
    return {
        "temporal": zipf_items(
            length=length,
            universe=universe,
            block_size=block_size,
            alpha=1.1,
            seed=seed,
        ),
        "spatial": markov_spatial(
            length=length,
            universe=universe,
            block_size=block_size,
            stay=0.9,
            seed=seed + 1,
        ),
    }


def run(
    capacity: int = 256,
    n_shards: int = 4,
    scheme: str = "block",
    tenants: Optional[Mapping[str, Trace]] = None,
    fast: bool = True,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, Any]]:
    """One row per configuration: cluster-wide and per-tenant taxonomy."""
    tenants = dict(tenants) if tenants is not None else default_tenants()
    spec = ClusterSpec(n_shards=n_shards, scheme=scheme)
    rows: List[Dict[str, Any]] = []
    for name, mode, policy, overrides in CONFIGS:
        if cache is not None:
            result = cache.cluster_multitenant(
                tenants,
                mode,
                policy,
                capacity,
                spec,
                policies=overrides,
                fast=fast,
            )
        else:
            result = replay_multitenant(
                tenants,
                mode,
                policy,
                capacity,
                spec,
                policies=overrides,
                fast=fast,
            )
        row: Dict[str, Any] = {
            "config": name,
            "mode": mode,
            "policy": policy if overrides is None else "mixed",
            "shards": n_shards,
            "scheme": scheme,
            "capacity": capacity,
            "miss_ratio": result.sim.miss_ratio,
            "spatial_fraction": result.sim.spatial_fraction,
        }
        for tenant in tenants:
            row[f"miss_ratio_{tenant}"] = result.tenant_miss_ratio(tenant)
            row[f"spatial_fraction_{tenant}"] = result.tenant_spatial_fraction(
                tenant
            )
        rows.append(row)
    return rows


def render(
    capacity: int = 256,
    n_shards: int = 4,
    scheme: str = "block",
    cache: Optional[CampaignCache] = None,
    **kwargs: Any,
) -> str:
    """Formatted four-configuration isolation table."""
    rows = run(
        capacity=capacity,
        n_shards=n_shards,
        scheme=scheme,
        cache=cache,
        **kwargs,
    )
    tenant_names = sorted(
        {
            key[len("miss_ratio_") :]
            for row in rows
            for key in row
            if key.startswith("miss_ratio_")
        }
    )
    pretty = []
    for r in rows:
        out = {
            "config": r["config"],
            "policy": r["policy"],
            "miss%": f"{100 * r['miss_ratio']:.1f}",
        }
        for tenant in tenant_names:
            out[f"{tenant} miss%"] = f"{100 * r[f'miss_ratio_{tenant}']:.1f}"
            out[f"{tenant} sp%"] = (
                f"{100 * r[f'spatial_fraction_{tenant}']:.1f}"
            )
        pretty.append(out)
    return format_table(
        pretty,
        title=(
            f"Multi-tenant isolation on a {n_shards}-shard {scheme} cluster "
            f"(capacity={capacity})"
        ),
    )

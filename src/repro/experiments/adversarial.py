"""Experiment E-EMP: empirical competitive ratios (supports Figure 3).

Plays every §4 adversary against the policy zoo at simulator-friendly
scale and compares the certified empirical ratios with the closed-form
bounds.  Expectations the rows encode:

* The Sleator–Tarjan adversary pins LRU at exactly ``k/(k-h+1)``.
* Theorem 2's adversary pushes every item-granularity policy to
  ``≈ B(k-B+1)/(k-h+1)`` — and *fails* against block-loading policies.
* Theorem 3's adversary pushes Block-LRU to ``≈ k/(k-B(h-1))``.
* Theorem 4's adversary probes each policy's ``a`` and realizes
  ``(a(k-h+1)+B(h-a))/(k-h+1)`` against it; IBLP lands near the
  ``a = 1`` minimum, i.e. close to the general lower bound.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.adversary import (
    BlockCacheAdversary,
    GeneralAdversary,
    ItemCacheAdversary,
    SleatorTarjanAdversary,
)
from repro.analysis.competitive import measure_adversarial
from repro.analysis.tables import format_table
from repro.bounds.lower import (
    block_cache_lower,
    gc_general_lower,
    general_a_lower,
    item_cache_lower,
)
from repro.bounds.traditional import sleator_tarjan_lower
from repro.bounds.upper import iblp_optimal_item_layer, iblp_optimal_ratio
from repro.policies import (
    GCM,
    IBLP,
    AThresholdLRU,
    BlockLRU,
    ItemFIFO,
    ItemLRU,
    MarkingLRU,
)

__all__ = ["run", "render", "default_policies"]


def default_policies(k: int, h: int, B: int) -> Dict[str, Callable]:
    """Policy factories (mapping -> policy) for the standard line-up."""
    i_star = max(h + 1, min(k, round(iblp_optimal_item_layer(k, h, B))))
    return {
        "item-lru": lambda m: ItemLRU(k, m),
        "item-fifo": lambda m: ItemFIFO(k, m),
        "block-lru": lambda m: BlockLRU(k, m),
        "iblp-even": lambda m: IBLP(k, m),
        "iblp-opt": lambda m: IBLP(k, m, item_layer_size=i_star),
        "athreshold-a4": lambda m: AThresholdLRU(k, m, a=min(4, B)),
        "marking-lru": lambda m: MarkingLRU(k, m),
        "gcm": lambda m: GCM(k, m),
    }


def run(
    k: int = 256, h: int = 48, B: int = 8, cycles: int = 4
) -> List[Dict[str, float]]:
    """All four adversaries against the standard policy line-up."""
    rows: List[Dict[str, float]] = []
    policies = default_policies(k, h, B)
    adversaries = {
        "sleator_tarjan": (
            lambda: SleatorTarjanAdversary(k, h, B),
            sleator_tarjan_lower(k, h),
        ),
        "thm2_item": (
            lambda: ItemCacheAdversary(k, h, B),
            item_cache_lower(k, h, B),
        ),
        "thm4_general": (
            lambda: GeneralAdversary(k, h, B),
            gc_general_lower(k, h, B),
        ),
    }
    for adv_name, (mk_adv, bound) in adversaries.items():
        for pol_name, factory in policies.items():
            adv = mk_adv()
            m = measure_adversarial(adv, factory, cycles=cycles)
            row = {
                "adversary": adv_name,
                "policy": pol_name,
                "ratio": m.ratio_vs_claimed,
                "target_bound": bound,
                "k": k,
                "h": h,
                "B": B,
            }
            if adv_name == "thm4_general" and isinstance(adv, GeneralAdversary):
                a_max = max(max(c) for c in adv.probed_a)
                row["probed_a"] = a_max
                row["thm4_at_a"] = general_a_lower(k, h, B, a_max)
                row["iblp_upper"] = iblp_optimal_ratio(k, h, B)
            rows.append(row)
    # Theorem 3 wants a small h (Block caches need k > B(h-1)).
    h3 = max(2, k // (2 * B))
    for pol_name, factory in default_policies(k, h3, B).items():
        adv = BlockCacheAdversary(k, h3, B)
        m = measure_adversarial(adv, factory, cycles=cycles)
        rows.append(
            {
                "adversary": "thm3_block",
                "policy": pol_name,
                "ratio": m.ratio_vs_claimed,
                "target_bound": block_cache_lower(k, h3, B),
                "k": k,
                "h": h3,
                "B": B,
            }
        )
    return rows


def render(k: int = 256, h: int = 48, B: int = 8, cycles: int = 4) -> str:
    """Formatted empirical-ratio table."""
    return format_table(
        run(k=k, h=h, B=B, cycles=cycles),
        title=f"Empirical adversarial ratios (k={k}, h={h}, B={B})",
    )

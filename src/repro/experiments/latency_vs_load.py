"""Experiment E-SERVE: tail latency at offered load.

The paper motivates granularity change with hierarchies where what a
user feels is a miss's *latency*, not the miss count.  This experiment
asks the question the offline artifacts cannot: at a fixed capacity on
a spatially-structured workload, does granularity-aware loading (IBLP)
beat an item-granularity policy (item-LRU) on p99 *latency* — and how
does the gap scale as offered load approaches saturation?

Each row serves the same seeded trace through one policy at one
Poisson arrival rate (rates are expressed as a fraction of the
single-server service capacity a policy-agnostic all-miss run would
have, so the sweep brackets saturation for every service model).  All
randomness is seeded, so rows are bit-identical across runs; with a
``cache`` (a campaign directory) each (policy × rate) cell is
content-addressed — including the serving config — and a killed sweep
resumes without recomputation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.campaign.integrate import CampaignCache
from repro.cluster import ClusterSpec
from repro.cluster.serving_bridge import serve_cluster
from repro.core.trace import Trace
from repro.serving import ArrivalSpec, ServiceModel, ServingConfig, serve_policy
from repro.workloads import markov_spatial

__all__ = ["run", "render", "default_trace", "serving_config"]

#: Load points as fractions of the all-miss single-server capacity.
DEFAULT_LOADS = (0.2, 0.5, 0.8, 0.95)
DEFAULT_POLICIES = ("item-lru", "iblp")


def default_trace(
    length: int = 60_000,
    universe: int = 4096,
    block_size: int = 8,
    stay: float = 0.85,
    seed: int = 7,
) -> Trace:
    """The experiment's spatial workload: block-local Markov runs.

    High ``stay`` produces long intra-block runs — the regime where a
    spatial load turns would-be misses into spatial hits, i.e. where
    granularity change pays in latency, not just miss count.
    """
    return markov_spatial(
        length=length,
        universe=universe,
        block_size=block_size,
        stay=stay,
        seed=seed,
    )


def serving_config(
    rate: float,
    t_hit: float = 1.0,
    t_miss: float = 100.0,
    t_item: float = 1.0,
    concurrency: int = 4,
    seed: int = 1,
) -> ServingConfig:
    """Poisson open-loop serving config for one load point."""
    return ServingConfig(
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=seed),
        service=ServiceModel(t_hit=t_hit, t_miss=t_miss, t_item=t_item),
        concurrency=concurrency,
    )


def run(
    capacity: int = 256,
    loads: Sequence[float] = DEFAULT_LOADS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    trace: Optional[Trace] = None,
    t_hit: float = 1.0,
    t_miss: float = 100.0,
    t_item: float = 1.0,
    concurrency: int = 4,
    arrival_seed: int = 1,
    clusters: Optional[Sequence[ClusterSpec]] = None,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, Any]]:
    """Latency-vs-load grid: one row per (load × policy [× cluster]).

    ``loads`` are occupancies relative to the worst-case (all-miss)
    service rate ``concurrency / (t_hit + t_miss)``; the actual
    utilization each policy sees is lower in proportion to the latency
    it saves, and is reported in the row.

    With ``clusters`` given, every (load × policy) point additionally
    runs once per :class:`~repro.cluster.ClusterSpec` with requests
    dispatched across that cluster's shards
    (:func:`~repro.cluster.serving_bridge.serve_cluster`) — arrivals
    and servers are identical, so the tail-latency difference between
    hash schemes is purely the cache behaviour they produce.
    """
    trace = trace if trace is not None else default_trace()
    worst_case_rate = concurrency / (t_hit + t_miss)
    variants: List[Optional[ClusterSpec]] = (
        [None] if not clusters else list(clusters)
    )
    rows: List[Dict[str, Any]] = []
    for load in loads:
        rate = load * worst_case_rate
        config = serving_config(
            rate,
            t_hit=t_hit,
            t_miss=t_miss,
            t_item=t_item,
            concurrency=concurrency,
            seed=arrival_seed,
        )
        for policy in policies:
            for spec in variants:
                if spec is None:
                    if cache is not None:
                        result = cache.serve(policy, capacity, trace, config)
                    else:
                        result = serve_policy(policy, capacity, trace, config)
                elif cache is not None:
                    result = cache.cluster(
                        policy, capacity, trace, spec, serving=config
                    )
                else:
                    result = serve_cluster(
                        policy, capacity, trace, spec, config
                    )
                row = {
                    "load": load,
                    "rate": rate,
                    "policy": policy,
                    "capacity": capacity,
                    "miss_ratio": result.sim.miss_ratio,
                    "spatial_fraction": result.sim.spatial_fraction,
                    "utilization": result.utilization,
                    "mean_latency": result.mean_latency,
                    "p50": result.p50,
                    "p99": result.p99,
                    "p999": result.p999,
                    "p99_miss": result.latency_by_kind["miss"].p99,
                }
                if spec is not None:
                    row["shards"] = spec.n_shards
                    row["scheme"] = spec.scheme
                rows.append(row)
    return rows


def render(
    capacity: int = 256,
    loads: Sequence[float] = DEFAULT_LOADS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    cache: Optional[CampaignCache] = None,
    **kwargs: Any,
) -> str:
    """Formatted latency-vs-load table."""
    rows = run(
        capacity=capacity, loads=loads, policies=policies, cache=cache, **kwargs
    )
    clustered = any("shards" in r for r in rows)
    pretty = [
        {
            "load": f"{r['load']:.2f}",
            "policy": r["policy"],
            **(
                {"cluster": f"{r['shards']}x{r['scheme']}"}
                if "shards" in r
                else ({"cluster": "single"} if clustered else {})
            ),
            "miss%": f"{100 * r['miss_ratio']:.1f}",
            "spatial%": f"{100 * r['spatial_fraction']:.1f}",
            "util": f"{r['utilization']:.2f}",
            "mean": f"{r['mean_latency']:.1f}",
            "p50": f"{r['p50']:.1f}",
            "p99": f"{r['p99']:.1f}",
            "p999": f"{r['p999']:.1f}",
        }
        for r in rows
    ]
    return format_table(
        pretty,
        title=f"Tail latency vs offered load (capacity={capacity})",
    )

"""Experiment E-F6: reproduce Figure 6 (fixed vs optimal IBLP splits).

Figure 6 plots Theorem 7's upper bound as a function of the optimal
cache size ``h`` for several *fixed* layer splits, against the
envelope obtained by re-optimizing the split for every ``h`` (§5.3).
The paper's observation: a fixed split is optimal at exactly one
``h``, degrades significantly for larger ``h``, and improves only
marginally for smaller ``h`` — the "unknown optimal size" problem
unique to GC caching.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.bounds.upper import (
    iblp_optimal_item_layer,
    iblp_optimal_ratio,
    iblp_ratio,
)

__all__ = ["run", "render", "PAPER_K", "PAPER_B"]

PAPER_K = 1_280_000
PAPER_B = 64


def run(
    k: int = PAPER_K,
    B: int = PAPER_B,
    fixed_for_h: Sequence[float] | None = None,
    points: int = 100,
) -> List[Dict[str, float]]:
    """Evaluate fixed-split curves against the optimal envelope.

    ``fixed_for_h`` lists the ``h`` values each fixed split is tuned
    for (default: ``k/1000``, ``k/100``, ``k/10``); the splits are
    ``i* = iblp_optimal_item_layer(k, h0, B)``.
    """
    if fixed_for_h is None:
        fixed_for_h = [k / 1000, k / 100, k / 10]
    splits = {
        f"fixed_i_for_h={h0:g}": iblp_optimal_item_layer(k, float(h0), B)
        for h0 in fixed_for_h
    }
    hs = np.unique(
        np.round(
            np.logspace(math.log10(B + 1.0), math.log10(k * 0.6), num=points)
        ).astype(np.int64)
    )
    rows: List[Dict[str, float]] = []
    for h in hs:
        h = float(h)
        row: Dict[str, float] = {"h": h, "optimal_split": iblp_optimal_ratio(k, h, B)}
        for label, i in splits.items():
            row[label] = iblp_ratio(i, k - i, h, B)
        rows.append(row)
    return rows


def render(k: int = PAPER_K, B: int = PAPER_B, points: int = 100) -> str:
    """ASCII rendering of Figure 6."""
    rows = run(k=k, B=B, points=points)
    hs = [r["h"] for r in rows]
    series = {
        name: (hs, [r[name] for r in rows])
        for name in rows[0]
        if name != "h"
    }
    return line_plot(
        series,
        title=(
            f"Figure 6 reproduction: fixed vs optimal IBLP splits "
            f"(k={k:,}, B={B})"
        ),
        xlabel="h (optimal cache size)",
        ylabel="competitive ratio (upper bound)",
    )

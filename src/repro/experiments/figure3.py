"""Experiment E-F3: reproduce Figure 3 (bounds vs optimal cache size).

Sweeps the offline cache size ``h`` at the paper's exact parameters
(``k = 1.28M``, ``B = 64``) and evaluates the four curves:

* the Sleator–Tarjan bound (traditional caching),
* the Item Cache lower bound (Theorem 2),
* the Block Cache lower bound (Theorem 3; infinite for
  ``h > k/B + 1``),
* the general GC lower bound (Theorem 4 at the best ``a``), and
* the IBLP upper bound with the optimal split (§5.3).

The figure's qualitative claims are checked numerically:
IBLP's upper bound beats the Item Cache's *lower* bound for
``k ≳ 3h`` and the Block Cache's for ``k ≲ 4Bh``, and stays within a
small factor of the general lower bound everywhere.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.ascii_plot import line_plot
from repro.bounds.lower import (
    block_cache_lower,
    gc_general_lower,
    item_cache_lower,
)
from repro.bounds.traditional import sleator_tarjan_lower
from repro.bounds.upper import iblp_optimal_ratio
from repro.errors import SolverError

__all__ = ["run", "render", "crossovers", "PAPER_K", "PAPER_B"]

#: Figure 3's parameters: k = 1.28M items, B = 64.
PAPER_K = 1_280_000
PAPER_B = 64


def run(
    k: int = PAPER_K, B: int = PAPER_B, points: int = 120
) -> List[Dict[str, float]]:
    """Evaluate all five curves on a log grid of ``h`` in ``[B+1, k]``."""
    hs = np.unique(
        np.round(
            np.logspace(math.log10(B + 1), math.log10(k * 0.98), num=points)
        ).astype(np.int64)
    )
    rows: List[Dict[str, float]] = []
    for h in hs:
        h = float(h)
        rows.append(
            {
                "h": h,
                "sleator_tarjan": sleator_tarjan_lower(k, h),
                "item_lower": item_cache_lower(k, h, B),
                "block_lower": block_cache_lower(k, h, B),
                "gc_lower": gc_general_lower(k, h, B),
                "iblp_upper": iblp_optimal_ratio(k, h, B),
            }
        )
    return rows


def crossovers(k: int = PAPER_K, B: int = PAPER_B) -> Dict[str, Optional[float]]:
    """Locate the crossover points the §5.3 discussion quotes.

    Returns ``k/h`` at the smallest ``h`` where IBLP's upper bound
    drops below the Item Cache lower bound (paper: ``k ≈ 3h``), and
    the largest ``h`` where it is below the Block Cache lower bound
    (paper: ``k ≈ 4Bh``); ``None`` if no crossing exists in range.
    """
    from scipy.optimize import brentq

    item_gap = lambda h: iblp_optimal_ratio(k, h, B) - item_cache_lower(k, h, B)

    def block_gap(h: float) -> float:
        blk = block_cache_lower(k, h, B)
        if math.isinf(blk):
            return -1.0
        return iblp_optimal_ratio(k, h, B) - blk

    out: Dict[str, Optional[float]] = {"item_crossover_k_over_h": None,
                                       "block_crossover_k_over_h": None}
    lo, hi = float(B + 1), k * 0.98
    try:
        if item_gap(lo) * item_gap(hi) < 0:
            h_star = brentq(item_gap, lo, hi, xtol=1e-3)
            out["item_crossover_k_over_h"] = k / h_star
    except (ValueError, SolverError):  # pragma: no cover - defensive
        pass
    try:
        hi_blk = k / B - 1  # block bound finite only below k/B + 1
        if hi_blk > lo and block_gap(lo) * block_gap(hi_blk) < 0:
            h_star = brentq(block_gap, lo, hi_blk, xtol=1e-3)
            out["block_crossover_k_over_h"] = k / h_star
    except (ValueError, SolverError):  # pragma: no cover - defensive
        pass
    return out


def render(k: int = PAPER_K, B: int = PAPER_B, points: int = 120) -> str:
    """ASCII rendering of Figure 3 plus the crossover summary."""
    rows = run(k=k, B=B, points=points)
    hs = [r["h"] for r in rows]
    series = {}
    for name in ("sleator_tarjan", "item_lower", "block_lower", "gc_lower", "iblp_upper"):
        series[name] = (hs, [r[name] for r in rows])
    plot = line_plot(
        series,
        title=f"Figure 3 reproduction: competitive ratio vs h (k={k:,}, B={B})",
        xlabel="h (optimal cache size)",
        ylabel="competitive ratio",
    )
    cx = crossovers(k=k, B=B)
    extra = [
        "",
        f"IBLP beats Item Cache LB for k/h >= "
        f"{cx['item_crossover_k_over_h']:.2f} (paper: ~3)"
        if cx["item_crossover_k_over_h"]
        else "no item crossover in range",
        f"IBLP beats Block Cache LB for k/h <= "
        f"{cx['block_crossover_k_over_h']:.1f} (paper: ~4B = {4 * B})"
        if cx["block_crossover_k_over_h"]
        else "no block crossover in range",
    ]
    return plot + "\n" + "\n".join(extra)

"""Experiment E-LOC: locality-model validation (supports Table 2).

Generates phase traces consistent with polynomial locality families,
re-profiles them empirically (the measured f/g must not exceed the
targets), then checks the Theorem 8–11 story against measured fault
rates:

* every deterministic policy's fault rate on the adversarial phase
  trace is at least Theorem 8's bound;
* IBLP's fault rate on *any* trace with this profile is at most
  Theorem 11's bound evaluated on the *empirical* profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.adversary import LocalityAdversary
from repro.analysis.tables import format_table
from repro.bounds.locality import (
    fault_rate_lower,
    iblp_fault_rate_upper,
)
from repro.campaign.integrate import CampaignCache, cached_simulate
from repro.locality.functions import PolynomialLocality
from repro.locality.generator import phase_trace
from repro.locality.profile import profile_trace
from repro.policies import IBLP, BlockLRU, ItemLRU, MarkingLRU

__all__ = ["run", "render"]


def run(
    k: int = 48,
    B: int = 4,
    p: float = 2.0,
    phases: int = 4,
    cache: Optional[CampaignCache] = None,
    serving=None,
) -> List[Dict[str, float]]:
    """Adversarial + generated traces across the three spatial regimes.

    The adaptive-adversarial rows always execute live (the adversary
    reacts to the policy, so there is no trace to fingerprint); the
    generated-trace IBLP measurement is memoized through ``cache``.
    With ``serving`` (a :class:`repro.serving.ServingConfig` or dict),
    the generated-trace rows gain p50/p99 sojourn columns — adversarial
    rows stay offline-only, having no replayable trace to serve.
    """
    rows: List[Dict[str, float]] = []
    for label, gamma in (
        ("no_spatial", 1.0),
        ("high_spatial", B ** (1.0 - 1.0 / p)),
        ("max_spatial", float(B)),
    ):
        family = PolynomialLocality(p=p, gamma=gamma)
        bounds = family.to_bounds()
        thm8 = fault_rate_lower(bounds, k)
        # Adaptive adversarial phases against each policy.
        for pol_name, factory in (
            ("item-lru", lambda m: ItemLRU(k, m)),
            ("block-lru", lambda m: BlockLRU(k, m)),
            ("iblp", lambda m: IBLP(k, m)),
            ("marking-lru", lambda m: MarkingLRU(k, m)),
        ):
            adv = LocalityAdversary(
                k, B, f_inverse=family.f_inverse, g=family.g
            )
            run_ = adv.run(factory(adv.make_mapping(phases)), cycles=phases)
            rows.append(
                {
                    "regime": label,
                    "gamma": gamma,
                    "source": "adversarial",
                    "policy": pol_name,
                    "fault_rate": run_.notes["fault_rate"],
                    "thm8_lower": thm8,
                    "thm11_upper_iblp": iblp_fault_rate_upper(
                        bounds, k // 2, k - k // 2, B
                    ),
                }
            )
        # Non-adaptive generated trace; measure IBLP against the bound
        # computed from the trace's own *empirical* profile.
        trace = phase_trace(
            family.f_inverse,
            family.g,
            universe_items=k + 1,
            block_size=B,
            phases=phases,
            seed=7,
        )
        profile = profile_trace(trace)
        emp = profile.to_bounds()
        res = cached_simulate(cache, "iblp", k, trace, fast=True)
        row = {
            "regime": label,
            "gamma": gamma,
            "source": "generated",
            "policy": "iblp",
            "fault_rate": res.miss_ratio,
            "thm8_lower": fault_rate_lower(emp, k),
            "thm11_upper_iblp": iblp_fault_rate_upper(
                emp, k // 2, k - k // 2, B
            ),
        }
        if serving is not None:
            from repro.campaign.integrate import cached_serve

            served = cached_serve(cache, "iblp", k, trace, serving)
            row["p50_sojourn"] = served.p50
            row["p99_sojourn"] = served.p99
        rows.append(row)
    return rows


def render(
    k: int = 48,
    B: int = 4,
    p: float = 2.0,
    phases: int = 4,
    cache: Optional[CampaignCache] = None,
    serving=None,
) -> str:
    """Formatted locality-validation table."""
    return format_table(
        run(k=k, B=B, p=p, phases=phases, cache=cache, serving=serving),
        title=f"Locality-model validation (k={k}, B={B}, p={p:g})",
    )

"""Experiment E-CLUSTER: sharding splits blocks — measure the damage.

The paper's granularity lens says spatial locality is a property of
*blocks*; a sharded deployment that hashes *items* tears blocks apart,
so each shard sees shredded remnants of every within-block run.  This
experiment quantifies that: replay one spatial workload through
clusters of growing shard count under both hash schemes and track

* ``spatial_fraction`` — how much spatial locality each configuration
  still converts into hits (flat under block-aware hashing, strictly
  decaying under item-striping),
* the **IBLP vs item-LRU miss gap** — the paper's granularity-change
  advantage, which item-striping erodes shard by shard,
* ``blocks_split`` / ``load_imbalance`` — the routing cost side:
  block-aware hashing never splits a block but balances load at block
  granularity (slightly lumpier), striping balances items near
  perfectly while splitting every block it can.

All rows are seeded and content-addressable; with a ``cache`` each
(policy × shards × scheme) cell memoizes through the campaign store,
so re-renders and interrupted sweeps recompute nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.campaign.integrate import CampaignCache
from repro.cluster import ClusterSpec, replay_cluster
from repro.core.trace import Trace
from repro.workloads import markov_spatial

__all__ = ["run", "render", "default_trace"]

DEFAULT_SHARDS = (1, 2, 4, 8, 16)
DEFAULT_SCHEMES = ("block", "item")
DEFAULT_POLICIES = ("iblp", "item-lru")


def default_trace(
    length: int = 80_000,
    universe: int = 4096,
    block_size: int = 8,
    stay: float = 0.85,
    seed: int = 1,
) -> Trace:
    """Markov within-block walks: the high-spatial-locality regime
    where granularity change pays most — and where striping costs most.
    """
    return markov_spatial(
        length=length,
        universe=universe,
        block_size=block_size,
        stay=stay,
        seed=seed,
    )


def run(
    capacity: int = 256,
    shards: Sequence[int] = DEFAULT_SHARDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    trace: Optional[Trace] = None,
    fast: bool = True,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, Any]]:
    """The shard-count curve: one row per (scheme × shards × policy).

    Each row also carries ``miss_gap`` — this configuration's
    ``policies[1]`` (baseline) miss ratio minus ``policies[0]``'s
    (granularity-aware) at the same scheme and shard count — on the
    *first* policy's rows, so the gap curve reads straight off the
    table.
    """
    trace = trace if trace is not None else default_trace()
    rows: List[Dict[str, Any]] = []
    for scheme in schemes:
        for n_shards in shards:
            spec = ClusterSpec(n_shards=n_shards, scheme=scheme)
            by_policy: Dict[str, Any] = {}
            for policy in policies:
                if cache is not None:
                    result = cache.cluster(
                        policy, capacity, trace, spec, fast=fast
                    )
                else:
                    result = replay_cluster(
                        policy, capacity, trace, spec, fast=fast
                    )
                by_policy[policy] = result
            for policy in policies:
                result = by_policy[policy]
                row = {
                    "scheme": scheme,
                    "shards": n_shards,
                    "policy": policy,
                    "capacity": capacity,
                    "miss_ratio": result.sim.miss_ratio,
                    "spatial_fraction": result.sim.spatial_fraction,
                    "blocks_split": result.blocks_split,
                    "load_imbalance": result.load_imbalance,
                }
                if len(policies) >= 2 and policy == policies[0]:
                    row["miss_gap"] = (
                        by_policy[policies[1]].sim.miss_ratio
                        - result.sim.miss_ratio
                    )
                rows.append(row)
    return rows


def render(
    capacity: int = 256,
    shards: Sequence[int] = DEFAULT_SHARDS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    cache: Optional[CampaignCache] = None,
    **kwargs: Any,
) -> str:
    """Formatted spatial-degradation table."""
    rows = run(
        capacity=capacity,
        shards=shards,
        schemes=schemes,
        policies=policies,
        cache=cache,
        **kwargs,
    )
    pretty = [
        {
            "scheme": r["scheme"],
            "shards": r["shards"],
            "policy": r["policy"],
            "miss%": f"{100 * r['miss_ratio']:.1f}",
            "spatial%": f"{100 * r['spatial_fraction']:.1f}",
            "gap%": (
                f"{100 * r['miss_gap']:.1f}" if "miss_gap" in r else ""
            ),
            "split": r["blocks_split"],
            "imbal": f"{r['load_imbalance']:.2f}",
        }
        for r in rows
    ]
    return format_table(
        pretty,
        title=(
            f"Spatial degradation vs shard count (capacity={capacity}; "
            "gap% = baseline miss% − granularity-aware miss%)"
        ),
    )

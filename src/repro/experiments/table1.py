"""Experiment E-T1: reproduce Table 1 (salient bound points).

Computes, for the Sleator–Tarjan bound, the GC lower bound, and the GC
upper bound, the three operating points the paper tabulates, at the
reference ``B = 64`` (and any other ``B``), and compares each cell
with the paper's approximate prediction.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import format_table
from repro.bounds.salient import paper_predictions, table1_rows

__all__ = ["run", "render"]


def run(h: float = 10_000.0, B: float = 64.0) -> List[Dict[str, float]]:
    """Compute the nine Table 1 cells and attach paper predictions.

    Returns one row per (setting, family) with computed augmentation,
    computed ratio, the paper's approximate value, and the relative
    deviation of whichever quantity the paper predicts (the ratio for
    the constant-augmentation/constant-ratio rows, the augmentation at
    the meeting point).
    """
    rows = []
    predictions = paper_predictions(B)
    for row in table1_rows(h=h, B=B):
        setting = row["setting"]
        for family in ("sleator_tarjan", "gc_lower", "gc_upper"):
            aug = row[f"{family}_augmentation"]
            ratio = row[f"{family}_ratio"]
            paper = predictions[setting][family]
            measured = aug if setting == "ratio_equals_augmentation" else ratio
            rows.append(
                {
                    "setting": setting,
                    "family": family,
                    "B": B,
                    "h": h,
                    "augmentation": aug,
                    "ratio": ratio,
                    "paper_value": paper,
                    "rel_dev": abs(measured - paper) / paper,
                }
            )
    return rows


def render(h: float = 10_000.0, B: float = 64.0) -> str:
    """Formatted Table 1 reproduction."""
    return format_table(
        run(h=h, B=B),
        title=f"Table 1 reproduction (h={h:g}, B={B:g}) — "
        "augmentation => competitive ratio",
    )

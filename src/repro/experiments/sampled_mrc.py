"""Sampled-vs-exact MRC error bounds (SHARDS spatial sampling).

How much of a miss-ratio curve survives throwing away 90–99 % of the
trace?  This experiment pins the error model documented in
``docs/traces.md``: for each synthetic reference workload it computes
the *exact* item-LRU and Block-LRU curves with the batched Mattson
kernel (:func:`repro.core.fast.multi_capacity_replay`), then the
SHARDS-rescaled approximations at rates {1 %, 5 %, 10 %} over a few
sampler seeds, and reports max absolute curve error, the
``spatial_fraction`` estimate, and the end-to-end speedup.

Expected shape of the results: the markov workload (even block
popularity) converges to within a couple points already at 1 %;
zipf-skewed traces need higher rates because block-closed sampling
keeps or drops a hot block's entire access mass at once — the
estimator's variance scales with the heaviest block's share, which is
exactly the price of preserving spatial load sets through sampling.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.analysis.mrc import sampled_miss_ratio_curve, sampled_spatial_fraction
from repro.analysis.tables import format_table
from repro.core.engine import simulate
from repro.core.fast import multi_capacity_replay
from repro.policies.base import make_policy
from repro.workloads import markov_spatial, zipf_items

__all__ = ["run", "render"]

RATES = (0.01, 0.05, 0.10)


def _workload(name: str, length: int, universe: int, block_size: int, seed: int):
    if name == "markov":
        return markov_spatial(
            length=length, universe=universe, block_size=block_size, stay=0.8, seed=seed
        )
    if name == "zipf":
        return zipf_items(
            length=length, universe=universe, block_size=block_size, alpha=0.8, seed=seed
        )
    raise ValueError(f"unknown workload {name!r} (known: markov, zipf)")


def run(
    length: int = 200_000,
    universe: int = 32_768,
    block_size: int = 8,
    rates: Sequence[float] = RATES,
    sampler_seeds: Sequence[int] = (0, 1, 2),
    seed: int = 11,
    workloads: Sequence[str] = ("markov", "zipf"),
) -> List[Dict[str, float]]:
    """One row per (workload, rate, sampler seed) with curve errors."""
    caps = [universe // 16, universe // 4, universe]
    rows: List[Dict[str, float]] = []
    for wname in workloads:
        trace = _workload(wname, length, universe, block_size, seed)
        t0 = time.perf_counter()
        exact_item = {
            k: r.miss_ratio
            for k, r in multi_capacity_replay("item-lru", trace, caps).items()
        }
        exact_block = {
            k: r.miss_ratio
            for k, r in multi_capacity_replay("block-lru", trace, caps).items()
        }
        t_exact = time.perf_counter() - t0
        spatial_cap = caps[len(caps) // 2]
        exact_spatial = simulate(
            make_policy("block-lru", spatial_cap, trace.mapping), trace, fast=True
        ).spatial_fraction
        for rate in rates:
            for s_seed in sampler_seeds:
                t0 = time.perf_counter()
                approx_item = dict(
                    sampled_miss_ratio_curve(trace, caps, rate, seed=s_seed)
                )
                approx_block = dict(
                    sampled_miss_ratio_curve(
                        trace,
                        [max(1, k // block_size) for k in caps],
                        rate,
                        seed=s_seed,
                        granularity="block",
                    )
                )
                approx_spatial = sampled_spatial_fraction(
                    trace, spatial_cap, rate, seed=s_seed
                )
                t_sampled = time.perf_counter() - t0
                err_item = max(
                    abs(approx_item[k] - exact_item[k]) for k in caps
                )
                err_block = max(
                    abs(approx_block[max(1, k // block_size)] - exact_block[k])
                    for k in caps
                )
                rows.append(
                    {
                        "workload": wname,
                        "rate": rate,
                        "sampler_seed": s_seed,
                        "max_err_item": round(err_item, 4),
                        "max_err_block": round(err_block, 4),
                        "spatial_exact": round(exact_spatial, 4),
                        "spatial_sampled": round(approx_spatial, 4),
                        "t_exact_s": round(t_exact, 3),
                        "t_sampled_s": round(t_sampled, 3),
                        "speedup": round(t_exact / max(t_sampled, 1e-9), 1),
                    }
                )
    return rows


def render(**kwargs) -> str:
    """ASCII table for the CLI / EXPERIMENTS.md."""
    rows = run(**kwargs)
    return format_table(
        rows, title="sampled_mrc: SHARDS sampled vs exact miss-ratio curves"
    )

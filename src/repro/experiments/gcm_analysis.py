"""Experiment: §6's randomized-policy claims with seed statistics.

§6.1 makes three comparative claims about Granularity-Change Marking:

1. block-oblivious marking "has a competitive ratio of at least B …
   by repeatedly choosing a new block and accessing each item in it" —
   on the whole-block walk GCM's expected cost is exactly ``1/B`` of
   marking's;
2. a policy that "loads and marks every item in the block" loses
   effective capacity to pollution on spatially-sparse traffic;
3. (§6.1 closing) "there may be value in a policy that loads some but
   not all of the items" — the :class:`PartialGCM` dial interpolates.

Randomized policies need statistics, so each claim is evaluated over a
seed family with 95 % confidence intervals
(:mod:`repro.analysis.randomized`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.randomized import compare_randomized
from repro.analysis.tables import format_table
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import GCM, MarkAllGCM, MarkingLRU, PartialGCM
from repro.workloads import hot_and_stream, sequential_scan

__all__ = ["block_walk", "pollution", "partial_dial", "render"]


def block_walk(
    k: int = 128, B: int = 8, blocks: int = 256, seeds: Sequence[int] = range(6)
) -> List[Dict]:
    """Claim 1: the whole-block walk costs marking B× GCM's price."""
    trace = sequential_scan(blocks * B, block_size=B)
    rows = compare_randomized(
        {
            "gcm": lambda s: GCM(k, trace.mapping, seed=s),
            "marking-lru": lambda s: MarkingLRU(k, trace.mapping),
        },
        trace,
        seeds=seeds,
    )
    for row in rows:
        row["study"] = "block_walk"
        row["B"] = B
    return rows


def pollution(
    k: int = 128, B: int = 8, length: int = 30_000, seeds: Sequence[int] = range(6)
) -> List[Dict]:
    """Claim 2: marking side loads shrinks the effective phase."""
    # One used item per block; the cyclic working set fits the cache
    # easily *if* side loads stay evictable.  GCM keeps the marked used
    # items and converges to ~0 misses; marking the side loads caps the
    # phase at k/B marked entries and keeps churning the working set.
    working_set = (3 * k) // 4
    mapping = FixedBlockMapping(universe=2 * k * B, block_size=B)
    items = np.array(
        [((i * 7) % working_set) * B for i in range(length)], dtype=np.int64
    )
    trace = Trace(items, mapping, {"generator": "sparse_cycle"})
    rows = compare_randomized(
        {
            "gcm": lambda s: GCM(k, mapping, seed=s),
            "gcm-markall": lambda s: MarkAllGCM(k, mapping, seed=s),
        },
        trace,
        seeds=seeds,
    )
    for row in rows:
        row["study"] = "pollution"
    return rows


def partial_dial(
    k: int = 128,
    B: int = 8,
    length: int = 30_000,
    seeds: Sequence[int] = range(4),
) -> List[Dict]:
    """Claim 3: the load-count dial trades pollution against spatial hits."""
    trace = hot_and_stream(
        length,
        hot_items=k // 2,
        stream_blocks=2 * k // B,
        block_size=B,
        hot_fraction=0.5,
        seed=11,
    )
    factories = {
        f"partial_load={lc}": (
            lambda s, lc=lc: PartialGCM(k, trace.mapping, load_count=lc, seed=s)
        )
        for lc in (1, 2, 4, 8)
    }
    rows = compare_randomized(factories, trace, seeds=seeds)
    for row in rows:
        row["study"] = "partial_dial"
    return rows


def render(k: int = 128, B: int = 8) -> str:
    """All three §6 studies, formatted."""
    return "\n".join(
        [
            format_table(block_walk(k=k, B=B), title="§6 claim 1: block walk"),
            format_table(pollution(k=k, B=B), title="\n§6 claim 2: pollution"),
            format_table(
                partial_dial(k=k, B=B), title="\n§6.1 claim 3: partial loads"
            ),
        ]
    )

"""The size-dependence phenomenon (§5.3 "Unknown optimal size", §6.2).

The paper's conceptual headline beyond the bounds themselves: in GC
caching, *which* online policy is more competitive depends on the size
``h`` of the offline cache it is compared against — "unique amongst
known caching problems".  Two demonstrations:

* **Bounds level** — for two IBLP splits tuned to different design
  points, the Theorem 7 upper-bound curves *cross* as functions of
  ``h`` (:func:`bounds_crossing`): each split is the better policy for
  some comparison sizes and the worse for others.
* **Empirical level** — the same two splits swap their measured
  ranking between a temporal-heavy and a spatial-heavy workload
  (:func:`empirical_flip`): the worst-case trace for small ``h``
  emphasizes spatial locality, for large ``h`` temporal locality, so
  no fixed split dominates (the reason §6 then looks to randomization,
  and finds it does not help either).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from scipy.optimize import brentq

from repro.analysis.tables import format_table
from repro.bounds.upper import iblp_optimal_item_layer, iblp_ratio
from repro.campaign.integrate import CampaignCache, cached_simulate
from repro.core.engine import simulate
from repro.errors import SolverError
from repro.workloads import hot_and_stream

__all__ = ["bounds_crossing", "empirical_flip", "capacity_curves", "render"]


def bounds_crossing(
    k: int = 1_280_000,
    B: int = 64,
    h_small: float = 2_000.0,
    h_large: float = 120_000.0,
) -> Dict[str, float]:
    """Find the ``h`` where two tuned splits swap superiority.

    Splits are §5.3-optimal for ``h_small`` and ``h_large``
    respectively; returns their Theorem 7 ratios at both design points
    and the crossing ``h`` in between.
    """
    i_small = iblp_optimal_item_layer(k, h_small, B)
    i_large = iblp_optimal_item_layer(k, h_large, B)

    def gap(h: float) -> float:
        return iblp_ratio(i_small, k - i_small, h, B) - iblp_ratio(
            i_large, k - i_large, h, B
        )

    if gap(h_small) * gap(h_large) > 0:
        raise SolverError(
            "the tuned splits do not cross between their design points"
        )
    h_cross = float(brentq(gap, h_small, h_large, xtol=1e-3))
    return {
        "k": k,
        "B": B,
        "i_tuned_small": i_small,
        "i_tuned_large": i_large,
        "h_small": h_small,
        "h_large": h_large,
        "h_cross": h_cross,
        "ratio_small_split_at_h_small": iblp_ratio(
            i_small, k - i_small, h_small, B
        ),
        "ratio_large_split_at_h_small": iblp_ratio(
            i_large, k - i_large, h_small, B
        ),
        "ratio_small_split_at_h_large": iblp_ratio(
            i_small, k - i_small, h_large, B
        ),
        "ratio_large_split_at_h_large": iblp_ratio(
            i_large, k - i_large, h_large, B
        ),
    }


def empirical_flip(
    k: int = 256,
    B: int = 8,
    length: int = 50_000,
    seed: int = 17,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, float]]:
    """Measured ranking of two splits flips across locality regimes.

    * ``temporal_heavy``: a scattered hot set sized to the large item
      layer — the item-heavy split keeps it, the block-heavy split
      thrashes.
    * ``spatial_heavy``: many interleaved sequential streams — spatial
      hits require a block-layer footprint of one block per stream,
      which only the block-heavy split has.
    """
    from repro.workloads import interleaved_streams

    splits = {
        "item_heavy_split": int(0.9 * k),
        "block_heavy_split": int(0.25 * k),
    }
    traces = {
        "temporal_heavy": hot_and_stream(
            length=length,
            hot_items=int(0.8 * k),
            stream_blocks=4 * k // B,
            block_size=B,
            hot_fraction=0.95,
            seed=seed,
        ),
        "spatial_heavy": interleaved_streams(
            length=length,
            streams=2 * ((k // 4) // B) + 4,  # exceeds the small block layer
            blocks_per_stream=64,
            block_size=B,
        ),
    }
    rows: List[Dict[str, float]] = []
    for wname, trace in traces.items():
        for sname, i in splits.items():
            res = cached_simulate(
                cache, "iblp", k, trace, fast=True, item_layer_size=i
            )
            rows.append(
                {
                    "workload": wname,
                    "split": sname,
                    "item_layer": i,
                    "misses": res.misses,
                    "miss_ratio": res.miss_ratio,
                }
            )
    return rows


def capacity_curves(
    B: int = 8,
    length: int = 50_000,
    seed: int = 17,
    capacities: tuple = (16, 32, 64, 128, 256, 512, 1024, 2048),
) -> List[Dict[str, float]]:
    """Item-LRU vs Block-LRU miss curves across cache sizes.

    The pure-granularity version of the size-dependence story: *which
    granularity* is the better LRU depends on the cache size, and the
    ranking swaps between a temporal-heavy and a spatial-heavy
    workload.  Both policies are stack policies, so the whole grid
    rides ``sweep``'s batched multi-capacity path — one Mattson
    stack-distance pass per (policy, workload) instead of one replay
    per capacity point.
    """
    from repro.analysis.sweep import grid, simulate_cell, sweep
    from repro.workloads import interleaved_streams

    traces = {
        "temporal_heavy": hot_and_stream(
            length=length,
            hot_items=200,
            stream_blocks=256,
            block_size=B,
            hot_fraction=0.95,
            seed=seed,
        ),
        "spatial_heavy": interleaved_streams(
            length=length,
            streams=16,
            blocks_per_stream=64,
            block_size=B,
        ),
    }
    rows: List[Dict[str, float]] = []
    for wname, trace in traces.items():
        cells = grid(
            policy=["item-lru", "block-lru"],
            capacity=list(capacities),
            trace=[trace],
        )
        for row in sweep(simulate_cell, cells):
            rows.append(
                {
                    "workload": wname,
                    "policy": row["policy"],
                    "capacity": row["capacity"],
                    "miss_ratio": row["miss_ratio"],
                    "spatial_fraction": row["spatial_fraction"],
                }
            )
    return rows


def adaptive_hedge(
    k: int = 256,
    B: int = 8,
    length: int = 50_000,
    seed: int = 17,
    cache: Optional[CampaignCache] = None,
) -> List[Dict[str, float]]:
    """The extension answer to §5.3: an adaptive split hedges both regimes.

    Repeats :func:`empirical_flip`'s two workloads with
    :class:`~repro.policies.adaptive_iblp.AdaptiveIBLP` added: the
    fixed splits each collapse in one regime; the adaptive split stays
    near the better fixed split in both, and reports where its
    boundary converged.

    The adaptive rows need the live policy instance afterwards (to read
    the converged ``item_layer_target``), so only the fixed-split rows
    go through ``cache``.
    """
    from repro.policies import AdaptiveIBLP

    rows = empirical_flip(k=k, B=B, length=length, seed=seed, cache=cache)
    traces = {}
    from repro.workloads import interleaved_streams

    traces["temporal_heavy"] = hot_and_stream(
        length=length,
        hot_items=int(0.8 * k),
        stream_blocks=4 * k // B,
        block_size=B,
        hot_fraction=0.95,
        seed=seed,
    )
    traces["spatial_heavy"] = interleaved_streams(
        length=length,
        streams=2 * ((k // 4) // B) + 4,
        blocks_per_stream=64,
        block_size=B,
    )
    for wname, trace in traces.items():
        policy = AdaptiveIBLP(k, trace.mapping)
        res = simulate(policy, trace, fast=True)
        rows.append(
            {
                "workload": wname,
                "split": "adaptive",
                "item_layer": policy.item_layer_target,
                "misses": res.misses,
                "miss_ratio": res.miss_ratio,
            }
        )
    return rows


def render(
    k: int = 256, B: int = 8, cache: Optional[CampaignCache] = None
) -> str:
    """Both demonstrations, formatted (simulations memoized via ``cache``)."""
    cross = bounds_crossing()
    lines = [
        "Size dependence (§5.3): tuned-split Theorem 7 curves cross at "
        f"h = {cross['h_cross']:.0f} (k = {cross['k']:,}, B = {cross['B']})",
        format_table([cross]),
        "",
        format_table(
            empirical_flip(k=k, B=B, cache=cache),
            title="Empirical ranking flip across locality regimes",
        ),
        "",
        format_table(
            capacity_curves(B=B),
            title="Granularity ranking across cache sizes "
            "(batched Mattson replay)",
        ),
    ]
    return "\n".join(lines)

"""Table 1: salient comparison points of the three bound families.

For each bound family — the Sleator–Tarjan bound (traditional), the GC
lower bound (Theorem 4 at the best ``a``), and the GC upper bound
(IBLP with optimal split, §5.3) — Table 1 reports three operating
points, each shown as *augmentation ⇒ competitive ratio* where
augmentation is ``k/h``:

1. **Constant augmentation** — the ratio at ``k = 2h``:
   ST ``⇒ 2x``, GC LB ``⇒ ≈Bx``, GC UB ``⇒ ≈2Bx``.
2. **Ratio = augmentation** — the ``k`` where the ratio equals ``k/h``:
   ST at ``k = 2h``, GC LB at ``k ≈ √B·h``, GC UB at ``k ≈ √(2B)·h``.
3. **Constant ratio** — the augmentation needed to reach a small
   constant ratio: ST reaches 2 at ``k = 2h``; both GC bounds need
   ``k ≈ Bh`` (ratios ≈2 and ≈3 respectively).

:func:`table1_rows` computes all nine cells exactly (numerically where
the paper writes ``≈``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from scipy.optimize import brentq

from repro.bounds.lower import gc_general_lower
from repro.bounds.traditional import sleator_tarjan_lower
from repro.bounds.upper import iblp_optimal_ratio
from repro.errors import ConfigurationError, SolverError

__all__ = ["meeting_point", "k_for_ratio", "table1_rows", "BOUND_FAMILIES"]

BoundFn = Callable[[float, float, float], float]

#: name -> ratio(k, h, B) for the three Table 1 families.
BOUND_FAMILIES: Dict[str, BoundFn] = {
    "sleator_tarjan": lambda k, h, B: sleator_tarjan_lower(k, h),
    "gc_lower": gc_general_lower,
    "gc_upper": iblp_optimal_ratio,
}


def meeting_point(bound: BoundFn, h: float, B: float, k_max: float = None) -> float:
    """The ``k`` at which ``bound(k, h, B) == k / h``.

    All three families are decreasing in ``k`` while ``k/h`` increases,
    so the crossing is unique; found by bisection over
    ``(h+1, k_max]``.
    """
    if k_max is None:
        k_max = 4 * B * h + 16 * h
    f = lambda k: bound(k, h, B) - k / h

    lo = h * (1 + 1e-9) + 1
    if f(lo) <= 0:
        return lo
    if f(k_max) > 0:
        raise SolverError(
            f"no meeting point below k={k_max}; increase k_max"
        )
    return float(brentq(f, lo, k_max, xtol=1e-6))


def k_for_ratio(
    bound: BoundFn, h: float, B: float, target: float, k_max: float = None
) -> float:
    """Smallest ``k`` with ``bound(k, h, B) <= target`` (bisection).

    Raises :class:`SolverError` if the family never reaches ``target``
    below ``k_max`` (e.g. asking the GC lower bound for ratio < 2 —
    its infimum as ``k → ∞`` is 1 but convergence is slow; pick
    ``k_max`` accordingly).
    """
    if target <= 1:
        raise ConfigurationError(f"target ratio must exceed 1, got {target}")
    if k_max is None:
        k_max = 64 * B * h
    f = lambda k: bound(k, h, B) - target
    lo = h * (1 + 1e-9) + 1
    if f(lo) <= 0:
        return lo
    if f(k_max) > 0:
        raise SolverError(
            f"bound does not reach ratio {target} below k={k_max}"
        )
    return float(brentq(f, lo, k_max, xtol=1e-6))


def table1_rows(h: float = 10_000.0, B: float = 64.0) -> List[Dict[str, float]]:
    """Compute the nine cells of Table 1 at concrete ``(h, B)``.

    Returns one row per setting with, for each family, the
    ``(augmentation, ratio)`` pair:

    * ``constant_augmentation`` — ratio at ``k = 2h``;
    * ``ratio_equals_augmentation`` — the meeting point;
    * ``constant_ratio`` — augmentation at ``k = Bh`` (the paper's
      "constant ratio" operating point), plus the achieved ratio.
    """
    rows: List[Dict[str, float]] = []

    row: Dict[str, float] = {"setting": "constant_augmentation"}
    for name, fn in BOUND_FAMILIES.items():
        k = 2 * h
        row[f"{name}_augmentation"] = k / h
        row[f"{name}_ratio"] = fn(k, h, B)
    rows.append(row)

    row = {"setting": "ratio_equals_augmentation"}
    for name, fn in BOUND_FAMILIES.items():
        k = meeting_point(fn, h, B)
        row[f"{name}_augmentation"] = k / h
        row[f"{name}_ratio"] = fn(k, h, B)
    rows.append(row)

    row = {"setting": "constant_ratio"}
    for name, fn in BOUND_FAMILIES.items():
        k = B * h if name != "sleator_tarjan" else 2 * h
        row[f"{name}_augmentation"] = k / h
        row[f"{name}_ratio"] = fn(k, h, B)
    rows.append(row)
    return rows


def paper_predictions(B: float) -> Dict[str, Dict[str, float]]:
    """The paper's approximate Table 1 cells as functions of ``B``.

    Used by tests and EXPERIMENTS.md to compare measured vs printed.
    """
    return {
        "constant_augmentation": {
            "sleator_tarjan": 2.0,
            "gc_lower": B,
            "gc_upper": 2 * B,
        },
        "ratio_equals_augmentation": {
            "sleator_tarjan": 2.0,
            "gc_lower": math.sqrt(B),
            "gc_upper": math.sqrt(2 * B),
        },
        "constant_ratio": {
            "sleator_tarjan": 2.0,
            "gc_lower": 2.0,
            "gc_upper": 3.0,
        },
    }

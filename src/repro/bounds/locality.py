"""Fault-rate bounds in the extended locality model (§7, Table 2).

The model characterizes a trace by two concave increasing functions:
``f(n)`` (max distinct items in any window of ``n`` accesses) and
``g(n)`` (max distinct blocks).  ``f/g`` measures spatial locality,
ranging from 1 (none) to ``B`` (whole-block runs).

Bounds
------
* Theorem 8 (lower bound, any deterministic policy, cache ``k``):
  ``g(f⁻¹(k+1) − 2) / (f⁻¹(k+1) − 2)``.
* Theorem 9 (IBLP item layer, size ``i``):
  ``(i − 1) / (f⁻¹(i+1) − 2)``.
* Theorem 10 (IBLP block layer, size ``b``):
  ``(b/B − 1) / (g⁻¹(b/B + 1) − 2)``.

  .. note::
     The paper's displayed Theorem 10 prints ``f⁻¹``, but its proof
     ("using the number of blocks in a window g(n) as the items per
     window function") and every Table 2 entry require ``g⁻¹``; we
     implement ``g⁻¹`` and cross-check both readings in the tests.
* Theorem 11 (IBLP): the min of the two layer bounds.

Table 2 instantiates these for polynomial locality
``f(n) = n^{1/p}``, ``g = f / γ`` with ``γ ∈ {1, B^{1−1/p}, B}``
(the printed table's middle row writes ``B^{1/2}``, which equals
``B^{1−1/p}`` at its leading case ``p = 2``; §7.3's "largest gap at
f/g = B^{1−(1/p)}" fixes the general form).  The asymptotic orders:

====================  ===================  ==============  =================
``γ`` (spatial loc.)  lower bound (size h)  item layer UB   block layer UB
====================  ===================  ==============  =================
``1``                 ``1/h^{p-1}``         ``1/i^{p-1}``   ``B^{p-1}/b^{p-1}``
``B^{1-1/p}``         ``1/(γ h^{p-1})``     ``1/i^{p-1}``   ``1/b^{p-1}``
``B``                 ``1/(B h^{p-1})``     ``1/i^{p-1}``   ``1/(B b^{p-1})``
====================  ===================  ==============  =================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from scipy.optimize import brentq

from repro.errors import ConfigurationError

__all__ = [
    "LocalityBounds",
    "fault_rate_lower",
    "item_layer_fault_upper",
    "block_layer_fault_upper",
    "iblp_fault_rate_upper",
    "table2_asymptotics",
]


def _numeric_inverse(
    func: Callable[[float], float], target: float, hi_guess: float = 4.0
) -> float:
    """Smallest ``n >= 1`` with ``func(n) >= target`` (monotone ``func``)."""
    if func(1.0) >= target:
        return 1.0
    hi = hi_guess
    for _ in range(200):
        if func(hi) >= target:
            return float(brentq(lambda n: func(n) - target, 1.0, hi))
        hi *= 2.0
    raise ConfigurationError(
        f"could not invert locality function up to target {target}"
    )


@dataclass(frozen=True)
class LocalityBounds:
    """A (f, g) locality pair with optional exact inverses.

    ``f`` and ``g`` map window size → max distinct items/blocks; they
    must be increasing and concave for the model's guarantees.  When
    the exact inverse is unavailable, a bisection fallback is used.
    """

    f: Callable[[float], float]
    g: Callable[[float], float]
    f_inverse: Optional[Callable[[float], float]] = None
    g_inverse: Optional[Callable[[float], float]] = None

    def finv(self, y: float) -> float:
        """``f⁻¹(y)``: the window size at which ``f`` first reaches ``y``."""
        if self.f_inverse is not None:
            return self.f_inverse(y)
        return _numeric_inverse(self.f, y)

    def ginv(self, y: float) -> float:
        """``g⁻¹(y)``: the window size at which ``g`` first reaches ``y``."""
        if self.g_inverse is not None:
            return self.g_inverse(y)
        return _numeric_inverse(self.g, y)


def fault_rate_lower(loc: LocalityBounds, k: float) -> float:
    """Theorem 8: fault-rate lower bound for any deterministic policy."""
    if k < 1:
        raise ConfigurationError(f"cache size must be >= 1, got {k}")
    window = loc.finv(k + 1) - 2
    if window <= 0:
        return 1.0  # so little locality that every access can fault
    return min(1.0, loc.g(window) / window)


def item_layer_fault_upper(loc: LocalityBounds, i: float) -> float:
    """Theorem 9: fault-rate upper bound for the item layer (size i)."""
    if i < 1:
        raise ConfigurationError(f"item layer size must be >= 1, got {i}")
    window = loc.finv(i + 1) - 2
    if window <= 0:
        return 1.0
    return min(1.0, (i - 1) / window)


def block_layer_fault_upper(loc: LocalityBounds, b: float, B: float) -> float:
    """Theorem 10: fault-rate upper bound for the block layer (size b).

    The layer behaves as an LRU cache of ``b/B`` *blocks* over the
    block-granularity trace, whose working-set function is ``g``.
    """
    if b < 1:
        raise ConfigurationError(f"block layer size must be >= 1, got {b}")
    if B < 1:
        raise ConfigurationError(f"block size B must be >= 1, got {B}")
    eff = b / B
    if eff <= 1:
        return 1.0
    window = loc.ginv(eff + 1) - 2
    if window <= 0:
        return 1.0
    return min(1.0, (eff - 1) / window)


def iblp_fault_rate_upper(
    loc: LocalityBounds, i: float, b: float, B: float
) -> float:
    """Theorem 11: IBLP faults only when both layers fault."""
    return min(
        item_layer_fault_upper(loc, i),
        block_layer_fault_upper(loc, b, B),
    )


def table2_asymptotics(p: float, B: float) -> List[Dict[str, float]]:
    """Table 2's leading-order bounds for ``f(n)=n^{1/p}``, ``g=f/γ``.

    Evaluates the equal-split configuration the paper analyzes in §7.3:
    item layer ``i``, block layer ``b = i``, baseline optimal cache
    ``h = i + b`` (augmentation 2x).  Returns one row per
    ``γ ∈ {1, B^{1−1/p}, B}`` with the *exponents/coefficients* of the
    leading terms, normalized so each entry is the coefficient of the
    stated power (e.g. ``lower_bound = c ⇒ bound ≈ c / h^{p-1}``).
    """
    if p < 1:
        raise ConfigurationError(f"polynomial degree p must be >= 1, got {p}")
    if B < 1:
        raise ConfigurationError(f"block size B must be >= 1, got {B}")
    rows: List[Dict[str, float]] = []
    for label, gamma in (
        ("no_spatial", 1.0),
        ("high_spatial", B ** (1.0 - 1.0 / p)),
        ("max_spatial", float(B)),
    ):
        rows.append(
            {
                "gamma": gamma,
                "label": label,
                # Theorem 8 ≈ (h/γ) / h^p = 1/(γ h^{p-1})
                "lower_bound_coeff": 1.0 / gamma,  # of 1/h^{p-1}
                # Theorem 9 ≈ i / i^p
                "item_layer_coeff": 1.0,  # of 1/i^{p-1}
                # Theorem 10 ≈ (b/B) / (γ b/B)^p = B^{p-1}/(γ^p b^{p-1})
                "block_layer_coeff": B ** (p - 1) / gamma**p,  # of 1/b^{p-1}
            }
        )
    return rows


def gap_vs_baseline(p: float, B: float) -> float:
    """§7.3's worst multiplicative gap for equal-split IBLP: B^{1−1/p}.

    Occurs at ``f/g = B^{1−1/p}`` and approaches ``B`` as ``p → ∞``.
    """
    if p < 1 or B < 1:
        raise ConfigurationError("need p >= 1 and B >= 1")
    return float(B ** (1.0 - 1.0 / p))


def _self_test() -> None:  # pragma: no cover - convenience
    loc = LocalityBounds(f=math.sqrt, g=math.sqrt)
    assert fault_rate_lower(loc, 100) <= 1.0

"""Classical (single-granularity) caching bounds.

Sleator and Tarjan [31] proved that any deterministic online policy
with cache size ``k`` compared against an optimal offline cache of size
``h ≤ k`` has competitive ratio at least ``k / (k - h + 1)``, and that
LRU (and FIFO) achieve exactly that ratio.  These are the "Sleator-
Tarjan Bound" rows/curves of Table 1 and Figure 3, against which the
paper contrasts the GC model's extra Θ(B) penalty.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["sleator_tarjan_lower", "lru_competitive_upper"]


def _check_kh(k: float, h: float) -> None:
    if k <= 0 or h <= 0:
        raise ConfigurationError(f"cache sizes must be positive, got k={k}, h={h}")
    if h > k:
        raise ConfigurationError(
            f"optimal cache must not exceed online cache (h={h} > k={k})"
        )


def sleator_tarjan_lower(k: float, h: float) -> float:
    """Lower bound ``k / (k - h + 1)`` for deterministic policies.

    Parameters
    ----------
    k:
        Online cache size.
    h:
        Offline (optimal) cache size, ``h <= k``.
    """
    _check_kh(k, h)
    return k / (k - h + 1)


def lru_competitive_upper(k: float, h: float) -> float:
    """LRU's matching upper bound ``k / (k - h + 1)`` (tight)."""
    _check_kh(k, h)
    return k / (k - h + 1)

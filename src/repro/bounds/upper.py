"""IBLP competitive upper bounds (Theorems 5–7) and §5.3 layer sizing.

IBLP splits ``k = i + b`` into an item layer of size ``i`` and a block
layer of size ``b``.  The paper analyzes each layer against its
adversarial locality via a linear program (validated numerically in
:mod:`repro.analysis.lp`), then combines them:

* Theorem 5 (temporal only):  ``i / (i - h)``.
* Theorem 6 (spatial only):   ``min(B, (b + 2Bh - B) / (b + B))``.
* Theorem 7 (combined), two regimes split at
  ``i* = (2Bb - b + 2B² + B) / (2B)``:

  - ``i <= i*``:  ``(b + B(2i-1))² / (8B(B+b)(i-h))``
  - ``i >  i*``:  ``(2Bi - Bb + b - B² - B) / (2i - 2h)``

§5.3 then chooses the split.  For
``k >= (3Bh - h - B² - B)/(B-1)`` the optimal interior split gives

  ``ratio = (k + B - 1)(k - h + B(2h-1)) / (k - h + B)²``

with item layer

  ``i = (k² + 4Bhk - hk + 4B²h - 3Bh - B²)
        / (2Bk + k + 2Bh - h + 2B² - 3B)``;

below the threshold the whole cache should be the item layer
(``i = k``), giving ``(2Bk - B² - B) / (2(k - h))``.
"""

from __future__ import annotations

import math

from repro.bounds.traditional import _check_kh
from repro.errors import ConfigurationError

__all__ = [
    "iblp_item_layer_upper",
    "iblp_block_layer_upper",
    "iblp_ratio",
    "iblp_small_k_threshold",
    "iblp_optimal_item_layer",
    "iblp_optimal_ratio",
]


def _check_b(B: float) -> None:
    if B < 1:
        raise ConfigurationError(f"block size B must be >= 1, got {B}")


def iblp_item_layer_upper(i: float, h: float) -> float:
    """Theorem 5: item-layer ratio ``i / (i - h)`` (temporal locality).

    Requires ``i > h``; returns ``inf`` at ``i <= h`` (the layer alone
    cannot be competitive against an equal-or-larger OPT).
    """
    if i <= 0 or h <= 0:
        raise ConfigurationError(f"sizes must be positive, got i={i}, h={h}")
    if i <= h:
        return math.inf
    return i / (i - h)


def iblp_block_layer_upper(b: float, h: float, B: float) -> float:
    """Theorem 6: block-layer ratio ``min(B, (b + 2Bh - B)/(b + B))``."""
    if b < 0 or h <= 0:
        raise ConfigurationError(f"sizes must be positive, got b={b}, h={h}")
    _check_b(B)
    return min(float(B), (b + 2 * B * h - B) / (b + B))


def _theorem7_regime_boundary(b: float, B: float) -> float:
    """The ``i`` value where Theorem 7 switches regimes (t hits B)."""
    return (2 * B * b - b + 2 * B * B + B) / (2 * B)


def iblp_ratio(i: float, b: float, h: float, B: float) -> float:
    """Theorem 7: IBLP's competitive-ratio upper bound for split (i, b).

    Valid for ``i > h`` (the theorem assumes ``i >= h``; at equality
    the ratio diverges).  Returns ``inf`` when ``i <= h``.
    """
    if i < 0 or b < 0:
        raise ConfigurationError(f"layer sizes must be non-negative: i={i}, b={b}")
    if h <= 0:
        raise ConfigurationError(f"h must be positive, got {h}")
    _check_b(B)
    if i <= h:
        return math.inf
    if i <= _theorem7_regime_boundary(b, B):
        return (b + B * (2 * i - 1)) ** 2 / (8 * B * (B + b) * (i - h))
    return (2 * B * i - B * b + b - B * B - B) / (2 * i - 2 * h)


def iblp_small_k_threshold(h: float, B: float) -> float:
    """§5.3's regime boundary ``(3Bh - h - B² - B) / (B - 1)``.

    For ``k`` below this, IBLP should devote the whole cache to the
    item layer (temporal locality dominates).  With ``B = 1`` the GC
    model degenerates to traditional caching and the threshold is
    irrelevant; we return 0 so every ``k`` is in the "large" regime.
    """
    _check_b(B)
    if B == 1:
        return 0.0
    return (3 * B * h - h - B * B - B) / (B - 1)


def iblp_optimal_item_layer(k: float, h: float, B: float) -> float:
    """§5.3: the competitive-ratio-optimal item-layer size.

    Returns ``k`` (pure item cache) in the small-``k`` regime and the
    interior optimum otherwise.  The result is a real number; callers
    simulating discrete caches should round and clamp to ``[h+1, k]``.
    """
    _check_kh(k, h)
    _check_b(B)
    if k < iblp_small_k_threshold(h, B):
        return float(k)
    num = k * k + 4 * B * h * k - h * k + 4 * B * B * h - 3 * B * h - B * B
    den = 2 * B * k + k + 2 * B * h - h + 2 * B * B - 3 * B
    return num / den


def iblp_optimal_ratio(k: float, h: float, B: float) -> float:
    """§5.3: IBLP's upper bound with the best split for known ``h``.

    ``(k + B - 1)(k - h + B(2h-1)) / (k - h + B)²`` in the large-``k``
    regime; ``(2Bk - B² - B) / (2(k - h))`` with ``i = k`` otherwise.
    Returns ``inf`` at ``k <= h`` (no online cache is competitive with
    a larger OPT in the worst case).
    """
    _check_kh(k, h)
    _check_b(B)
    if k <= h:
        return math.inf
    if k < iblp_small_k_threshold(h, B):
        return (2 * B * k - B * B - B) / (2 * (k - h))
    return (k + B - 1) * (k - h + B * (2 * h - 1)) / (k - h + B) ** 2

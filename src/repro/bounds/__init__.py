"""Closed-form competitive-ratio and fault-rate bounds from the paper.

Modules
-------
* :mod:`repro.bounds.traditional` — Sleator–Tarjan bounds for classical
  caching (the paper's comparison baseline).
* :mod:`repro.bounds.lower` — Theorems 2–4: GC lower bounds for Item
  Caches, Block Caches, and the general ``a``-parameter family.
* :mod:`repro.bounds.upper` — Theorems 5–7 and the §5.3 layer-size
  optimization for IBLP.
* :mod:`repro.bounds.locality` — Theorems 8–11 and the Table 2
  asymptotics in the extended locality-of-reference model.
* :mod:`repro.bounds.salient` — the Table 1 salient comparison points.

All functions are pure and cheap; figures sweep them directly at the
paper's scale (``k = 1.28M``, ``B = 64``).
"""

from repro.bounds.traditional import (
    lru_competitive_upper,
    sleator_tarjan_lower,
)
from repro.bounds.lower import (
    block_cache_lower,
    gc_general_lower,
    general_a_lower,
    item_cache_lower,
    optimal_a,
)
from repro.bounds.upper import (
    iblp_block_layer_upper,
    iblp_item_layer_upper,
    iblp_optimal_item_layer,
    iblp_optimal_ratio,
    iblp_ratio,
    iblp_small_k_threshold,
)
from repro.bounds.locality import (
    LocalityBounds,
    fault_rate_lower,
    iblp_fault_rate_upper,
    item_layer_fault_upper,
    block_layer_fault_upper,
    table2_asymptotics,
)
from repro.bounds.salient import table1_rows, meeting_point, k_for_ratio

__all__ = [
    "sleator_tarjan_lower",
    "lru_competitive_upper",
    "item_cache_lower",
    "block_cache_lower",
    "general_a_lower",
    "gc_general_lower",
    "optimal_a",
    "iblp_item_layer_upper",
    "iblp_block_layer_upper",
    "iblp_ratio",
    "iblp_optimal_item_layer",
    "iblp_optimal_ratio",
    "iblp_small_k_threshold",
    "fault_rate_lower",
    "item_layer_fault_upper",
    "block_layer_fault_upper",
    "iblp_fault_rate_upper",
    "LocalityBounds",
    "table2_asymptotics",
    "table1_rows",
    "meeting_point",
    "k_for_ratio",
]

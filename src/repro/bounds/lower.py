"""GC caching competitive lower bounds (Theorems 2–4).

All bounds compare a deterministic online cache of ``k`` items against
an optimal offline cache of ``h <= k`` items, with blocks of up to
``B`` items.  The headline: relative to Sleator–Tarjan, spatial
locality inflates the (ratio x augmentation) product by Θ(B).

* Theorem 2 (Item Caches): ``B(k - B + 1) / (k - h + 1)``.
* Theorem 3 (Block Caches): ``k / (k - B(h - 1))`` — unbounded unless
  ``k > B(h-1)`` (pollution shrinks the effective cache by B).
* Theorem 4 (any policy that loads a whole block only after ``a``
  distinct consecutive accesses):
  ``(a(k - h + 1) + B(h - a)) / (k - h + 1)``.

The general deterministic lower bound plotted in Figure 3 is the best
case over ``a`` (§4.4 shows the optimum is at an extreme: ``a = 1`` or
``a = B``).
"""

from __future__ import annotations

import math

from repro.bounds.traditional import _check_kh
from repro.errors import ConfigurationError

__all__ = [
    "item_cache_lower",
    "block_cache_lower",
    "general_a_lower",
    "gc_general_lower",
    "optimal_a",
]


def _check_b(B: float) -> None:
    if B < 1:
        raise ConfigurationError(f"block size B must be >= 1, got {B}")


def item_cache_lower(k: float, h: float, B: float) -> float:
    """Theorem 2: lower bound for any deterministic Item Cache."""
    _check_kh(k, h)
    _check_b(B)
    return B * (k - B + 1) / (k - h + 1)


def block_cache_lower(k: float, h: float, B: float) -> float:
    """Theorem 3: lower bound for any deterministic Block Cache.

    Returns ``math.inf`` when ``k <= B(h-1)`` — the adversary can then
    make the block cache miss forever while OPT hits (§4.2: "the
    competitive ratio of such policies is infinite unless they have at
    least B times as much space").
    """
    _check_kh(k, h)
    _check_b(B)
    denom = k - B * (h - 1)
    if denom <= 0:
        return math.inf
    return k / denom


def general_a_lower(k: float, h: float, B: float, a: float) -> float:
    """Theorem 4: lower bound for the ``a``-parameter policy family.

    ``a`` is the number of distinct consecutive accesses to a block the
    policy requires before loading all of it (``1 <= a <= B``).
    Requires ``h > a`` for the construction's step 4 to be non-empty;
    for ``h <= a`` the bound degrades gracefully to the step-2-only
    ratio ``a``.
    """
    _check_kh(k, h)
    _check_b(B)
    if not 1 <= a <= B:
        raise ConfigurationError(f"a must be in [1, B]={B}, got {a}")
    num = a * (k - h + 1) + B * (h - a)
    if num <= 0:  # pragma: no cover - impossible for valid inputs
        return float(a)
    return max(num / (k - h + 1), float(a))


def optimal_a(k: float, h: float, B: float) -> int:
    """The ``a`` minimizing Theorem 4's bound: 1 or B (§4.4).

    The bound is linear in ``a`` with slope ``(k - h + 1 - B)``;
    positive slope → ``a = 1`` (load whole blocks), negative →
    ``a = B`` (load single items).
    """
    _check_kh(k, h)
    _check_b(B)
    return 1 if (k - h + 1) > B else int(B)


def gc_general_lower(k: float, h: float, B: float) -> float:
    """Figure 3's general GC lower bound: Theorem 4 at the best ``a``.

    Equals ``1 + B(h-1)/(k-h+1)`` when ``k - h + 1 > B`` and
    ``B(k-B+1)/(k-h+1)`` otherwise.  Any deterministic policy — item,
    block, IBLP, or otherwise — has competitive ratio at least this.
    """
    return min(
        general_a_lower(k, h, B, 1),
        general_a_lower(k, h, B, B),
    )

"""Circular CLOCK structure (second-chance list) for the CLOCK policy.

CLOCK approximates LRU with a single rotating hand and one reference
bit per entry.  It is included as an additional Item Cache baseline:
the paper's Item Cache lower bound (Theorem 2) applies to *any*
deterministic item-granularity policy, so having several distinct item
policies lets the empirical adversary benches demonstrate the bound's
policy-independence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["ClockHand"]


class _Entry:
    __slots__ = ("key", "referenced")

    def __init__(self, key: Any) -> None:
        self.key = key
        self.referenced = False


class ClockHand:
    """A circular buffer of keys with reference bits and a clock hand."""

    def __init__(self) -> None:
        self._entries: List[_Entry] = []
        self._index: Dict[Any, int] = {}
        self._hand = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._index

    def insert(self, key: Any) -> None:
        """Add ``key`` with its reference bit set (it was just used)."""
        if key in self._index:
            raise KeyError(f"duplicate key {key!r}")
        entry = _Entry(key)
        entry.referenced = True
        # Insert just behind the hand so the new entry is inspected
        # last in the current sweep, mirroring textbook CLOCK.
        self._entries.insert(self._hand, entry)
        if self._hand < len(self._entries) - 1:
            self._hand += 1
        self._reindex(from_pos=0)

    def reference(self, key: Any) -> None:
        """Set the reference bit of ``key`` (called on a hit)."""
        self._entries[self._index[key]].referenced = True

    def evict(self) -> Any:
        """Run the clock sweep; remove and return the victim key."""
        if not self._entries:
            raise KeyError("evict from empty ClockHand")
        while True:
            if self._hand >= len(self._entries):
                self._hand = 0
            entry = self._entries[self._hand]
            if entry.referenced:
                entry.referenced = False
                self._hand += 1
            else:
                victim = self._entries.pop(self._hand).key
                del self._index[victim]
                self._reindex(from_pos=self._hand)
                if self._hand >= len(self._entries):
                    self._hand = 0
                return victim

    def remove(self, key: Any) -> None:
        """Remove an arbitrary key (needed when another layer steals it)."""
        pos = self._index.pop(key)
        self._entries.pop(pos)
        if pos < self._hand:
            self._hand -= 1
        self._reindex(from_pos=pos)
        if self._entries and self._hand >= len(self._entries):
            self._hand = 0

    def _reindex(self, from_pos: int) -> None:
        for i in range(from_pos, len(self._entries)):
            self._index[self._entries[i].key] = i

    def peek_victim(self) -> Optional[Any]:
        """Return the key the next :meth:`evict` would remove, or None.

        Non-destructive: simulates the sweep on a copy of the bits.
        """
        if not self._entries:
            return None
        n = len(self._entries)
        bits = [e.referenced for e in self._entries]
        hand = self._hand if self._hand < n else 0
        for _ in range(2 * n + 1):
            if bits[hand]:
                bits[hand] = False
                hand = (hand + 1) % n
            else:
                return self._entries[hand].key
        return self._entries[hand].key  # pragma: no cover - unreachable

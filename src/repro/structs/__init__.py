"""Low-level data structures used by cache policies and profilers.

Two interchangeable LRU list implementations are provided:

* :class:`~repro.structs.linked_lru.LinkedLRU` — an intrusive doubly
  linked list with a dict index; every operation is O(1) with small
  constants.  This is the default inside hot simulation loops.
* :class:`~repro.structs.ordered_lru.OrderedLRU` — a thin wrapper over
  :class:`collections.OrderedDict`; used as a differential-testing
  oracle for the linked-list version.

:class:`~repro.structs.window_counter.SlidingWindowDistinct` supports
O(1)-amortized sliding-window distinct counting, the kernel behind the
empirical working-set functions ``f(n)`` and ``g(n)`` of the locality
model (§2, §7).  :class:`~repro.structs.clock_hand.ClockHand` backs the
CLOCK policy.
"""

from repro.structs.linked_lru import LinkedLRU
from repro.structs.ordered_lru import OrderedLRU
from repro.structs.window_counter import SlidingWindowDistinct, max_distinct_per_window
from repro.structs.clock_hand import ClockHand

__all__ = [
    "LinkedLRU",
    "OrderedLRU",
    "SlidingWindowDistinct",
    "max_distinct_per_window",
    "ClockHand",
]

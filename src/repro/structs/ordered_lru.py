"""OrderedDict-backed LRU list, API-compatible with :class:`LinkedLRU`.

This implementation exists for differential testing: property-based
tests drive identical operation sequences into both structures and
assert identical observable behaviour.  It is also a perfectly usable
recency list in its own right (CPython's ``OrderedDict`` is a C-level
doubly linked list).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator

__all__ = ["OrderedLRU"]


class OrderedLRU:
    """Recency-ordered mapping with MRU-first iteration order.

    Internally the ``OrderedDict`` stores LRU→MRU (so ``popitem(False)``
    pops the LRU end); the public iteration order matches
    :class:`LinkedLRU` (MRU first).
    """

    def __init__(self) -> None:
        self._od: "OrderedDict[Any, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._od)

    def __contains__(self, key: Any) -> bool:
        return key in self._od

    def __bool__(self) -> bool:
        return bool(self._od)

    def __iter__(self) -> Iterator[Any]:
        return reversed(self._od)

    def keys_lru_to_mru(self) -> Iterator[Any]:
        return iter(self._od)

    def insert_mru(self, key: Any, value: Any = None) -> None:
        if key in self._od:
            raise KeyError(f"duplicate key {key!r}")
        self._od[key] = value

    def insert_lru(self, key: Any, value: Any = None) -> None:
        if key in self._od:
            raise KeyError(f"duplicate key {key!r}")
        self._od[key] = value
        self._od.move_to_end(key, last=False)

    def touch(self, key: Any) -> None:
        self._od.move_to_end(key, last=True)

    def demote(self, key: Any) -> None:
        self._od.move_to_end(key, last=False)

    def remove(self, key: Any) -> Any:
        return self._od.pop(key)

    def pop_lru(self) -> tuple:
        if not self._od:
            raise KeyError("pop from empty OrderedLRU")
        return self._od.popitem(last=False)

    def pop_mru(self) -> tuple:
        if not self._od:
            raise KeyError("pop from empty OrderedLRU")
        return self._od.popitem(last=True)

    def clear(self) -> None:
        self._od.clear()

    def get(self, key: Any, default: Any = None) -> Any:
        return self._od.get(key, default)

    def set_value(self, key: Any, value: Any) -> None:
        if key not in self._od:
            raise KeyError(key)
        # Assignment alone would move nothing; OrderedDict keeps the
        # position of an existing key on value update.
        self._od[key] = value

    def lru_key(self) -> Any:
        if not self._od:
            raise KeyError("empty OrderedLRU")
        return next(iter(self._od))

    def mru_key(self) -> Any:
        if not self._od:
            raise KeyError("empty OrderedLRU")
        return next(reversed(self._od))

"""Intrusive doubly-linked LRU list with O(1) operations.

This is the workhorse recency structure for every LRU-family policy in
the simulator.  Compared to :class:`collections.OrderedDict`, an
explicit node list lets policies hold direct node references, peek both
ends, and remove arbitrary entries without hashing twice.

The list orders keys from most-recently-used (head) to least-recently-
used (tail).  Values are optional payloads attached to keys (block
policies store the set of resident items of a block there).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

__all__ = ["LinkedLRU"]


class _Node:
    __slots__ = ("key", "value", "prev", "next")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.prev: Optional[_Node] = None
        self.next: Optional[_Node] = None


class LinkedLRU:
    """A recency-ordered mapping: MRU at the head, LRU at the tail.

    Examples
    --------
    >>> lru = LinkedLRU()
    >>> for x in (1, 2, 3):
    ...     lru.insert_mru(x)
    >>> lru.lru_key()
    1
    >>> lru.touch(1)          # 1 becomes most recent
    >>> lru.lru_key()
    2
    >>> lru.pop_lru()
    (2, None)
    """

    def __init__(self) -> None:
        self._index: Dict[Any, _Node] = {}
        # Sentinel nodes avoid edge-case branching on empty/one-element
        # lists; they are never exposed.
        self._head = _Node(None, None)
        self._tail = _Node(None, None)
        self._head.next = self._tail
        self._tail.prev = self._head

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Any) -> bool:
        return key in self._index

    def __bool__(self) -> bool:
        return bool(self._index)

    def __iter__(self) -> Iterator[Any]:
        """Iterate keys from MRU to LRU."""
        node = self._head.next
        while node is not self._tail:
            yield node.key
            node = node.next

    def keys_lru_to_mru(self) -> Iterator[Any]:
        """Iterate keys from LRU to MRU (reverse recency order)."""
        node = self._tail.prev
        while node is not self._head:
            yield node.key
            node = node.prev

    # -- internal link surgery ---------------------------------------------
    def _unlink(self, node: _Node) -> None:
        node.prev.next = node.next
        node.next.prev = node.prev

    def _link_front(self, node: _Node) -> None:
        node.prev = self._head
        node.next = self._head.next
        self._head.next.prev = node
        self._head.next = node

    def _link_back(self, node: _Node) -> None:
        node.next = self._tail
        node.prev = self._tail.prev
        self._tail.prev.next = node
        self._tail.prev = node

    # -- mutating API --------------------------------------------------------
    def insert_mru(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` at the MRU position; error if already present."""
        if key in self._index:
            raise KeyError(f"duplicate key {key!r}")
        node = _Node(key, value)
        self._index[key] = node
        self._link_front(node)

    def insert_lru(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` at the LRU position (coldest end)."""
        if key in self._index:
            raise KeyError(f"duplicate key {key!r}")
        node = _Node(key, value)
        self._index[key] = node
        self._link_back(node)

    def touch(self, key: Any) -> None:
        """Move ``key`` to the MRU position."""
        node = self._index[key]
        self._unlink(node)
        self._link_front(node)

    def demote(self, key: Any) -> None:
        """Move ``key`` to the LRU position (used by MRU-style policies)."""
        node = self._index[key]
        self._unlink(node)
        self._link_back(node)

    def remove(self, key: Any) -> Any:
        """Remove ``key``; return its value."""
        node = self._index.pop(key)
        self._unlink(node)
        return node.value

    def pop_lru(self) -> tuple:
        """Remove and return ``(key, value)`` of the least-recent entry."""
        node = self._tail.prev
        if node is self._head:
            raise KeyError("pop from empty LinkedLRU")
        self._unlink(node)
        del self._index[node.key]
        return node.key, node.value

    def pop_mru(self) -> tuple:
        """Remove and return ``(key, value)`` of the most-recent entry."""
        node = self._head.next
        if node is self._tail:
            raise KeyError("pop from empty LinkedLRU")
        self._unlink(node)
        del self._index[node.key]
        return node.key, node.value

    def clear(self) -> None:
        """Remove every entry."""
        self._index.clear()
        self._head.next = self._tail
        self._tail.prev = self._head

    # -- lookups -------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value for ``key`` without changing recency."""
        node = self._index.get(key)
        return default if node is None else node.value

    def set_value(self, key: Any, value: Any) -> None:
        """Replace the payload for ``key`` without changing recency."""
        self._index[key].value = value

    def lru_key(self) -> Any:
        """The least-recently-used key (next eviction victim)."""
        node = self._tail.prev
        if node is self._head:
            raise KeyError("empty LinkedLRU")
        return node.key

    def mru_key(self) -> Any:
        """The most-recently-used key."""
        node = self._head.next
        if node is self._tail:
            raise KeyError("empty LinkedLRU")
        return node.key

"""Sliding-window distinct counting.

The locality model of §2 and §7 characterizes a trace by two concave
functions:

* ``f(n)`` — the maximum number of distinct *items* in any window of
  ``n`` consecutive accesses, and
* ``g(n)`` — the maximum number of distinct *blocks* in any window.

Computing the max over all windows naively is O(T·n) per window size.
:class:`SlidingWindowDistinct` maintains the distinct count of a moving
window in O(1) amortized per step, so profiling one window size is a
single O(T) pass, and :func:`max_distinct_per_window` profiles a whole
set of window sizes in one call.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SlidingWindowDistinct", "max_distinct_per_window"]


class SlidingWindowDistinct:
    """Distinct-element counter over a fixed-size sliding window.

    Push values with :meth:`push`; once ``window`` values have been
    pushed the oldest value is retired automatically.  ``distinct``
    always reflects the current window contents.

    Examples
    --------
    >>> w = SlidingWindowDistinct(3)
    >>> [w.push(x) for x in [7, 7, 8, 9, 7]]
    [1, 1, 2, 3, 3]
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self._counts: Dict[int, int] = {}
        self._buffer: List[int] = [0] * window
        self._filled = 0
        self._pos = 0

    @property
    def distinct(self) -> int:
        """Number of distinct values currently in the window."""
        return len(self._counts)

    @property
    def full(self) -> bool:
        """Whether the window has seen at least ``window`` values."""
        return self._filled >= self.window

    def push(self, value: int) -> int:
        """Slide the window forward by one value; return the new count."""
        if self._filled >= self.window:
            old = self._buffer[self._pos]
            remaining = self._counts[old] - 1
            if remaining:
                self._counts[old] = remaining
            else:
                del self._counts[old]
        else:
            self._filled += 1
        self._buffer[self._pos] = value
        self._pos += 1
        if self._pos == self.window:
            self._pos = 0
        self._counts[value] = self._counts.get(value, 0) + 1
        return len(self._counts)


def max_distinct_per_window(
    trace: Sequence[int] | np.ndarray, windows: Iterable[int]
) -> Dict[int, int]:
    """Maximum distinct count over every window of each requested size.

    This is the empirical working-set function evaluated at the given
    window sizes: applied to item ids it yields ``f(n)``, applied to
    block ids it yields ``g(n)``.  Windows larger than the trace are
    evaluated over the whole trace (a single, short window), matching
    the convention that ``f`` is defined by the maximum over existing
    windows.

    Parameters
    ----------
    trace:
        Sequence of integer ids.
    windows:
        Window sizes ``n`` to evaluate.

    Returns
    -------
    dict
        ``{n: max distinct over windows of size n}``.
    """
    arr = np.asarray(trace, dtype=np.int64)
    if arr.ndim != 1:
        raise ConfigurationError("trace must be one-dimensional")
    out: Dict[int, int] = {}
    total_distinct = len(np.unique(arr)) if arr.size else 0
    for n in windows:
        if n < 1:
            raise ConfigurationError(f"window must be >= 1, got {n}")
        if arr.size == 0:
            out[n] = 0
            continue
        if n >= arr.size:
            out[n] = total_distinct
            continue
        counter = SlidingWindowDistinct(n)
        best = 0
        for v in arr.tolist():
            d = counter.push(v)
            if counter.full and d > best:
                best = d
        # Also consider the warm-up prefixes: a window of size n fully
        # inside the trace is what we want, and the first full window is
        # reached at index n-1, so `counter.full` gating is exact.
        out[n] = best
    return out

"""Aggregated results of an N-shard cluster replay.

:class:`ClusterResult` wraps the merged :class:`~repro.types.SimResult`
taxonomy (accesses/misses/temporal/spatial summed across shards — exact,
because each access is served by exactly one shard) with the
cluster-only signals a single cache cannot have: per-shard taxonomies,
load-imbalance statistics, the router's block-split counters, and —
when the trace is tenant-tagged — a per-tenant taxonomy for isolation
experiments.

Like :class:`repro.serving.ServingResult` it stores losslessly into the
campaign store via a self-tagged :meth:`fields` payload
(``"kind": "cluster"``) that
:func:`repro.campaign.runner.result_from_fields` dispatches on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.types import SimResult

__all__ = ["ClusterResult"]


def _taxonomy_row(sim: SimResult) -> Dict[str, Any]:
    return {
        "accesses": sim.accesses,
        "misses": sim.misses,
        "temporal_hits": sim.temporal_hits,
        "spatial_hits": sim.spatial_hits,
        "miss_ratio": sim.miss_ratio,
        "spatial_fraction": sim.spatial_fraction,
    }


@dataclass
class ClusterResult:
    """One cluster replay: merged + per-shard + per-tenant taxonomies.

    Attributes
    ----------
    sim:
        Cross-shard merged result; ``sim.metadata`` keeps scalar
        experiment context exactly like a single-cache result, so the
        report/CSV layers need no special casing.
    shards:
        Per-shard :class:`SimResult`, index = shard id.  Empty shards
        (no routed accesses) appear as zero rows, preserving positions.
    cluster:
        The :class:`~repro.cluster.replay.ClusterSpec` dict this was
        run under (router identity + capacity/tenancy modes).
    tenants:
        Optional per-tenant taxonomy (tenant name → counter dict with
        accesses/misses/temporal_hits/spatial_hits), filled when the
        replay was given tenant tags.
    block_stats:
        Router block-split counters for the driving trace:
        blocks_referenced / blocks_split / mean_shards_per_block.
    """

    sim: SimResult
    shards: List[SimResult]
    cluster: Dict[str, Any]
    tenants: Dict[str, Dict[str, int]] = field(default_factory=dict)
    block_stats: Dict[str, Any] = field(default_factory=dict)

    # -- cluster-level signals ---------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def scheme(self) -> str:
        return str(self.cluster.get("scheme", ""))

    @property
    def load_imbalance(self) -> float:
        """Max shard accesses over mean shard accesses (1.0 = perfect).

        The standard "hot shard" factor: a value of 1.3 means the
        busiest shard serves 30 % more traffic than a perfectly even
        split would give it.
        """
        counts = [s.accesses for s in self.shards]
        if not counts or sum(counts) == 0:
            return 0.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    @property
    def blocks_split(self) -> int:
        return int(self.block_stats.get("blocks_split", 0))

    def tenant_spatial_fraction(self, tenant: str) -> float:
        row = self.tenants.get(tenant, {})
        hits = row.get("temporal_hits", 0) + row.get("spatial_hits", 0)
        return row.get("spatial_hits", 0) / hits if hits else 0.0

    def tenant_miss_ratio(self, tenant: str) -> float:
        row = self.tenants.get(tenant, {})
        accesses = row.get("accesses", 0)
        return row.get("misses", 0) / accesses if accesses else 0.0

    # -- interchange -------------------------------------------------------
    def as_row(self) -> Dict[str, Any]:
        """Flat row: the merged cache columns + cluster columns."""
        row = self.sim.as_row()
        row.update(
            {
                "n_shards": self.n_shards,
                "hash_scheme": self.scheme,
                "load_imbalance": self.load_imbalance,
                "blocks_split": self.blocks_split,
                "mean_shards_per_block": float(
                    self.block_stats.get("mean_shards_per_block", 0.0)
                ),
            }
        )
        for name in sorted(self.tenants):
            row[f"miss_ratio_{name}"] = self.tenant_miss_ratio(name)
            row[f"spatial_fraction_{name}"] = self.tenant_spatial_fraction(name)
        return row

    def per_shard_rows(self) -> List[Dict[str, Any]]:
        """One taxonomy row per shard (for reports and imbalance plots)."""
        return [
            {"shard": idx, **_taxonomy_row(sim)}
            for idx, sim in enumerate(self.shards)
        ]

    def fields(self) -> Dict[str, Any]:
        """Lossless JSON-safe payload (campaign-store interchange).

        ``"kind": "cluster"`` is the dispatch marker for
        :func:`repro.campaign.runner.result_from_fields`; top-level
        ``accesses`` feeds the executor's progress counters.
        """
        from repro.campaign.runner import result_fields

        return {
            "kind": "cluster",
            "accesses": self.sim.accesses,
            "sim": result_fields(self.sim),
            "shards": [result_fields(sim) for sim in self.shards],
            "cluster": dict(self.cluster),
            "tenants": {
                name: dict(row) for name, row in sorted(self.tenants.items())
            },
            "block_stats": dict(self.block_stats),
        }

    @classmethod
    def from_fields(cls, data: Mapping[str, Any]) -> "ClusterResult":
        from repro.campaign.runner import result_from_fields

        return cls(
            sim=result_from_fields(data["sim"]),
            shards=[result_from_fields(row) for row in data["shards"]],
            cluster=dict(data["cluster"]),
            tenants={
                name: {k: int(v) for k, v in row.items()}
                for name, row in data.get("tenants", {}).items()
            },
            block_stats=dict(data.get("block_stats", {})),
        )

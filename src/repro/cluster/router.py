"""Shard routing: which cache instance serves which item.

A real deployment shards keys across many cache instances, and the
choice of *what to hash* is exactly the granularity question the paper
asks at the single-cache level: hash the **item** and a block's items
scatter across shards (each shard sees a shredded remnant of every
spatial run), or hash the **block** and a block's items stay together
(spatial runs survive sharding intact, at the price of coarser load
balancing).  :class:`ShardRouter` implements both as consistent-hash
rings over virtual nodes, plus a ``modulo`` striping baseline:

* ``"block"`` — block-aware consistent hashing.  The ring key is the
  item's *block id*, so every item of a block routes to the same shard
  by construction (the invariant ``tests/test_cluster_router.py``
  pins).  Spatial locality — and with it IBLP/GCM's advantage — is
  preserved at any shard count.
* ``"item"`` — item-striped consistent hashing.  The ring key is the
  item id; a ``B``-item block lands on up to ``min(B, n_shards)``
  distinct shards, so within-block runs are shredded and the
  spatial fraction each shard observes degrades as the cluster grows.
* ``"modulo"`` — ``item % n_shards``, the naive baseline.  Maximally
  shreds consecutive items (adjacent items *never* share a shard for
  ``n_shards > 1``) and remaps almost every key when the shard count
  changes.

Routing is pure integer arithmetic on a seeded 64-bit mix (SplitMix64
— no Python ``hash()`` salting, no wall clock), so a
:class:`ShardRouter` is fully described by its :meth:`identity` dict:
the campaign layer hashes that identity into cluster cells' content
addresses.

Derived sub-trace fingerprints
------------------------------
:meth:`split` returns per-shard sub-traces whose
:meth:`~repro.core.trace.Trace.fingerprint` is *derived* — a digest of
(parent fingerprint, router identity, shard id) — rather than re-hashed
from the sub-trace's items.  Routing is deterministic, so the derived
digest names the sub-trace content just as uniquely while costing O(1)
instead of O(n) per shard; a process-local cache keyed by (parent
fingerprint, identity, shard) makes repeated splits free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.mapping import BlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError

__all__ = ["ShardRouter", "RoutingPlan", "SCHEMES", "derived_fingerprint"]

#: Hash schemes a router understands (see the module docstring).
SCHEMES: Tuple[str, ...] = ("block", "item", "modulo")

#: Derived-fingerprint cache: (parent_fp, identity_json, shard) -> hex.
_FP_CACHE: Dict[Tuple[str, str, int], str] = {}
_FP_CACHE_MAX = 4096


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer (stable across platforms/runs)."""
    z = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z


def derived_fingerprint(parent_fp: str, identity_json: str, shard: int) -> str:
    """Content hash of one shard's sub-trace, derived without rehashing.

    Deterministic routing makes (parent trace, router identity, shard)
    a complete description of the sub-trace's content, so hashing that
    triple is as collision-safe as rehashing the filtered items — and
    O(1) instead of O(n) per shard.
    """
    key = (parent_fp, identity_json, shard)
    cached = _FP_CACHE.get(key)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(b"subtrace-v1\x00")
    h.update(parent_fp.encode())
    h.update(b"\x00")
    h.update(identity_json.encode())
    h.update(f"\x00shard:{shard}".encode())
    digest = h.hexdigest()
    if len(_FP_CACHE) >= _FP_CACHE_MAX:
        _FP_CACHE.clear()
    _FP_CACHE[key] = digest
    return digest


@dataclass
class RoutingPlan:
    """One trace split by a router: per-shard views plus provenance.

    ``indices[s]`` gives the original trace positions shard ``s``
    serves, in trace order; ``subtraces[s]`` is the corresponding
    :class:`Trace` over the *parent's* mapping (a shard still knows the
    full block structure — that is what makes "the policy loaded items
    another shard owns" measurable).  ``shard_of`` maps every access to
    its shard.
    """

    shard_of: np.ndarray
    indices: List[np.ndarray]
    subtraces: List[Trace]

    @property
    def n_shards(self) -> int:
        return len(self.subtraces)

    def accesses_per_shard(self) -> np.ndarray:
        return np.array([idx.size for idx in self.indices], dtype=np.int64)


@dataclass(frozen=True)
class ShardRouter:
    """Deterministic item→shard routing for an N-shard cluster.

    Parameters
    ----------
    n_shards:
        Cluster size (>= 1).
    scheme:
        One of :data:`SCHEMES`; see the module docstring.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring (ignored by
        ``modulo``).  More vnodes smooth the load split; 64 keeps the
        ring small while bounding imbalance to a few percent.
    seed:
        Salts the ring and key hashes, so two clusters with different
        seeds place keys independently.
    """

    n_shards: int
    scheme: str = "block"
    vnodes: int = 64
    seed: int = 0
    _ring: Tuple[np.ndarray, np.ndarray] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown hash scheme {self.scheme!r}; known: "
                f"{', '.join(SCHEMES)}"
            )
        if self.vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.scheme != "modulo":
            object.__setattr__(self, "_ring", self._build_ring())

    def _build_ring(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted ring positions and their owning shards.

        Each shard contributes ``vnodes`` points at
        ``splitmix64(seed-mixed shard*vnodes + v)``; a key belongs to
        the first ring point at or after its own hash (wrapping).
        Collisions between ring points are broken by shard id, which
        keeps ownership deterministic.
        """
        ids = np.arange(self.n_shards * self.vnodes, dtype=np.uint64)
        salt = np.uint64((self.seed * 0x9E3779B9 + 0xA5A5A5A5) & 0xFFFFFFFFFFFFFFFF)
        points = _splitmix64(ids ^ salt)
        owners = (ids // np.uint64(self.vnodes)).astype(np.int64)
        order = np.lexsort((owners, points))
        return points[order], owners[order]

    # -- routing -----------------------------------------------------------
    def _ring_lookup(self, keys: np.ndarray) -> np.ndarray:
        points, owners = self._ring
        salt = np.uint64((self.seed * 0x51ED2701 + 0x3C6EF372) & 0xFFFFFFFFFFFFFFFF)
        hashed = _splitmix64(keys.astype(np.uint64) ^ salt)
        pos = np.searchsorted(points, hashed, side="left")
        pos[pos == points.size] = 0  # wrap past the last ring point
        return owners[pos]

    def shards_of(self, items: np.ndarray, mapping: BlockMapping) -> np.ndarray:
        """Vectorized shard id per item (``int64``, same length)."""
        items = np.asarray(items, dtype=np.int64)
        if self.n_shards == 1:
            return np.zeros(items.size, dtype=np.int64)
        if self.scheme == "modulo":
            return items % self.n_shards
        keys = mapping.blocks_of(items) if self.scheme == "block" else items
        return self._ring_lookup(np.asarray(keys, dtype=np.int64))

    def shard_of(self, item: int, mapping: BlockMapping) -> int:
        """Shard id of a single item (scalar convenience)."""
        return int(
            self.shards_of(np.array([item], dtype=np.int64), mapping)[0]
        )

    # -- trace splitting ---------------------------------------------------
    def split(self, trace: Trace) -> RoutingPlan:
        """Route every access; return per-shard sub-traces (one pass).

        Sub-traces keep the parent's mapping and metadata and carry
        derived fingerprints (see the module docstring), so downstream
        content-addressed consumers — the compile memo, campaign
        stores — treat each shard's stream as its own trace without
        rehashing the parent once per shard.
        """
        shard_of = self.shards_of(trace.items, trace.mapping)
        identity_json = self.identity_json()
        parent_fp = trace.fingerprint()
        indices: List[np.ndarray] = []
        subtraces: List[Trace] = []
        for shard in range(self.n_shards):
            idx = np.nonzero(shard_of == shard)[0]
            sub = Trace(
                trace.items[idx],
                trace.mapping,
                {**trace.metadata, "shard": shard, "n_shards": self.n_shards},
            )
            sub._fp = derived_fingerprint(parent_fp, identity_json, shard)
            indices.append(idx)
            subtraces.append(sub)
        return RoutingPlan(
            shard_of=shard_of, indices=indices, subtraces=subtraces
        )

    # -- diagnostics -------------------------------------------------------
    def block_split_stats(self, trace: Trace) -> Dict[str, Any]:
        """How badly this routing splits the trace's referenced blocks.

        ``blocks_split`` counts referenced blocks whose items land on
        more than one shard (always 0 for the block-aware scheme);
        ``mean_shards_per_block`` averages the per-block shard spread.
        """
        if not len(trace):
            return {
                "blocks_referenced": 0,
                "blocks_split": 0,
                "mean_shards_per_block": 0.0,
            }
        blocks = trace.block_trace()
        shards = self.shards_of(trace.items, trace.mapping)
        pairs = np.unique(
            np.stack([blocks, shards], axis=1), axis=0
        )
        referenced, spread = np.unique(pairs[:, 0], return_counts=True)
        return {
            "blocks_referenced": int(referenced.size),
            "blocks_split": int(np.count_nonzero(spread > 1)),
            "mean_shards_per_block": float(spread.mean()),
        }

    # -- identity / serialization ------------------------------------------
    def identity(self) -> Dict[str, Any]:
        """JSON-scalar routing identity (joins cluster content hashes)."""
        return {
            "n_shards": self.n_shards,
            "scheme": self.scheme,
            "vnodes": self.vnodes,
            "seed": self.seed,
        }

    def identity_json(self) -> str:
        return json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardRouter":
        return cls(
            n_shards=int(data["n_shards"]),
            scheme=str(data.get("scheme", "block")),
            vnodes=int(data.get("vnodes", 64)),
            seed=int(data.get("seed", 0)),
        )

"""Single-pass cluster replay: route once, replay per shard, merge.

:func:`replay_cluster` scales the single-cache :func:`simulate` to an
N-shard cluster.  One vectorized routing pass splits the trace by
shard (:meth:`ShardRouter.split`), each shard then replays *its own*
sub-trace through an independent policy instance — via the fast
kernels when they apply, the referee otherwise — and the per-shard
taxonomies merge exactly (every access is served by exactly one
shard).  Total replay work is therefore one traversal of the trace
plus the O(n) routing pass, which is what the ``bench_cluster.py``
≤2× overhead gate pins.

The crucial modeling decision: **shard policies keep the full block
mapping.**  A shard's policy replays only the accesses routed to it,
but a miss still loads whatever subset of the *original* block the
policy chooses.  Under block-aware hashing every item of that block
routes back to the same shard, so side-loads turn into spatial hits
exactly as in the single cache; under item-striped hashing the
side-loaded neighbours mostly belong to *other* shards — capacity
spent on items this shard will never be asked for — which is precisely
the sharding-splits-blocks degradation the paper's granularity lens
predicts.  At ``n_shards=1`` both schemes route everything to shard 0
and the replay is bit-identical to single-cache :func:`simulate`
(pinned by ``tests/test_cluster_replay.py``).

Multi-tenancy
-------------
:func:`combine_tenants` packs per-tenant traces into one cluster trace
over disjoint block-aligned item ranges, deterministically interleaved
in proportion to each tenant's length, and returns per-access tenant
tags.  :func:`replay_cluster` accepts those tags and attributes every
access's hit kind back to its tenant (``ClusterResult.tenants``).
Capacity partitioning modes for the isolation experiment:

* ``"shared"`` — all tenants compete inside one policy instance per
  shard (one cluster replay over the combined trace).
* ``"static"`` — each tenant gets a static capacity share and its own
  policy instances (tenant item ranges are disjoint, so this
  decomposes into independent per-tenant cluster replays whose shard
  results merge by shard id).
* ``"per-tenant"`` — like ``static`` but each tenant also chooses its
  own policy (the cache_ext-style "right policy per workload" split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.result import ClusterResult
from repro.cluster.router import ShardRouter
from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.telemetry import spans
from repro.types import HitKind, SimResult

__all__ = [
    "ClusterSpec",
    "replay_cluster",
    "replay_multitenant",
    "combine_tenants",
    "CAPACITY_MODES",
    "TENANCY_MODES",
]

#: How the total capacity is divided across shards.
CAPACITY_MODES: Tuple[str, ...] = ("split", "per-shard")
#: Multi-tenant partitioning modes (see the module docstring).
TENANCY_MODES: Tuple[str, ...] = ("shared", "static", "per-tenant")

#: Per-access hit-kind codes, matching :mod:`repro.core.fast`.
_KIND_CODE = {HitKind.MISS: 0, HitKind.TEMPORAL_HIT: 1, HitKind.SPATIAL_HIT: 2}


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative cluster shape (joins campaign content addresses).

    ``capacity_mode="split"`` divides the cell's total capacity evenly
    (``max(1, k // n_shards)`` per shard — so ``n_shards=1`` keeps the
    full ``k`` and single-cache conformance holds); ``"per-shard"``
    gives every shard the full ``k`` (models scale-out at constant
    per-instance memory).
    """

    n_shards: int
    scheme: str = "block"
    vnodes: int = 64
    hash_seed: int = 0
    capacity_mode: str = "split"

    def __post_init__(self) -> None:
        if self.capacity_mode not in CAPACITY_MODES:
            raise ConfigurationError(
                f"unknown capacity_mode {self.capacity_mode!r}; known: "
                f"{', '.join(CAPACITY_MODES)}"
            )

    def router(self) -> ShardRouter:
        return ShardRouter(
            n_shards=self.n_shards,
            scheme=self.scheme,
            vnodes=self.vnodes,
            seed=self.hash_seed,
        )

    def shard_capacity(self, capacity: int) -> int:
        if self.capacity_mode == "per-shard":
            return capacity
        return max(1, capacity // self.n_shards)

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON-scalar form (hashed into cluster cells)."""
        return {
            "n_shards": self.n_shards,
            "scheme": self.scheme,
            "vnodes": self.vnodes,
            "hash_seed": self.hash_seed,
            "capacity_mode": self.capacity_mode,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        return cls(
            n_shards=int(data["n_shards"]),
            scheme=str(data.get("scheme", "block")),
            vnodes=int(data.get("vnodes", 64)),
            hash_seed=int(data.get("hash_seed", 0)),
            capacity_mode=str(data.get("capacity_mode", "split")),
        )


def _scalar_metadata(trace: Trace) -> Dict[str, Any]:
    return {
        k: v for k, v in trace.metadata.items() if isinstance(v, (str, int, float))
    }


def _replay_shard(
    policy_name: str,
    capacity: int,
    sub: Trace,
    *,
    policy_kwargs: Mapping[str, Any],
    fast: bool,
    validate: bool,
    want_kinds: bool,
) -> Tuple[SimResult, Optional[np.ndarray]]:
    """Replay one shard's sub-trace; optionally return per-access kinds.

    The kinds stream (0=miss, 1=temporal, 2=spatial, trace order) is
    only materialized when tenant attribution needs it: the fast
    kernels expose it through their ``record`` hook at native speed,
    the referee through ``on_access`` — both streams are
    conformance-proven identical, so attribution is path-independent.
    """
    from repro.policies import make_policy

    instance = make_policy(
        policy_name, capacity, sub.mapping, **dict(policy_kwargs)
    )
    if not want_kinds:
        return simulate(instance, sub, validate=validate, fast=fast), None
    if fast:
        from repro.core.fast import fast_simulate

        record: List[int] = []
        result = fast_simulate(instance, sub, record)
        if result is not None:
            return result, np.asarray(record, dtype=np.int8)
    kinds = np.empty(len(sub), dtype=np.int8)

    def observe(pos: int, item: int, kind: HitKind) -> None:
        kinds[pos] = _KIND_CODE[kind]

    result = simulate(instance, sub, validate=validate, on_access=observe)
    return result, kinds


def _merge_shards(
    policy_name: str,
    capacity: int,
    shard_results: Sequence[SimResult],
    trace: Trace,
) -> SimResult:
    """Exact cross-shard merge; metadata comes from the parent trace.

    Each access is served by exactly one shard, so the counters sum;
    metadata is rebuilt from the parent (shard sub-traces tag
    themselves with ``shard``/``n_shards``, which must not leak into
    the merged result — at ``n_shards=1`` the merge is bit-identical
    to single-cache :func:`simulate`).
    """
    merged = SimResult(policy=policy_name, capacity=capacity)
    merged.metadata.update(_scalar_metadata(trace))
    for res in shard_results:
        merged.accesses += res.accesses
        merged.misses += res.misses
        merged.temporal_hits += res.temporal_hits
        merged.spatial_hits += res.spatial_hits
        merged.loaded_items += res.loaded_items
        merged.evicted_items += res.evicted_items
    return merged


def _tenant_taxonomy(
    kinds: np.ndarray,
    tenant_ids: np.ndarray,
    tenant_names: Sequence[str],
) -> Dict[str, Dict[str, int]]:
    """Scatter per-access kinds into per-tenant taxonomy counters."""
    out: Dict[str, Dict[str, int]] = {}
    for tid, name in enumerate(tenant_names):
        mask = tenant_ids == tid
        tk = kinds[mask]
        out[name] = {
            "accesses": int(tk.size),
            "misses": int(np.count_nonzero(tk == 0)),
            "temporal_hits": int(np.count_nonzero(tk == 1)),
            "spatial_hits": int(np.count_nonzero(tk == 2)),
        }
    return out


def replay_cluster(
    policy: str,
    capacity: int,
    trace: Trace,
    cluster: ClusterSpec,
    *,
    policy_kwargs: Optional[Mapping[str, Any]] = None,
    tenant_ids: Optional[np.ndarray] = None,
    tenant_names: Optional[Sequence[str]] = None,
    fast: bool = True,
    validate: bool = True,
) -> ClusterResult:
    """Replay ``trace`` through an N-shard cluster of ``policy`` caches.

    Parameters
    ----------
    policy:
        Registry name (``make_policy``); each shard gets its own
        instance at :meth:`ClusterSpec.shard_capacity`.
    capacity:
        Total cluster capacity (split per ``cluster.capacity_mode``).
    tenant_ids / tenant_names:
        Optional per-access tenant tags (from :func:`combine_tenants`);
        when given, every access's hit kind is attributed back to its
        tenant in ``ClusterResult.tenants``.
    fast / validate:
        Forwarded to each shard's replay, same semantics as
        :func:`repro.core.engine.simulate`.
    """
    policy_kwargs = policy_kwargs or {}
    want_kinds = tenant_ids is not None
    if want_kinds:
        tenant_ids = np.asarray(tenant_ids, dtype=np.int64)
        if tenant_ids.size != len(trace):
            raise ConfigurationError(
                f"tenant_ids length {tenant_ids.size} != trace length {len(trace)}"
            )
        if tenant_names is None:
            raise ConfigurationError("tenant_ids given without tenant_names")
    router = cluster.router()
    with spans.span(
        "cluster.replay",
        policy=policy,
        capacity=capacity,
        n_shards=cluster.n_shards,
        scheme=cluster.scheme,
    ):
        with spans.span("cluster.route", scheme=cluster.scheme) as sp:
            plan = router.split(trace)
            block_stats = router.block_split_stats(trace)
            if sp is not None:
                sp.set("blocks_split", block_stats["blocks_split"])
        shard_capacity = cluster.shard_capacity(capacity)
        shard_results: List[SimResult] = []
        kinds_global = (
            np.empty(len(trace), dtype=np.int8) if want_kinds else None
        )
        for shard, sub in enumerate(plan.subtraces):
            with spans.span(
                "cluster.shard", shard=shard, accesses=len(sub)
            ):
                res, kinds = _replay_shard(
                    policy,
                    shard_capacity,
                    sub,
                    policy_kwargs=policy_kwargs,
                    fast=fast,
                    validate=validate,
                    want_kinds=want_kinds,
                )
            shard_results.append(res)
            if kinds_global is not None:
                kinds_global[plan.indices[shard]] = kinds
        with spans.span("cluster.merge", n_shards=cluster.n_shards):
            merged = _merge_shards(policy, capacity, shard_results, trace)
            tenants = (
                _tenant_taxonomy(kinds_global, tenant_ids, list(tenant_names))
                if kinds_global is not None
                else {}
            )
    return ClusterResult(
        sim=merged,
        shards=shard_results,
        cluster=cluster.as_dict(),
        tenants=tenants,
        block_stats=block_stats,
    )


# -- multi-tenancy ---------------------------------------------------------
def combine_tenants(
    tenant_traces: Mapping[str, Trace],
) -> Tuple[Trace, np.ndarray, List[str]]:
    """Pack per-tenant traces into one tagged cluster trace.

    Tenants get disjoint block-aligned item ranges (each tenant's
    universe is already a whole number of blocks, so offsets preserve
    every block boundary), and their accesses interleave
    deterministically in proportion to trace length: the ``j``-th of
    ``m`` accesses sorts at key ``(j + 0.5) / m``, ties broken by
    tenant order.  No RNG — the same tenant traces always produce the
    same combined trace (and fingerprint).

    Returns ``(combined, tenant_ids, tenant_names)`` where
    ``tenant_ids[i]`` indexes ``tenant_names`` for access ``i``.
    """
    if not tenant_traces:
        raise ConfigurationError("combine_tenants needs at least one tenant")
    names = list(tenant_traces)
    block_sizes = {tenant_traces[n].block_size for n in names}
    if len(block_sizes) != 1:
        raise ConfigurationError(
            f"tenant traces must share one block size, got {sorted(block_sizes)}"
        )
    block_size = block_sizes.pop()
    offsets: Dict[str, int] = {}
    total_universe = 0
    for name in names:
        offsets[name] = total_universe
        total_universe += tenant_traces[name].universe
    keys: List[np.ndarray] = []
    tags: List[np.ndarray] = []
    shifted: List[np.ndarray] = []
    for tid, name in enumerate(names):
        tr = tenant_traces[name]
        m = len(tr)
        if m == 0:
            continue
        keys.append((np.arange(m, dtype=np.float64) + 0.5) / m)
        tags.append(np.full(m, tid, dtype=np.int64))
        shifted.append(tr.items + offsets[name])
    if not keys:
        raise ConfigurationError("all tenant traces are empty")
    all_keys = np.concatenate(keys)
    all_tags = np.concatenate(tags)
    all_items = np.concatenate(shifted)
    order = np.lexsort((all_tags, all_keys))
    combined = Trace(
        all_items[order],
        FixedBlockMapping(total_universe, block_size),
        {
            "generator": "combine_tenants",
            "tenants": ",".join(names),
            "block_size": block_size,
        },
    )
    return combined, all_tags[order], names


def replay_multitenant(
    tenant_traces: Mapping[str, Trace],
    mode: str,
    policy: str,
    capacity: int,
    cluster: ClusterSpec,
    *,
    policies: Optional[Mapping[str, str]] = None,
    shares: Optional[Mapping[str, float]] = None,
    policy_kwargs: Optional[Mapping[str, Any]] = None,
    fast: bool = True,
    validate: bool = True,
) -> ClusterResult:
    """Run one multi-tenant partitioning configuration on the cluster.

    ``mode`` is one of :data:`TENANCY_MODES`.  ``shares`` gives each
    tenant's fraction of the total capacity for the partitioned modes
    (default: equal split); ``policies`` overrides the per-tenant
    policy for ``"per-tenant"`` mode (default: ``policy`` for all).
    The merged result's ``policy`` string records the mode so rows from
    different configurations stay distinguishable.
    """
    if mode not in TENANCY_MODES:
        raise ConfigurationError(
            f"unknown tenancy mode {mode!r}; known: {', '.join(TENANCY_MODES)}"
        )
    names = list(tenant_traces)
    if mode == "shared":
        combined, tenant_ids, tenant_names = combine_tenants(tenant_traces)
        result = replay_cluster(
            policy,
            capacity,
            combined,
            cluster,
            policy_kwargs=policy_kwargs,
            tenant_ids=tenant_ids,
            tenant_names=tenant_names,
            fast=fast,
            validate=validate,
        )
        result.sim.metadata["tenancy"] = mode
        return result

    # Partitioned modes: tenant item ranges are disjoint, so each tenant
    # replays through its own per-shard instances independently and the
    # shard taxonomies merge by shard id.
    if shares is None:
        shares = {name: 1.0 / len(names) for name in names}
    per_policy = {name: policy for name in names}
    if mode == "per-tenant" and policies:
        per_policy.update(policies)
    shard_totals = [SimResult() for _ in range(cluster.n_shards)]
    tenants: Dict[str, Dict[str, int]] = {}
    merged = SimResult(policy=f"{policy}[{mode}]", capacity=capacity)
    block_stats = {
        "blocks_referenced": 0,
        "blocks_split": 0,
        "mean_shards_per_block": 0.0,
    }
    spread_weighted = 0.0
    with spans.span(
        "cluster.multitenant", mode=mode, tenants=",".join(names)
    ):
        for name in names:
            share = max(1, int(round(capacity * shares.get(name, 0.0))))
            sub = replay_cluster(
                per_policy[name],
                share,
                tenant_traces[name],
                cluster,
                policy_kwargs=policy_kwargs,
                fast=fast,
                validate=validate,
            )
            tenants[name] = {
                "accesses": sub.sim.accesses,
                "misses": sub.sim.misses,
                "temporal_hits": sub.sim.temporal_hits,
                "spatial_hits": sub.sim.spatial_hits,
            }
            for shard, res in enumerate(sub.shards):
                tot = shard_totals[shard]
                tot.accesses += res.accesses
                tot.misses += res.misses
                tot.temporal_hits += res.temporal_hits
                tot.spatial_hits += res.spatial_hits
                tot.loaded_items += res.loaded_items
                tot.evicted_items += res.evicted_items
            merged.accesses += sub.sim.accesses
            merged.misses += sub.sim.misses
            merged.temporal_hits += sub.sim.temporal_hits
            merged.spatial_hits += sub.sim.spatial_hits
            merged.loaded_items += sub.sim.loaded_items
            merged.evicted_items += sub.sim.evicted_items
            referenced = sub.block_stats.get("blocks_referenced", 0)
            block_stats["blocks_referenced"] += referenced
            block_stats["blocks_split"] += sub.block_stats.get("blocks_split", 0)
            spread_weighted += (
                sub.block_stats.get("mean_shards_per_block", 0.0) * referenced
            )
    if block_stats["blocks_referenced"]:
        block_stats["mean_shards_per_block"] = (
            spread_weighted / block_stats["blocks_referenced"]
        )
    merged.metadata["tenancy"] = mode
    for shard_total in shard_totals:
        shard_total.policy = f"{policy}[{mode}]"
        shard_total.capacity = cluster.shard_capacity(capacity)
    return ClusterResult(
        sim=merged,
        shards=shard_totals,
        cluster=cluster.as_dict(),
        tenants=tenants,
        block_stats=block_stats,
    )

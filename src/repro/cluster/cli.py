"""``gc-caching cluster`` — sharded-cluster replay and experiments.

Three verbs, mirroring the campaign CLI's structure:

``cluster run``
    One cluster replay: a policy, a workload, a shard count, a hash
    scheme.  Prints the merged taxonomy plus routing stats, and with
    ``--per-shard`` the per-shard breakdown.
``cluster spatial``
    The spatial-degradation headline experiment
    (:mod:`repro.experiments.spatial_degradation`): spatial fraction
    and the IBLP-vs-item-LRU miss gap across shard counts under both
    hash schemes.
``cluster isolation``
    The four-configuration multi-tenant comparison
    (:mod:`repro.experiments.isolation`).

Every verb takes ``--campaign-dir`` to memoize its cells through the
campaign store — rerunning a finished sweep recomputes nothing, and an
interrupted one resumes where it died.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from repro.analysis.tables import format_table
from repro.core.trace import Trace
from repro.workloads import (
    block_runs,
    etc_kv_workload,
    hot_and_stream,
    markov_spatial,
    uniform_random,
    zipf_items,
)

__all__ = ["add_cluster_parser", "run_cluster_command"]

_WORKLOADS: Dict[str, Callable[[argparse.Namespace], Trace]] = {
    "uniform": lambda ns: uniform_random(
        ns.length, ns.universe, ns.block_size, ns.seed
    ),
    "zipf": lambda ns: zipf_items(
        ns.length, ns.universe, ns.alpha, ns.block_size, ns.seed
    ),
    "markov": lambda ns: markov_spatial(
        ns.length, ns.universe, ns.block_size, stay=ns.stay, seed=ns.seed
    ),
    "block_runs": lambda ns: block_runs(
        ns.length, ns.universe, ns.block_size, seed=ns.seed
    ),
    "hot_and_stream": lambda ns: hot_and_stream(
        ns.length,
        hot_items=max(1, ns.universe // 8),
        stream_blocks=max(1, ns.universe // ns.block_size),
        block_size=ns.block_size,
        seed=ns.seed,
    ),
    "etc": lambda ns: etc_kv_workload(
        ns.length, ns.universe, ns.block_size, alpha=ns.alpha, seed=ns.seed
    ),
}


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--length", type=int, default=50_000)
    p.add_argument("--universe", type=int, default=4096)
    p.add_argument("--block-size", type=int, default=8)
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument("--stay", type=float, default=0.85)
    p.add_argument("--seed", type=int, default=0)


def add_cluster_parser(sub) -> None:
    """Attach the ``cluster`` subcommand tree to ``sub``."""
    from repro.cluster.router import SCHEMES
    from repro.policies import policy_names

    p = sub.add_parser(
        "cluster",
        help="sharded multi-tenant cluster replay and experiments",
    )
    verbs = p.add_subparsers(dest="cluster_command", required=True)

    p_run = verbs.add_parser(
        "run", help="replay one workload through an N-shard cluster"
    )
    p_run.add_argument(
        "--policy", choices=sorted(policy_names()), required=True
    )
    p_run.add_argument("--workload", choices=sorted(_WORKLOADS), required=True)
    p_run.add_argument("--capacity", type=int, required=True)
    p_run.add_argument("--shards", type=int, default=4)
    p_run.add_argument("--scheme", choices=SCHEMES, default="block")
    p_run.add_argument("--vnodes", type=int, default=64)
    p_run.add_argument("--hash-seed", type=int, default=0)
    p_run.add_argument(
        "--capacity-mode",
        choices=("split", "per-shard"),
        default="split",
        help="split the total capacity across shards, or give every "
        "shard the full capacity (scale-out at constant per-node memory)",
    )
    _add_workload_args(p_run)
    p_run.add_argument(
        "--fast",
        action="store_true",
        help="per-shard replay through the conformance-proven fast kernels",
    )
    p_run.add_argument(
        "--per-shard",
        action="store_true",
        help="also print the per-shard taxonomy breakdown",
    )
    p_run.add_argument(
        "--campaign-dir",
        default=None,
        help="memoize this cell in a campaign directory",
    )

    p_sp = verbs.add_parser(
        "spatial",
        help="spatial-degradation experiment: locality vs shard count",
    )
    p_sp.add_argument("--capacity", type=int, default=256)
    p_sp.add_argument(
        "--shards",
        type=lambda s: [int(x) for x in s.split(",")],
        default=None,
        help="comma-separated shard counts (default 1,2,4,8,16)",
    )
    p_sp.add_argument(
        "--schemes",
        type=lambda s: [x.strip() for x in s.split(",") if x.strip()],
        default=None,
        help="comma-separated hash schemes (default block,item)",
    )
    p_sp.add_argument(
        "--policies",
        type=lambda s: [x.strip() for x in s.split(",") if x.strip()],
        default=None,
        help="comma-separated policies; the first is granularity-aware, "
        "the second the baseline for the gap column (default iblp,item-lru)",
    )
    _add_workload_args(p_sp)
    p_sp.add_argument("--campaign-dir", default=None)

    p_iso = verbs.add_parser(
        "isolation",
        help="four-configuration multi-tenant partitioning comparison",
    )
    p_iso.add_argument("--capacity", type=int, default=256)
    p_iso.add_argument("--shards", type=int, default=4)
    p_iso.add_argument("--scheme", choices=SCHEMES, default="block")
    p_iso.add_argument("--length", type=int, default=40_000)
    p_iso.add_argument("--universe", type=int, default=2048)
    p_iso.add_argument("--block-size", type=int, default=8)
    p_iso.add_argument("--seed", type=int, default=7)
    p_iso.add_argument("--campaign-dir", default=None)


def run_cluster_command(ns: argparse.Namespace):
    """Dispatch a parsed ``cluster`` invocation; returns printable text."""
    from repro.campaign import open_cache

    cache = open_cache(ns.campaign_dir)
    try:
        if ns.cluster_command == "run":
            return _run(ns, cache)
        if ns.cluster_command == "spatial":
            return _spatial(ns, cache)
        return _isolation(ns, cache)
    finally:
        if cache is not None:
            cache.close()


def _run(ns: argparse.Namespace, cache):
    from repro.cluster import ClusterSpec, replay_cluster

    trace = _WORKLOADS[ns.workload](ns)
    spec = ClusterSpec(
        n_shards=ns.shards,
        scheme=ns.scheme,
        vnodes=ns.vnodes,
        hash_seed=ns.hash_seed,
        capacity_mode=ns.capacity_mode,
    )
    if cache is not None:
        result = cache.cluster(
            ns.policy, ns.capacity, trace, spec, fast=ns.fast
        )
    else:
        result = replay_cluster(
            ns.policy, ns.capacity, trace, spec, fast=ns.fast
        )
    out = format_table([result.as_row()], title="cluster result")
    if ns.per_shard:
        out += "\n" + format_table(
            result.per_shard_rows(), title="per-shard breakdown"
        )
    return out


def _spatial(ns: argparse.Namespace, cache):
    from repro.experiments import spatial_degradation

    kwargs = {"capacity": ns.capacity}
    if ns.shards:
        kwargs["shards"] = ns.shards
    if ns.schemes:
        kwargs["schemes"] = ns.schemes
    if ns.policies:
        kwargs["policies"] = ns.policies
    trace = spatial_degradation.default_trace(
        length=ns.length,
        universe=ns.universe,
        block_size=ns.block_size,
        stay=ns.stay,
        seed=ns.seed,
    )
    return spatial_degradation.render(trace=trace, cache=cache, **kwargs)


def _isolation(ns: argparse.Namespace, cache):
    from repro.experiments import isolation

    tenants = isolation.default_tenants(
        length=ns.length,
        universe=ns.universe,
        block_size=ns.block_size,
        seed=ns.seed,
    )
    return isolation.render(
        capacity=ns.capacity,
        n_shards=ns.shards,
        scheme=ns.scheme,
        tenants=tenants,
        cache=cache,
    )

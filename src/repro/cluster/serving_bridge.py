"""Cluster dispatch for the request-level serving simulator.

:class:`ClusterEngine` presents the referee
:class:`~repro.core.engine.Engine` surface the serving loop drives —
``access(item)`` → :class:`~repro.types.HitKind`, a live merged
``result``, a ``resident`` membership view for the SJF queue — while
routing every request to its owning shard's engine through a
precomputed item→shard table (one array index per access, no per-access
hashing).  :func:`serve_cluster` then reuses the *unmodified* serving
event loop via ``serve(engine=...)``: arrivals, queueing, drops, and
histograms all behave exactly as in the single-cache case, so tail
latency differences between hash schemes come from cache behaviour
alone.

At ``n_shards=1`` every request routes to shard 0 with the full
capacity, so the served cache stream — and the embedded
:class:`~repro.types.SimResult` — is bit-identical to single-cache
:func:`~repro.serving.serve` (pinned by
``tests/test_cluster_serving.py``).
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Optional

import numpy as np

from repro.cluster.replay import ClusterSpec
from repro.core.engine import Engine
from repro.core.trace import Trace
from repro.serving.service import ServingConfig, ServingResult, serve
from repro.telemetry import spans
from repro.types import HitKind, SimResult

__all__ = ["ClusterEngine", "serve_cluster"]


class _ClusterResident:
    """Read-only membership view across all shard engines.

    The serving loop's SJF queue only asks ``item in engine.resident``;
    delegating to the owning shard keeps that O(1) and honest (an item
    is resident in the cluster iff its shard holds it).
    """

    __slots__ = ("_engines", "_lookup")

    def __init__(self, engines: List[Engine], lookup: np.ndarray) -> None:
        self._engines = engines
        self._lookup = lookup

    def __contains__(self, item: int) -> bool:
        return item in self._engines[self._lookup[item]].resident

    def __len__(self) -> int:
        return sum(len(engine.resident) for engine in self._engines)


class ClusterEngine:
    """N per-shard referee engines behind one Engine-shaped facade.

    Each shard owns an independent policy instance at
    :meth:`ClusterSpec.shard_capacity`; :meth:`access` routes the item
    to its shard, forwards the access, and folds the shard's counter
    deltas into the merged ``result`` so the serving loop's
    ``loaded_items``-delta service-time accounting works unchanged.

    Offline policies are prepared per shard with the sub-trace that
    shard will actually see (the router is deterministic, so the
    request stream each shard receives is known up front).
    """

    def __init__(
        self,
        policy: str,
        capacity: int,
        trace: Trace,
        cluster: ClusterSpec,
        *,
        policy_kwargs: Optional[Mapping[str, Any]] = None,
        validate: bool = True,
    ) -> None:
        from repro.policies import make_policy

        router = cluster.router()
        self.cluster = cluster
        self.mapping = trace.mapping
        shard_capacity = cluster.shard_capacity(capacity)
        instances = [
            make_policy(
                policy, shard_capacity, trace.mapping, **dict(policy_kwargs or {})
            )
            for _ in range(cluster.n_shards)
        ]
        if any(inst.is_offline for inst in instances):
            plan = router.split(trace)
            for inst, sub in zip(instances, plan.subtraces):
                if inst.is_offline:
                    inst.prepare(sub)
        self.engines = [
            Engine(inst, trace.mapping, validate=validate) for inst in instances
        ]
        #: item id → shard id, precomputed over the whole universe so the
        #: per-access routing cost is one array index.
        self._lookup = router.shards_of(
            np.arange(trace.mapping.universe, dtype=np.int64), trace.mapping
        )
        self.resident = _ClusterResident(self.engines, self._lookup)
        self.result = SimResult(
            policy=getattr(instances[0], "name", type(instances[0]).__name__),
            capacity=capacity,
        )
        #: Mirrors :attr:`repro.core.engine.Engine.last_outcome` (the
        #: owning shard's most recent outcome) for size-aware serving.
        self.last_outcome = None

    def access(self, item: int) -> HitKind:
        """Serve one request on its owning shard; merge the counters."""
        engine = self.engines[self._lookup[item]]
        shard_result = engine.result
        loaded_before = shard_result.loaded_items
        evicted_before = shard_result.evicted_items
        kind = engine.access(item)
        self.last_outcome = engine.last_outcome
        merged = self.result
        merged.accesses += 1
        if kind is HitKind.MISS:
            merged.misses += 1
            merged.loaded_items += shard_result.loaded_items - loaded_before
        elif kind is HitKind.SPATIAL_HIT:
            merged.spatial_hits += 1
        else:
            merged.temporal_hits += 1
        merged.evicted_items += shard_result.evicted_items - evicted_before
        return kind

    def shard_results(self) -> List[SimResult]:
        """Per-shard taxonomies (index = shard id), live views."""
        return [engine.result for engine in self.engines]


def serve_cluster(
    policy: str,
    capacity: int,
    trace: Trace,
    cluster: ClusterSpec,
    config: Optional[ServingConfig] = None,
    *,
    policy_kwargs: Optional[Mapping[str, Any]] = None,
    validate: bool = True,
    on_access: Optional[Callable[[int, int, HitKind], None]] = None,
    on_event: Optional[Callable[[str, float, int], None]] = None,
) -> ServingResult:
    """Run the serving simulator with requests dispatched across shards.

    Same contract as :func:`repro.serving.serve` (one arrival stream,
    one server pool, one latency story) — only the cache behind the
    servers is an N-shard cluster, so scheme/shard-count effects show
    up purely as hit/miss mix and load-set-size changes.  The returned
    :class:`~repro.serving.ServingResult` carries the merged cluster
    taxonomy as its ``sim``.
    """
    with spans.span(
        "cluster.serve",
        policy=policy,
        capacity=capacity,
        n_shards=cluster.n_shards,
        scheme=cluster.scheme,
    ):
        engine = ClusterEngine(
            policy,
            capacity,
            trace,
            cluster,
            policy_kwargs=policy_kwargs,
            validate=validate,
        )
        return serve(
            None,
            trace,
            config,
            validate=validate,
            engine=engine,
            on_access=on_access,
            on_event=on_event,
        )

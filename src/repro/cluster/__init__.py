"""Sharded multi-tenant GC cache cluster.

Scales the single granularity-change cache to an N-shard cluster:
deterministic shard routing with block-aware vs item-striped hashing
(:mod:`repro.cluster.router`), a single-pass replay engine that drives
per-shard policy instances through the fast kernels and merges their
taxonomies exactly (:mod:`repro.cluster.replay`), multi-tenant capacity
partitioning for isolation experiments, and a serving bridge so the
request-level simulator can dispatch across shards
(:mod:`repro.cluster.serving_bridge`).  Results round-trip through the
campaign store as :class:`~repro.cluster.result.ClusterResult`.
"""

from repro.cluster.replay import (
    CAPACITY_MODES,
    TENANCY_MODES,
    ClusterSpec,
    combine_tenants,
    replay_cluster,
    replay_multitenant,
)
from repro.cluster.result import ClusterResult
from repro.cluster.router import SCHEMES, RoutingPlan, ShardRouter

__all__ = [
    "CAPACITY_MODES",
    "SCHEMES",
    "TENANCY_MODES",
    "ClusterResult",
    "ClusterSpec",
    "RoutingPlan",
    "ShardRouter",
    "combine_tenants",
    "replay_cluster",
    "replay_multitenant",
]

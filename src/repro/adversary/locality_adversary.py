"""Theorem 8's phase construction in the locality model (§7.1).

Given locality functions ``f`` (items per window) and ``g`` (blocks
per window) and a cache of size ``k``, the construction uses ``k + 1``
distinct items packed into ``⌈(k+1)/B⌉`` blocks and emits *phases* of
``L = f⁻¹(k+1) - 2`` accesses split into ``k - 1`` repetitions.
Repetition ``j`` repeatedly accesses a single item new to the phase,
with repetition boundaries at ``f⁻¹(j+1) - 1`` so any window of ``n``
accesses sees at most ``f(n)`` distinct items.  Whenever the
block-budget ``g`` allows (a new block may be opened only while the
number of blocks touched this phase stays below ``g``), the adversary
picks an item the online cache currently lacks, forcing a miss.

Theorem 8 concludes any deterministic policy faults at rate at least
``g(L)/L``.  :meth:`LocalityAdversary.run` reports the measured fault
rate and that bound in ``notes`` (``claimed_opt_misses`` stays 0 —
this construction bounds fault rate, not competitive ratio).
"""

from __future__ import annotations

import math
from typing import Callable, List, Set

import numpy as np

from repro.adversary.base import Adversary, AdversaryRun
from repro.core.engine import Engine
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.base import Policy

__all__ = ["LocalityAdversary"]


class LocalityAdversary(Adversary):
    """Phase-structured adversary constrained by (f, g)."""

    def __init__(
        self,
        k: int,
        B: int,
        f_inverse: Callable[[float], float],
        g: Callable[[float], float],
    ) -> None:
        # h is irrelevant here; store k as both online and "opt" size.
        super().__init__(k, max(1, k), B)
        self.f_inverse = f_inverse
        self.g = g
        self.phase_length = int(math.floor(f_inverse(k + 1))) - 2
        if self.phase_length < k - 1:
            raise ConfigurationError(
                f"phase length {self.phase_length} shorter than k-1={k-1}: "
                "f has too little locality for this cache size"
            )

    def _pool_blocks(self) -> int:
        """Blocks the k+1-item pool spreads over.

        The proof partitions the pool into *at most* ``g(L)`` blocks.
        Spreading items across as many blocks as the budget allows is
        the adversarially correct choice: any denser packing donates
        spatial locality the g-constraint does not require, letting
        block-loading policies hit for free.
        """
        budget = int(math.floor(self.g(self.phase_length)))
        need_min = -(-(self.k + 1) // self.B)  # packing can't go denser
        return max(need_min, min(self.k + 1, max(1, budget)))

    def _blocks_per_cycle(self) -> int:
        return self._pool_blocks()

    def make_mapping(self, cycles: int) -> FixedBlockMapping:
        blocks = self._pool_blocks() + 2
        return FixedBlockMapping(universe=blocks * self.B, block_size=self.B)

    def _repetition_boundaries(self) -> List[int]:
        """Start offsets of the k-1 repetitions within a phase."""
        bounds = []
        for j in range(1, self.k):
            start = int(math.ceil(self.f_inverse(j + 1))) - 1
            bounds.append(max(start, j - 1))
        bounds[0] = 0
        # Enforce strictly increasing starts so every repetition is
        # non-empty.
        for idx in range(1, len(bounds)):
            bounds[idx] = max(bounds[idx], bounds[idx - 1] + 1)
        return bounds

    def run(self, policy: Policy, cycles: int = 3) -> AdversaryRun:
        """Emit ``cycles`` phases against ``policy``."""
        if policy.capacity != self.k:
            raise ConfigurationError(
                f"policy capacity {policy.capacity} != adversary k={self.k}"
            )
        mapping = policy.mapping
        self._accesses = []
        self._misses = 0
        self._next_fresh_block = 0
        self._engine = Engine(policy, mapping)
        # Spread the k+1 pool items round-robin over the allowed number
        # of blocks (one item per block when the g-budget permits).
        nblocks = self._pool_blocks()
        block_items = [self.fresh_block() for _ in range(nblocks)]
        pool: List[int] = []
        depth = 0
        while len(pool) < self.k + 1:
            for items in block_items:
                if len(pool) >= self.k + 1:
                    break
                if depth < len(items):
                    pool.append(items[depth])
            depth += 1
            if depth > self.B:  # pragma: no cover - safety
                raise ConfigurationError("pool construction overflow")
        bounds = self._repetition_boundaries()
        L = self.phase_length
        for _ in range(cycles):
            self._run_phase(pool, bounds, L)
        trace = Trace(
            np.asarray(self._accesses, dtype=np.int64),
            mapping,
            {"adversary": "LocalityAdversary", "k": self.k, "B": self.B},
        )
        fault_rate = self._misses / len(self._accesses)
        bound = min(1.0, self.g(L) / L) if L > 0 else 1.0
        return AdversaryRun(
            trace=trace,
            policy_name=getattr(policy, "name", type(policy).__name__),
            k=self.k,
            h=self.k,
            B=self.B,
            cycles=cycles,
            warmup_accesses=0,
            warmup_misses=0,
            online_misses=self._misses,
            claimed_opt_misses=0,
            notes={
                "fault_rate": fault_rate,
                "theorem8_bound": bound,
                "phase_length": L,
            },
        )

    def _run_phase(self, pool: List[int], bounds: List[int], L: int) -> None:
        mapping = self._engine.mapping
        used_items: Set[int] = set()
        used_blocks: Set[int] = set()
        pos = 0
        for j, start in enumerate(bounds):
            end = bounds[j + 1] if j + 1 < len(bounds) else L
            if end <= pos:
                continue
            item = self._pick_item(pool, used_items, used_blocks, pos)
            used_items.add(item)
            used_blocks.add(mapping.block_of(item))
            while pos < end:
                self.access(item)
                pos += 1

    def _pick_item(
        self,
        pool: List[int],
        used_items: Set[int],
        used_blocks: Set[int],
        pos: int,
    ) -> int:
        """An unused-this-phase item, uncached if the g-budget allows."""
        mapping = self._engine.mapping
        budget = max(1.0, math.floor(self.g(pos + 1)))
        may_open_new_block = len(used_blocks) < budget
        fresh = [it for it in pool if it not in used_items]
        if not fresh:
            raise ConfigurationError("phase exhausted its item pool")

        # Preference order: force a miss if possible, and exhaust
        # already-used blocks before opening new ones (opening early
        # wastes g-budget and lets straddling windows exceed g).
        # 1st: uncached item in an already-used block.
        for it in fresh:
            if mapping.block_of(it) in used_blocks and not self.online_contains(it):
                return it
        # 2nd: uncached item in a new block, if the budget allows.
        if may_open_new_block:
            for it in fresh:
                if not self.online_contains(it):
                    return it
        # 3rd: cached item in a used block (the policy earns its hit).
        for it in fresh:
            if mapping.block_of(it) in used_blocks:
                return it
        # 4th: cached item in a new block within budget.
        if may_open_new_block:
            return fresh[0]
        # 5th: budget exhausted but no in-budget item left — open a new
        # block anyway (slight relaxation, preferring an uncached item).
        for it in fresh:
            if not self.online_contains(it):
                return it
        return fresh[0]

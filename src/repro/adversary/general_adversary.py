"""Theorem 4's general adversary, adaptive in the policy's ``a``.

Theorem 4 classifies deterministic policies by ``a`` — how many
distinct accesses a block endures before the policy has loaded all of
it.  Rather than take ``a`` as a parameter, this adversary *probes* it:
in step 2 it keeps requesting, from each fresh block, an item the
online cache **has never loaded**, until no such item remains.  For an
``a``-parameter policy that is exactly ``a`` accesses; for IBLP or a
Block Cache it is one; for an Item Cache it is ``B``.

The prescribed OPT loads, on the first access to each block, precisely
the items the adversary will request from it (it is offline), paying 1
per block, and reserves ``h - a_max`` slots to hit every step-4
request.  The per-cycle ratio realizes Theorem 4's
``(a(k-h+1) + B(h-a)) / (k-h+1)`` when ``a`` is constant.
"""

from __future__ import annotations

from typing import List, Set

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.policies.base import Policy

__all__ = ["GeneralAdversary"]


class GeneralAdversary(Adversary):
    """Theorem 4 construction with online-probed ``a``."""

    def __init__(self, k: int, h: int, B: int) -> None:
        super().__init__(k, h, B)
        if h < 2:
            raise ConfigurationError(f"need h >= 2, got {h}")
        self._opt_content: Set[int] = set()
        #: per-cycle list of per-block access counts (the probed a's)
        self.probed_a: List[List[int]] = []

    def _blocks_per_cycle(self) -> int:
        return -(-(self.k - self.h + 1) // self.B)

    def warm_up(self, policy: Policy) -> None:
        super().warm_up(policy)
        self._opt_content = self._seed_opt_content()
        self.probed_a = []

    def _run_cycle(self, policy: Policy) -> int:
        d = self._blocks_per_cycle()
        accessed: list[int] = []
        block_members: List[int] = []
        a_counts: List[int] = []
        for _ in range(d):
            block_items = self.fresh_block()
            block_members.extend(block_items)
            ever_loaded: Set[int] = set()
            count = 0
            while True:
                # Items of this block the online cache has never held.
                never = [it for it in block_items if it not in ever_loaded]
                target = next(
                    (it for it in never if not self.online_contains(it)), None
                )
                if target is None:
                    break
                self.access(target)
                accessed.append(target)
                count += 1
                # Whatever the policy just loaded from this block counts
                # as "seen" (it may have side-loaded neighbours).
                for it in block_items:
                    if self.online_contains(it):
                        ever_loaded.add(it)
                ever_loaded.add(target)
                if count > len(block_items):  # pragma: no cover - safety
                    raise ConfigurationError("probe loop exceeded block size")
            a_counts.append(count)
        self.probed_a.append(a_counts)
        a_max = max(a_counts) if a_counts else 1
        if self.h <= a_max:
            # Construction degenerates (OPT has no reserve space); keep
            # going with an empty step 4 rather than failing.
            step4_len = 0
        else:
            step4_len = self.h - a_max
        # Step 3 (per the proof): OPT's step-1 items plus *all* items of
        # the step-2 blocks — OPT, being offline, loads whichever block
        # subset step 4 will need for the same unit cost.
        candidates = self._opt_content | set(block_members)
        step4 = []
        for _ in range(step4_len):
            item = self._evade_online(candidates)
            self.access(item)
            step4.append(item)
        self._opt_content = set(step4)
        for item in reversed(accessed):
            if len(self._opt_content) >= self.h:
                break
            self._opt_content.add(item)
        return d

"""The classical Sleator–Tarjan lower-bound construction.

Each cycle accesses ``k - h + 1`` never-seen items (every policy
misses; the prescribed OPT misses too), then ``h - 1`` times requests
an item — drawn from a candidate set of ``k + 1`` items that OPT could
hold — that the online cache currently lacks (online misses; OPT hits,
having kept exactly those items).  Online pays ``k`` per cycle versus
OPT's ``k - h + 1``: ratio ``k / (k - h + 1)``.

To stay inside the *traditional* model this adversary uses one item
per block, so spatial locality never helps anyone.  It serves as the
baseline the GC adversaries are contrasted with, and as a differential
check of the whole adversary stack (BeladyItem at size ``h`` must
reproduce the claimed OPT cost exactly, since single-item blocks make
the GC problem collapse to classical caching).
"""

from __future__ import annotations

from typing import Set

from repro.adversary.base import Adversary
from repro.policies.base import Policy

__all__ = ["SleatorTarjanAdversary"]


class SleatorTarjanAdversary(Adversary):
    """Classical construction; requires ``h >= 2`` to have a step 4."""

    def __init__(self, k: int, h: int, B: int = 1) -> None:
        super().__init__(k, h, B)
        #: prescribed OPT contents at the top of the next cycle
        self._opt_content: Set[int] = set()

    def _blocks_per_cycle(self) -> int:
        return self.k - self.h + 1

    def warm_up(self, policy: Policy) -> None:
        super().warm_up(policy)
        # Seed the prescribed OPT with h of the items the online cache
        # currently holds (any h reachable items work; the first cycle's
        # candidate set only needs k + 1 members).
        self._opt_content = self._seed_opt_content()

    def _run_cycle(self, policy: Policy) -> int:
        # Step 2: k - h + 1 fresh items, one per block (no spatial help).
        fresh = []
        for _ in range(self.k - self.h + 1):
            item = self.fresh_block()[0]
            self.access(item)
            fresh.append(item)
        # Step 3: candidate set of >= k + 1 items.
        candidates = self._opt_content | set(fresh)
        # Step 4: h - 1 requests the online cache is guaranteed to miss.
        step4 = []
        for _ in range(self.h - 1):
            item = self._evade_online(candidates)
            self.access(item)
            step4.append(item)
        # Prescribed OPT for the next cycle: the step-4 items plus one
        # fresh item (it held all of these at some point this cycle).
        self._opt_content = set(step4) | {fresh[-1]}
        while len(self._opt_content) < self.h:
            self._opt_content.add(fresh[len(self._opt_content)])
        # OPT misses only on the fresh items.
        return self.k - self.h + 1

"""Shared machinery for adaptive adversaries.

An adversary owns a live :class:`~repro.core.engine.Engine` around the
policy under attack.  It issues accesses one at a time, watching the
policy's residency to pick the next request, and records the claimed
offline cost of each completed cycle.  Misses incurred during the
warm-up (filling the initially empty caches — the proofs assume full
caches) are tracked separately so ratios reflect steady-state cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.core.engine import Engine
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.base import Policy
from repro.types import HitKind

__all__ = ["Adversary", "AdversaryRun"]


@dataclass
class AdversaryRun:
    """Outcome of an adversarial attack on one policy.

    ``claimed_opt_misses`` is the offline cost the proof's prescribed
    strategy pays on the steady-state part of the trace; dividing the
    online policy's steady-state misses by it gives
    ``empirical_ratio`` — a certified lower bound on the policy's
    competitive ratio (OPT can only be cheaper than the prescription).
    """

    trace: Trace
    policy_name: str
    k: int
    h: int
    B: int
    cycles: int
    warmup_accesses: int
    warmup_misses: int
    online_misses: int
    claimed_opt_misses: int
    notes: dict = field(default_factory=dict)

    @property
    def empirical_ratio(self) -> float:
        """Steady-state online misses per claimed offline miss."""
        if self.claimed_opt_misses == 0:
            return float("inf") if self.online_misses else 0.0
        return self.online_misses / self.claimed_opt_misses


class Adversary:
    """Base class: block allocation, engine stepping, trace recording."""

    def __init__(self, k: int, h: int, B: int) -> None:
        if not 1 <= h <= k:
            raise ConfigurationError(f"need 1 <= h <= k, got h={h}, k={k}")
        if B < 1:
            raise ConfigurationError(f"need B >= 1, got {B}")
        self.k = k
        self.h = h
        self.B = B
        self._accesses: List[int] = []
        self._next_fresh_block = 0
        self._engine: Optional[Engine] = None
        self._misses = 0

    # -- to be provided by subclasses ---------------------------------------
    #: Upper bound on blocks consumed per steady-state cycle (used to
    #: size the item universe).  Subclasses override.
    def _blocks_per_cycle(self) -> int:
        raise NotImplementedError

    def _run_cycle(self, policy: Policy) -> int:
        """Execute one steady-state cycle; return the claimed OPT cost."""
        raise NotImplementedError

    # -- shared plumbing ------------------------------------------------------
    def _universe_blocks(self, cycles: int) -> int:
        # Warm-up may touch up to 2k single-item blocks (stall-guarded)
        # plus padding for the prescribed-OPT seed.
        warm = 2 * self.k + self.h + -(-self.k // self.B) + self.B
        return warm + cycles * self._blocks_per_cycle() + 4

    def make_mapping(self, cycles: int) -> FixedBlockMapping:
        """A fixed-B mapping large enough for the whole attack."""
        blocks = self._universe_blocks(cycles)
        return FixedBlockMapping(universe=blocks * self.B, block_size=self.B)

    def fresh_block(self) -> List[int]:
        """Allocate a never-before-accessed block; return its items."""
        blk = self._next_fresh_block
        self._next_fresh_block += 1
        mapping = self._engine.mapping
        if blk >= mapping.num_blocks:
            raise ConfigurationError(
                "adversary exhausted its pre-sized universe; "
                "increase cycles passed to make_mapping"
            )
        return list(mapping.items_in(blk))

    def access(self, item: int) -> bool:
        """Issue one request; record it; return True on a miss."""
        kind = self._engine.access(item)
        self._accesses.append(item)
        missed = kind is HitKind.MISS
        if missed:
            self._misses += 1
        return missed

    def online_contains(self, item: int) -> bool:
        """Referee-side residency check (cannot be fooled by the policy)."""
        return item in self._engine.resident

    def warm_up(self, policy: Policy) -> None:
        """Fill the online cache with fresh items (default strategy).

        Accesses fresh blocks item by item until the cache is full *or*
        stops growing — policies that duplicate items across internal
        partitions (IBLP) saturate below ``k`` by design, and the
        constructions remain valid from any saturated state.
        """
        guard = 0
        prev = -1
        while len(self._engine.resident) < self.k:
            if len(self._engine.resident) <= prev:
                break  # saturated below k (e.g. layered duplication)
            prev = len(self._engine.resident)
            for item in self.fresh_block():
                if len(self._engine.resident) >= self.k:
                    break
                self.access(item)
            guard += 1
            if guard > 2 * self.k:
                raise ConfigurationError(
                    f"warm-up failed to fill cache of {policy} "
                    f"(stuck at {len(self._engine.resident)}/{self.k})"
                )

    def _seed_opt_content(self) -> Set[int]:
        """``h`` items the prescribed OPT plausibly holds after warm-up.

        Prefers currently resident items and pads from the accessed
        prefix (OPT, being offline, may retain anything it has seen).
        """
        seed = set(sorted(self._engine.resident)[: self.h])
        for item in reversed(self._accesses):
            if len(seed) >= self.h:
                break
            seed.add(item)
        return seed

    def run(self, policy: Policy, cycles: int = 3) -> AdversaryRun:
        """Attack ``policy`` for ``cycles`` steady-state cycles."""
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        mapping = policy.mapping
        if mapping.max_block_size != self.B:
            raise ConfigurationError(
                f"policy mapping B={mapping.max_block_size} != adversary B={self.B}"
            )
        if policy.capacity != self.k:
            raise ConfigurationError(
                f"policy capacity {policy.capacity} != adversary k={self.k}"
            )
        self._accesses = []
        self._next_fresh_block = 0
        self._misses = 0
        self._engine = Engine(policy, mapping)
        self.warm_up(policy)
        warmup_accesses = len(self._accesses)
        warmup_misses = self._misses
        claimed = 0
        for _ in range(cycles):
            claimed += self._run_cycle(policy)
        trace = Trace(
            np.asarray(self._accesses, dtype=np.int64),
            mapping,
            {
                "adversary": type(self).__name__,
                "k": self.k,
                "h": self.h,
                "B": self.B,
                "cycles": cycles,
            },
        )
        return AdversaryRun(
            trace=trace,
            policy_name=getattr(policy, "name", type(policy).__name__),
            k=self.k,
            h=self.h,
            B=self.B,
            cycles=cycles,
            warmup_accesses=warmup_accesses,
            warmup_misses=warmup_misses,
            online_misses=self._misses - warmup_misses,
            claimed_opt_misses=claimed,
        )

    # -- helpers used by several constructions ---------------------------------
    def _evade_online(self, candidates: Set[int]) -> int:
        """An item from ``candidates`` absent from the online cache.

        The constructions guarantee one exists (|candidates| > k).
        """
        for item in sorted(candidates):
            if not self.online_contains(item):
                return item
        raise ConfigurationError(
            "construction invariant violated: every candidate is cached "
            f"(|candidates|={len(candidates)}, k={self.k})"
        )

"""Adversarial trace constructions from §4 and §7.1.

Each adversary builds a worst-case trace *adaptively*: it runs the
online policy inside the referee engine, inspects which items are
resident (``policy.contains``), and requests exactly what the proof
prescribes — fresh blocks in the growth step, then items the online
cache just evicted.  Alongside the trace it returns the offline cost
*claimed* by the corresponding proof (an upper bound on OPT, hence the
measured ``online/claimed`` ratio is a certified lower bound on the
policy's competitive ratio on that trace).

========================  ==================================================
:class:`SleatorTarjanAdversary`  classical bound (no spatial locality)
:class:`ItemCacheAdversary`      Theorem 2 (vs single-item loaders)
:class:`BlockCacheAdversary`     Theorem 3 (vs whole-block caches)
:class:`GeneralAdversary`        Theorem 4 (``a``-parameter construction)
:class:`LocalityAdversary`       Theorem 8 (phase traces under f/g limits)
========================  ==================================================
"""

from repro.adversary.base import Adversary, AdversaryRun
from repro.adversary.sleator_tarjan import SleatorTarjanAdversary
from repro.adversary.item_adversary import ItemCacheAdversary
from repro.adversary.block_adversary import BlockCacheAdversary
from repro.adversary.general_adversary import GeneralAdversary
from repro.adversary.locality_adversary import LocalityAdversary

__all__ = [
    "Adversary",
    "AdversaryRun",
    "SleatorTarjanAdversary",
    "ItemCacheAdversary",
    "BlockCacheAdversary",
    "GeneralAdversary",
    "LocalityAdversary",
]

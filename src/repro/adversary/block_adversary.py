"""Theorem 3's adversary against Block Caches (whole-block loaders).

The trace touches exactly one item per block, so a Block Cache wastes
``B - 1`` slots per block and effectively shrinks to ``⌈k/B⌉``
entries.  Step 2 streams ``d = ⌈k/B⌉ - h + 1`` fresh single-item
blocks; step 4 requests ``h - 1`` items from a candidate set of
``⌈k/B⌉ + 1`` single-block items, always choosing one the online
cache lacks.  Online pays ``d + h - 1`` versus OPT's ``d``, i.e.
``k / (k - B(h-1))`` after substitution — unbounded once
``k <= B(h-1)``, which the constructor rejects (Theorem 3 declares
the ratio infinite there).
"""

from __future__ import annotations

from typing import Set

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.policies.base import Policy

__all__ = ["BlockCacheAdversary"]


class BlockCacheAdversary(Adversary):
    """Theorem 3 construction; requires ``⌈k/B⌉ >= h`` and ``h >= 2``."""

    def __init__(self, k: int, h: int, B: int) -> None:
        super().__init__(k, h, B)
        self._cap_blocks = -(-k // B)  # ⌈k/B⌉
        if self._cap_blocks - h + 1 < 1:
            raise ConfigurationError(
                f"Theorem 3 needs ⌈k/B⌉ >= h (got k={k}, B={B}, h={h}); "
                "below that the block-cache ratio is unbounded"
            )
        self._opt_content: Set[int] = set()

    def _blocks_per_cycle(self) -> int:
        return self._cap_blocks - self.h + 1

    def warm_up(self, policy: Policy) -> None:
        """Fill the cache touching one item per fresh block.

        Theorem 3's step 1 additionally assumes every item in the
        optimal cache comes from a different block; warming up with
        block-distinct items establishes that for the candidate set.
        """
        guard = 0
        stalled = 0
        prev = -1
        seeds: list[int] = []
        while len(self._engine.resident) < self.k:
            # Policies that cannot reach k residents (block caches cover
            # only ⌈k/B⌉ single-item blocks; layered policies duplicate)
            # saturate: stop once occupancy stops growing.
            stalled = stalled + 1 if len(self._engine.resident) <= prev else 0
            if stalled >= 2:
                break
            prev = len(self._engine.resident)
            item = self.fresh_block()[0]
            self.access(item)
            seeds.append(item)
            guard += 1
            if guard > 2 * self.k:
                break
        self._opt_content = set(seeds[-self.h :])
        while len(self._opt_content) < self.h:
            # Degenerate tiny warm-up; pad with more fresh blocks.
            item = self.fresh_block()[0]
            self.access(item)
            self._opt_content.add(item)

    def _run_cycle(self, policy: Policy) -> int:
        d = self._blocks_per_cycle()
        fresh = []
        for _ in range(d):
            item = self.fresh_block()[0]
            self.access(item)
            fresh.append(item)
        candidates = self._opt_content | set(fresh)
        step4 = []
        for idx in range(self.h - 1):
            # The candidate set has only ⌈k/B⌉ + 1 members — more than a
            # *block* cache can cover, but an item-granularity policy can
            # hold all of them.  When that happens the escape is real:
            # access a cached candidate (a hit for both sides) and move
            # on, which is exactly how such policies beat Theorem 3.
            item = next(
                (c for c in sorted(candidates) if not self.online_contains(c)),
                None,
            )
            if item is None:
                item = sorted(candidates)[idx % len(candidates)]
            self.access(item)
            step4.append(item)
        self._opt_content = set(step4) | {fresh[-1]}
        for item in reversed(fresh):
            if len(self._opt_content) >= self.h:
                break
            self._opt_content.add(item)
        return d

"""Theorem 2's adversary against Item Caches (single-item loaders).

Step 2 accesses *whole fresh blocks*: an Item Cache misses on every
item, but the prescribed OPT loads the full block on its first access
and hits on the remaining ``B - 1`` — the essence of the GC model's
extra ``B`` factor.  Step 4 then replays the classical
request-what-you-evicted game with the ``h - B`` slots OPT has left.

Per cycle (``d = ⌈(k-h+1)/B⌉`` fresh blocks): an Item Cache pays
``dB + h - B`` misses versus OPT's ``d``, giving
``B(k - B + 1)/(k - h + 1)`` as ``d·B → k - h + 1``.

The adversary runs against *any* policy (the engine measures honest
misses); policies that side-load blocks hit in step 2 and escape the
bound — exactly the paper's point.
"""

from __future__ import annotations

from typing import Set

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.policies.base import Policy

__all__ = ["ItemCacheAdversary"]


class ItemCacheAdversary(Adversary):
    """Theorem 2 construction; requires ``h > B`` (step 4 non-empty)."""

    def __init__(self, k: int, h: int, B: int) -> None:
        super().__init__(k, h, B)
        if h <= B:
            raise ConfigurationError(
                f"Theorem 2's construction needs h > B (got h={h}, B={B}): "
                "OPT reserves B slots for the streaming block"
            )
        self._opt_content: Set[int] = set()

    def _blocks_per_cycle(self) -> int:
        return -(-(self.k - self.h + 1) // self.B)

    def warm_up(self, policy: Policy) -> None:
        super().warm_up(policy)
        self._opt_content = self._seed_opt_content()

    def _run_cycle(self, policy: Policy) -> int:
        # Step 2: whole fresh blocks until >= k-h+1 items accessed.
        target = self.k - self.h + 1
        accessed: list[int] = []
        blocks = 0
        while len(accessed) < target:
            for item in self.fresh_block():
                self.access(item)
                accessed.append(item)
            blocks += 1
        # Step 3: candidate set (OPT's step-1 content + step-2 items).
        candidates = self._opt_content | set(accessed)
        # Step 4: h - B guaranteed online misses; OPT hits all.
        step4 = []
        for _ in range(self.h - self.B):
            item = self._evade_online(candidates)
            self.access(item)
            step4.append(item)
        # OPT's next-cycle contents: the step-4 items topped up with the
        # last block it streamed (feasible: it ended the cycle holding
        # both).
        self._opt_content = set(step4)
        for item in reversed(accessed):
            if len(self._opt_content) >= self.h:
                break
            self._opt_content.add(item)
        return blocks

"""The content-addressed result store: append-only JSONL + SQLite index.

Layout inside a campaign directory::

    results.jsonl   one JSON object per line: {"hash": ..., "payload": ...}
    index.sqlite    cells(hash PRIMARY KEY, offset, length)

The JSONL log is the source of truth; SQLite is only an index into it
(byte offsets), so the store stays diff-friendly and greppable while
lookups stay O(log n).  Crash safety relies on ordering, not atomicity:

1. a row is appended to ``results.jsonl``, flushed, and fsync'd;
2. only then is its offset inserted into the index and committed.

A crash between (1) and (2) leaves an unindexed-but-complete line,
re-indexed by the reconcile scan on next open.  A crash *during* (1)
leaves a torn line with no trailing newline; reconcile truncates it
(it was never indexed, so nothing is lost) so later appends cannot
fuse with it.  First write wins: :meth:`put` refuses to overwrite an
existing hash, which is what makes resumed campaigns bit-identical to
uninterrupted ones — a recomputed cell can never replace the row an
earlier attempt already committed.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Set, Tuple

from repro.campaign.spec import canonical_json

__all__ = ["ResultStore"]

RESULTS_FILENAME = "results.jsonl"
INDEX_FILENAME = "index.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    hash   TEXT PRIMARY KEY,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL
)
"""


class ResultStore:
    """Content-addressed row storage for one campaign directory.

    Parameters
    ----------
    directory:
        Campaign directory; created if missing.
    sync:
        fsync each appended row before indexing it (default).  Disable
        only in tests/benches where torn-write durability is moot.
    """

    def __init__(self, directory: str | Path, sync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.results_path = self.directory / RESULTS_FILENAME
        self.index_path = self.directory / INDEX_FILENAME
        self.sync = sync
        self.results_path.touch(exist_ok=True)
        self._db = sqlite3.connect(self.index_path)
        self._db.execute(_SCHEMA)
        self._db.commit()
        #: Lookup counters exposed to campaign telemetry.
        self.lookups = 0
        self.hits = 0
        self._reconcile()

    # -- crash recovery ----------------------------------------------------
    def _reconcile(self) -> None:
        """Index complete-but-unindexed rows; drop a torn tail line."""
        row = self._db.execute(
            "SELECT COALESCE(MAX(offset + length), 0) FROM cells"
        ).fetchone()
        watermark = int(row[0])
        size = self.results_path.stat().st_size
        if size < watermark:
            # The log was truncated behind the index's back (manual
            # surgery); rebuild the index from scratch.
            self._db.execute("DELETE FROM cells")
            self._db.commit()
            watermark = 0
        if size == watermark:
            return
        keep = watermark
        with open(self.results_path, "rb") as f:
            f.seek(watermark)
            offset = watermark
            for raw in f:
                if not raw.endswith(b"\n"):
                    break  # torn tail from a mid-write crash
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError:
                    break  # treat any later bytes as unrecoverable tail
                self._index(record["hash"], offset, len(raw))
                offset += len(raw)
                keep = offset
        self._db.commit()
        if keep != size:
            with open(self.results_path, "rb+") as f:
                f.truncate(keep)

    def _index(self, cell_hash: str, offset: int, length: int) -> None:
        self._db.execute(
            "INSERT OR IGNORE INTO cells (hash, offset, length) VALUES (?, ?, ?)",
            (cell_hash, offset, length),
        )

    # -- mapping interface -------------------------------------------------
    def __contains__(self, cell_hash: str) -> bool:
        return (
            self._db.execute(
                "SELECT 1 FROM cells WHERE hash = ?", (cell_hash,)
            ).fetchone()
            is not None
        )

    def __len__(self) -> int:
        return int(self._db.execute("SELECT COUNT(*) FROM cells").fetchone()[0])

    def hashes(self) -> Set[str]:
        return {h for (h,) in self._db.execute("SELECT hash FROM cells")}

    def get(self, cell_hash: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``cell_hash``, or ``None``."""
        self.lookups += 1
        row = self._db.execute(
            "SELECT offset, length FROM cells WHERE hash = ?", (cell_hash,)
        ).fetchone()
        if row is None:
            return None
        offset, length = row
        with open(self.results_path, "rb") as f:
            f.seek(offset)
            record = json.loads(f.read(length))
        self.hits += 1
        return record["payload"]

    def put(self, cell_hash: str, payload: Dict[str, Any]) -> bool:
        """Append and index a row; ``False`` if the hash already exists."""
        if cell_hash in self:
            return False
        line = (
            canonical_json({"hash": cell_hash, "payload": payload}) + "\n"
        ).encode()
        with open(self.results_path, "ab") as f:
            offset = f.tell()
            f.write(line)
            f.flush()
            if self.sync:
                os.fsync(f.fileno())
        self._index(cell_hash, offset, len(line))
        self._db.commit()
        return True

    def items(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """All ``(hash, payload)`` pairs in append order."""
        with open(self.results_path, "rb") as f:
            indexed = {
                offset: length
                for offset, length in self._db.execute(
                    "SELECT offset, length FROM cells ORDER BY offset"
                )
            }
            for offset, length in indexed.items():
                f.seek(offset)
                record = json.loads(f.read(length))
                yield record["hash"], record["payload"]

    @property
    def hit_ratio(self) -> float:
        """Fraction of :meth:`get` lookups served from the store."""
        return self.hits / self.lookups if self.lookups else 0.0

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Experiment integration: a memoizing ``simulate`` front-end.

The experiment drivers (:mod:`repro.experiments`) call ``simulate``
directly with hand-built policies; rewriting them as declarative grids
would lose their narrative structure.  :class:`CampaignCache` instead
gives them the campaign subsystem's memoization à la carte: it looks
like ``simulate`` but is keyed by the same content address the runner
uses (policy registry name + kwargs, capacity, trace fingerprint, fast
flag, code version), backed by the same crash-safe
:class:`~repro.campaign.store.ResultStore`.  An experiment rendered
through a cache is resumable — kill it anywhere, rerun, and only the
not-yet-stored simulations execute.

Only trace-driven simulations are cacheable.  Adaptive-adversary runs
(the adversary reacts to the policy's decisions, so there is no trace
to fingerprint until after the run) always execute live; experiments
mixing both memoize the trace-driven part.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional

from repro.campaign.journal import Journal
from repro.campaign.spec import cell_hash
from repro.campaign.store import ResultStore
from repro.campaign.runner import result_fields, result_from_fields
from repro.core.trace import Trace
from repro.types import SimResult

__all__ = ["CampaignCache", "cached_simulate", "cached_serve", "open_cache"]


class CampaignCache:
    """Content-addressed memoization of ``simulate`` calls.

    Parameters
    ----------
    directory:
        Campaign directory holding the store and journal (shared with
        ``campaign`` CLI runs pointed at the same directory).
    recorder:
        Optional :class:`repro.telemetry.Recorder`; hit/miss counters
        are published into its registry on :meth:`close`.
    """

    def __init__(
        self, directory: str | Path, recorder=None, store_sync: bool = True
    ) -> None:
        self.directory = Path(directory)
        self.store = ResultStore(self.directory, sync=store_sync)
        self.journal = Journal(self.directory)
        self.recorder = recorder
        self.hits = 0
        self.computed = 0

    def simulate(
        self,
        policy: str,
        capacity: int,
        trace: Trace,
        fast: bool = False,
        **policy_kwargs: Any,
    ) -> SimResult:
        """Memoized equivalent of ``simulate(make_policy(...), trace)``.

        ``policy`` is a registry name (:func:`repro.policies.make_policy`);
        the returned :class:`SimResult` is bit-identical whether it was
        computed now or served from the store (the store keeps the full
        result state, not just the derived row).
        """
        digest = cell_hash(
            policy=policy,
            capacity=capacity,
            trace_fingerprint=trace.fingerprint(),
            fast=fast,
            policy_kwargs=policy_kwargs,
        )
        stored = self.store.get(digest)
        if stored is not None:
            self.hits += 1
            return result_from_fields(stored)
        from repro.core.engine import simulate
        from repro.policies import make_policy

        instance = make_policy(policy, capacity, trace.mapping, **policy_kwargs)
        result = simulate(instance, trace, fast=fast)
        self.store.put(digest, result_fields(result))
        self.journal.append(
            "done", hash=digest, attempt=1, memo=False, source="cache"
        )
        self.computed += 1
        return result

    def simulate_many(
        self,
        cells: Any,
        trace: Trace,
        fast: bool = True,
    ) -> list:
        """Memoized batch of :meth:`simulate` cells over one trace.

        ``cells`` is a sequence of ``(policy, capacity)`` or
        ``(policy, capacity, policy_kwargs)``.  Each cell keeps its own
        content address (the same ``cell_hash`` :meth:`simulate` uses,
        so previously stored cells are served unchanged and cells
        computed here are visible to later per-cell calls); the cells
        the store cannot answer are computed in one
        :func:`repro.core.fast.multi_policy_replay` traversal when
        every missing cell has a kernel, and per-cell otherwise.
        Returns results in input order.
        """
        from repro.core.fast import multi_policy_replay, multi_policy_supported

        norm = []
        for cell in cells:
            parts = tuple(cell)
            name, capacity = parts[0], parts[1]
            kwargs = dict(parts[2]) if len(parts) == 3 and parts[2] else {}
            norm.append((name, capacity, kwargs))
        results: list = [None] * len(norm)
        digests = []
        for i, (name, capacity, kwargs) in enumerate(norm):
            digest = cell_hash(
                policy=name,
                capacity=capacity,
                trace_fingerprint=trace.fingerprint(),
                fast=fast,
                policy_kwargs=kwargs,
            )
            digests.append(digest)
            stored = self.store.get(digest)
            if stored is not None:
                self.hits += 1
                results[i] = result_from_fields(stored)
        missing = [i for i in range(len(norm)) if results[i] is None]
        if not missing:
            return results
        batch_cells = [norm[i] for i in missing]
        if fast and multi_policy_supported(batch_cells, trace):
            computed = multi_policy_replay(batch_cells, trace)
        else:
            from repro.core.engine import simulate
            from repro.policies import make_policy

            computed = [
                simulate(
                    make_policy(name, capacity, trace.mapping, **kwargs),
                    trace,
                    fast=fast,
                )
                for name, capacity, kwargs in batch_cells
            ]
        for i, result in zip(missing, computed):
            self.store.put(digests[i], result_fields(result))
            self.journal.append(
                "done", hash=digests[i], attempt=1, memo=False, source="cache"
            )
            self.computed += 1
            results[i] = result
        return results

    def serve(
        self,
        policy: str,
        capacity: int,
        trace: Trace,
        serving: Any,
        **policy_kwargs: Any,
    ):
        """Memoized equivalent of ``serve(make_policy(...), trace, config)``.

        ``serving`` is a :class:`repro.serving.ServingConfig` (or its
        dict form); its canonical dict joins the content address, so a
        changed arrival rate, service model, or queue knob can never be
        served from a stale cell.  Returns a
        :class:`repro.serving.ServingResult`, bit-identical whether
        computed now or replayed from the store.
        """
        from repro.serving import ServingConfig, serve_policy

        config = (
            serving
            if isinstance(serving, ServingConfig)
            else ServingConfig.from_dict(serving)
        )
        digest = cell_hash(
            policy=policy,
            capacity=capacity,
            trace_fingerprint=trace.fingerprint(),
            fast=False,
            policy_kwargs=policy_kwargs,
            serving=config.as_dict(),
        )
        stored = self.store.get(digest)
        if stored is not None:
            self.hits += 1
            return result_from_fields(stored)
        result = serve_policy(policy, capacity, trace, config, **policy_kwargs)
        self.store.put(digest, result.fields())
        self.journal.append(
            "done", hash=digest, attempt=1, memo=False, source="cache"
        )
        self.computed += 1
        return result

    def cluster(
        self,
        policy: str,
        capacity: int,
        trace: Trace,
        cluster: Any,
        serving: Any = None,
        fast: bool = True,
        **policy_kwargs: Any,
    ):
        """Memoized N-shard cluster replay (or cluster serving run).

        ``cluster`` is a :class:`repro.cluster.ClusterSpec` (or its
        dict form); its canonical dict joins the content address, so a
        different shard count, hash scheme, seed, or capacity mode can
        never reuse another configuration's cell.  With ``serving``
        given the cell runs through
        :func:`repro.cluster.serving_bridge.serve_cluster` and returns
        a :class:`repro.serving.ServingResult`; otherwise it replays
        offline and returns a :class:`repro.cluster.ClusterResult`.
        """
        from repro.cluster import ClusterSpec, replay_cluster

        spec = (
            cluster
            if isinstance(cluster, ClusterSpec)
            else ClusterSpec.from_dict(cluster)
        )
        serving_dict = None
        config = None
        if serving is not None:
            from repro.serving import ServingConfig

            config = (
                serving
                if isinstance(serving, ServingConfig)
                else ServingConfig.from_dict(serving)
            )
            serving_dict = config.as_dict()
        digest = cell_hash(
            policy=policy,
            capacity=capacity,
            trace_fingerprint=trace.fingerprint(),
            fast=fast if serving is None else False,
            policy_kwargs=policy_kwargs,
            serving=serving_dict,
            cluster=spec.as_dict(),
        )
        stored = self.store.get(digest)
        if stored is not None:
            self.hits += 1
            return result_from_fields(stored)
        if config is not None:
            from repro.cluster.serving_bridge import serve_cluster

            result = serve_cluster(
                policy,
                capacity,
                trace,
                spec,
                config,
                policy_kwargs=policy_kwargs,
            )
        else:
            result = replay_cluster(
                policy,
                capacity,
                trace,
                spec,
                policy_kwargs=policy_kwargs,
                fast=fast,
            )
        self.store.put(digest, result.fields())
        self.journal.append(
            "done", hash=digest, attempt=1, memo=False, source="cache"
        )
        self.computed += 1
        return result

    def cluster_multitenant(
        self,
        tenant_traces: Any,
        mode: str,
        policy: str,
        capacity: int,
        cluster: Any,
        policies: Any = None,
        shares: Any = None,
        fast: bool = True,
    ):
        """Memoized multi-tenant partitioning run (isolation configs).

        The content address is the *combined* tenant trace's
        fingerprint (:func:`repro.cluster.combine_tenants` is
        deterministic, so it names the tenant mix exactly) plus the
        cluster dict extended with the tenancy configuration — mode,
        per-tenant policies, and capacity shares — so every one of the
        four isolation configurations stores under its own cell.
        """
        from repro.cluster import (
            ClusterSpec,
            combine_tenants,
            replay_multitenant,
        )

        spec = (
            cluster
            if isinstance(cluster, ClusterSpec)
            else ClusterSpec.from_dict(cluster)
        )
        combined, _ids, names = combine_tenants(tenant_traces)
        tenancy = {
            "mode": mode,
            "tenants": names,
            "policies": dict(policies or {}),
            "shares": dict(shares or {}),
        }
        digest = cell_hash(
            policy=policy,
            capacity=capacity,
            trace_fingerprint=combined.fingerprint(),
            fast=fast,
            cluster={**spec.as_dict(), "tenancy": tenancy},
        )
        stored = self.store.get(digest)
        if stored is not None:
            self.hits += 1
            return result_from_fields(stored)
        result = replay_multitenant(
            tenant_traces,
            mode,
            policy,
            capacity,
            spec,
            policies=policies,
            shares=shares,
            fast=fast,
        )
        self.store.put(digest, result.fields())
        self.journal.append(
            "done", hash=digest, attempt=1, memo=False, source="cache"
        )
        self.computed += 1
        return result

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.computed
        return self.hits / total if total else 0.0

    def close(self) -> None:
        if self.recorder is not None:
            reg = self.recorder.registry
            reg.counter("campaign_cache_hits").inc(self.hits)
            reg.counter("campaign_cache_computed").inc(self.computed)
            reg.gauge("campaign_cache_hit_ratio").set(self.hit_ratio)
        self.store.close()
        self.journal.close()

    def __enter__(self) -> "CampaignCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def cached_simulate(
    cache: Optional["CampaignCache"],
    policy: str,
    capacity: int,
    trace: Trace,
    fast: bool = False,
    **policy_kwargs: Any,
) -> SimResult:
    """``cache.simulate(...)``, or a plain uncached ``simulate`` when
    ``cache`` is None.

    The single call-site shape the experiment drivers use: they take an
    optional cache and route every trace-driven simulation through this,
    so the same code path serves both ``render()`` (uncached, as before)
    and campaign-backed resumable runs.
    """
    if cache is not None:
        return cache.simulate(policy, capacity, trace, fast=fast, **policy_kwargs)
    from repro.core.engine import simulate
    from repro.policies import make_policy

    instance = make_policy(policy, capacity, trace.mapping, **policy_kwargs)
    return simulate(instance, trace, fast=fast)


def cached_serve(
    cache: Optional["CampaignCache"],
    policy: str,
    capacity: int,
    trace: Trace,
    serving: Any,
    **policy_kwargs: Any,
):
    """``cache.serve(...)``, or a plain uncached ``serve_policy`` when
    ``cache`` is None.

    The serving-column twin of :func:`cached_simulate`: experiments
    that attach p50/p99 sojourn columns route through this so the
    request-level runs memoize alongside the offline cells.
    """
    if cache is not None:
        return cache.serve(policy, capacity, trace, serving, **policy_kwargs)
    from repro.serving import ServingConfig, serve_policy

    config = (
        serving
        if isinstance(serving, ServingConfig)
        else ServingConfig.from_dict(serving)
    )
    return serve_policy(policy, capacity, trace, config, **policy_kwargs)


def open_cache(
    directory: Optional[str | Path], recorder=None
) -> Optional[CampaignCache]:
    """``CampaignCache`` for ``directory``, or ``None`` when no
    directory is given (the experiments' uncached default)."""
    if directory is None:
        return None
    return CampaignCache(directory, recorder=recorder)

"""The append-only cell-state journal.

``journal.jsonl`` records every state transition the executor makes::

    {"event": "start",       "run": 2, "cells": 12, ...}
    {"event": "attempt",     "index": 3, "hash": "...", "attempt": 1}
    {"event": "done",        "index": 3, "hash": "...", "attempt": 1,
     "seconds": 0.8, "memo": false}
    {"event": "failed",      "index": 5, "hash": "...", "attempt": 1,
     "error": "TimeoutError: cell exceeded 2.0s"}
    {"event": "quarantined", "index": 5, "hash": "...", "attempts": 3}
    {"event": "finish",      "run": 2, "done": 11, "quarantined": 1}

The journal is *descriptive*, not authoritative: which cells are done
is decided by the content-addressed :class:`~repro.campaign.store.
ResultStore` (a row either exists under the cell's hash or it does
not), so a journal lost or torn mid-write costs history, never
results.  ``status``/``resume`` read it for attempts, failures, and
quarantine records; a torn tail line (orchestrator killed mid-append)
is skipped on replay.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.campaign.spec import canonical_json

__all__ = ["Journal"]

JOURNAL_FILENAME = "journal.jsonl"


class Journal:
    """Append/replay interface over a campaign's ``journal.jsonl``."""

    def __init__(self, directory: str | Path, sync: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILENAME
        self.sync = sync
        self._fh = None

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event record (adds ``event`` and ``ts``)."""
        record = {"event": event, "ts": time.time(), **fields}
        if self._fh is None:
            self._fh = open(self.path, "ab")
        self._fh.write((canonical_json(record) + "\n").encode())
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        return record

    def replay(self) -> Iterator[Dict[str, Any]]:
        """Yield journaled events in order, skipping a torn tail."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as f:
            for raw in f:
                if not raw.endswith(b"\n"):
                    return
                try:
                    yield json.loads(raw)
                except json.JSONDecodeError:
                    return

    def events(self) -> List[Dict[str, Any]]:
        return list(self.replay())

    def run_count(self) -> int:
        """Number of ``start`` events so far (run/resume generations)."""
        return sum(1 for e in self.replay() if e.get("event") == "start")

    def attempts_by_hash(self) -> Dict[str, int]:
        """Total attempts each cell hash has consumed across all runs."""
        out: Dict[str, int] = {}
        for event in self.replay():
            if event.get("event") == "attempt" and "hash" in event:
                out[event["hash"]] = out.get(event["hash"], 0) + 1
        return out

    def last_error_by_hash(self) -> Dict[str, str]:
        """Most recent failure message per cell hash."""
        out: Dict[str, str] = {}
        for event in self.replay():
            if event.get("event") == "failed" and "hash" in event:
                out[event["hash"]] = str(event.get("error", ""))
        return out

    def quarantined_cells(self) -> Dict[str, Dict[str, Any]]:
        """Cells quarantined by the *latest* run, keyed by hash.

        Quarantine is a per-run circuit breaker (resume re-arms the
        attempt budget), so only events after the most recent ``start``
        count: a cell quarantined two runs ago and completed since is
        not stuck.  Each value carries ``index``, ``attempts``, and the
        quarantining ``error``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for event in self.replay():
            kind = event.get("event")
            if kind == "start":
                out.clear()
            elif kind == "quarantined" and "hash" in event:
                out[event["hash"]] = {
                    "index": event.get("index"),
                    "attempts": int(event.get("attempts", 0)),
                    "error": str(event.get("error", "")),
                }
            elif kind == "done" and event.get("hash") in out:
                # Defensive: a cell can't normally complete after being
                # quarantined within one run, but the journal is
                # descriptive — trust the stronger signal.
                del out[event["hash"]]
        return out

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

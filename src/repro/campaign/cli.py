"""``gc-caching campaign`` subcommand: run/resume/status/watch/export.

The CLI face of :mod:`repro.campaign`.  ``run`` materializes a grid
spec into a campaign directory and drives it; ``resume`` reloads the
directory's own ``spec.json`` and continues (memo hits for everything
already stored, so an interrupted campaign finishes bit-identically to
an uninterrupted one); ``status`` summarizes the store + journal
without executing anything (exiting nonzero when the latest run left
cells quarantined); ``watch`` tails the executor's heartbeat file as a
live status board; ``export`` writes the completed rows in grid order
as CSV or JSONL.

``run``/``resume`` take ``--trace-spans`` (hierarchical span trace,
exportable via ``gc-caching obs trace-export``) and ``--metrics-out``
(Prometheus textfile refreshed on every heartbeat) — see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.campaign.journal import Journal
from repro.campaign.runner import (
    CampaignReport,
    CampaignRunner,
    RetryPolicy,
    result_from_fields,
)
from repro.campaign.spec import (
    CampaignSpec,
    TraceSpec,
    cell_hash,
    trace_workload_names,
)
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError

__all__ = [
    "add_campaign_parser",
    "run_campaign_command",
    "collect_rows",
]


def _csv_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _int_list(text: str) -> List[int]:
    return [int(part) for part in _csv_list(text)]


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``run`` and ``resume``."""
    parser.add_argument(
        "--trace-spans",
        metavar="SPANS.jsonl",
        default=None,
        help="record hierarchical spans (campaign/cell/replay/...) to "
        "this JSONL file; export with `gc-caching obs trace-export`",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="METRICS.prom",
        default=None,
        help="write a Prometheus textfile snapshot of live campaign "
        "metrics on every heartbeat",
    )


def add_campaign_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``campaign`` subparser tree to the main CLI."""
    p = sub.add_parser(
        "campaign",
        help="checkpointed, memoizing experiment grids (run/resume/status/export)",
    )
    action = p.add_subparsers(dest="campaign_command", required=True)

    p_run = action.add_parser("run", help="create (or continue) a campaign")
    p_run.add_argument("directory", help="campaign directory (created if new)")
    p_run.add_argument("--name", default=None, help="campaign name")
    p_run.add_argument(
        "--policy",
        type=_csv_list,
        required=True,
        metavar="P1,P2,...",
        help="comma-separated registry policy names",
    )
    p_run.add_argument(
        "--capacity",
        type=_int_list,
        required=True,
        metavar="K1,K2,...",
        help="comma-separated cache capacities",
    )
    group = p_run.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--workload", choices=trace_workload_names(), help="trace generator"
    )
    group.add_argument("--trace-file", help="text trace file to replay")
    group.add_argument(
        "--trace",
        metavar="PATH.rtc",
        help="compiled .rtc trace to replay memory-mapped "
        "(see `gc-caching trace convert`)",
    )
    p_run.add_argument("--densify", action="store_true")
    p_run.add_argument("--length", type=int, default=50_000)
    p_run.add_argument("--universe", type=int, default=4096)
    p_run.add_argument("--block-size", type=int, default=8)
    p_run.add_argument("--alpha", type=float, default=1.0)
    p_run.add_argument("--stay", type=float, default=0.8)
    p_run.add_argument(
        "--seed",
        type=_int_list,
        default=[0],
        metavar="S1,S2,...",
        help="comma-separated seeds (one trace per seed)",
    )
    p_run.add_argument("--fast", action="store_true")
    p_run.add_argument("--parallel", action="store_true")
    p_run.add_argument(
        "--workers",
        "--jobs",
        type=int,
        default=None,
        dest="workers",
        help="worker processes (default: REPRO_JOBS env, else all CPUs)",
    )
    p_run.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock limit in seconds (with --parallel)",
    )
    p_run.add_argument("--max-attempts", type=int, default=3)
    p_run.add_argument("--backoff", type=float, default=0.5)
    _add_obs_flags(p_run)

    p_res = action.add_parser(
        "resume", help="continue an interrupted campaign from its directory"
    )
    p_res.add_argument("directory")
    p_res.add_argument("--parallel", action="store_true")
    p_res.add_argument(
        "--workers",
        "--jobs",
        type=int,
        default=None,
        dest="workers",
        help="worker processes (default: REPRO_JOBS env, else all CPUs)",
    )
    p_res.add_argument("--timeout", type=float, default=None)
    p_res.add_argument("--max-attempts", type=int, default=3)
    p_res.add_argument("--backoff", type=float, default=0.5)
    _add_obs_flags(p_res)

    p_stat = action.add_parser(
        "status",
        help="store/journal summary (exit 1 if cells are quarantined)",
    )
    p_stat.add_argument("directory")

    p_watch = action.add_parser(
        "watch",
        help="live status board for a running (or finished) campaign",
    )
    p_watch.add_argument("directory")
    p_watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh period in seconds (default 1.0)",
    )
    p_watch.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (exit 1 if no state file yet)",
    )

    p_exp = action.add_parser(
        "export", help="write completed rows in grid order"
    )
    p_exp.add_argument("directory")
    p_exp.add_argument("--out", default=None, help="output file (default stdout)")
    p_exp.add_argument(
        "--format",
        choices=("csv", "jsonl", "table"),
        default=None,
        help="defaults from --out suffix, else an aligned table",
    )


def _spec_from_namespace(ns: argparse.Namespace) -> CampaignSpec:
    if getattr(ns, "trace", None):
        from repro.core.rtc import rtc_info

        # Key the trace by basename plus a fingerprint prefix so
        # `status`/`watch` boards and exported rows say *which* compiled
        # trace ran, not just its (reusable) filename.  rtc_info reads
        # only the header, so planning stays cheap for huge traces.
        info = rtc_info(ns.trace)
        stem = Path(ns.trace).stem
        key = f"{stem}@{info['fingerprint'][:8]}"
        traces = {key: TraceSpec(kind="rtc", path=ns.trace)}
        default_name = f"rtc-{stem}"
    elif ns.trace_file:
        traces = {
            Path(ns.trace_file).stem: TraceSpec(
                kind="file",
                path=ns.trace_file,
                block_size=ns.block_size,
                densify=ns.densify,
            )
        }
        default_name = f"file-{Path(ns.trace_file).stem}"
    else:
        params_by_workload: Dict[str, Dict[str, Any]] = {
            "uniform": dict(
                length=ns.length, universe=ns.universe, block_size=ns.block_size
            ),
            "zipf": dict(
                length=ns.length,
                universe=ns.universe,
                alpha=ns.alpha,
                block_size=ns.block_size,
            ),
            "scan": dict(
                universe=ns.universe,
                block_size=ns.block_size,
                repeats=max(1, ns.length // max(1, ns.universe)),
            ),
            "block_runs": dict(
                length=ns.length, universe=ns.universe, block_size=ns.block_size
            ),
            "markov": dict(
                length=ns.length,
                universe=ns.universe,
                block_size=ns.block_size,
                stay=ns.stay,
            ),
            "hot_and_stream": dict(
                length=ns.length,
                hot_items=max(1, ns.universe // 8),
                stream_blocks=max(1, ns.universe // ns.block_size),
                block_size=ns.block_size,
            ),
            "dram": dict(length=ns.length),
            "pagecache": dict(length=ns.length),
        }
        if ns.workload not in params_by_workload:
            raise ConfigurationError(
                f"campaign run does not know how to parameterize "
                f"{ns.workload!r}; use a spec-driven CampaignRunner"
            )
        base = params_by_workload[ns.workload]
        seeded = "seed" not in base and ns.workload != "scan"
        traces = {}
        for seed in ns.seed:
            params = dict(base)
            if seeded:
                params["seed"] = seed
            key = f"{ns.workload}-s{seed}" if seeded else ns.workload
            traces[key] = TraceSpec(kind="workload", name=ns.workload, params=params)
            if not seeded:
                break
        default_name = ns.workload
    return CampaignSpec.from_grid(
        name=ns.name or default_name,
        policies=ns.policy,
        capacities=ns.capacity,
        traces=traces,
        fast=ns.fast,
    )


def _retry_from_namespace(ns: argparse.Namespace) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=ns.max_attempts,
        backoff_base=ns.backoff,
        timeout=ns.timeout,
    )


def _render_report(report: CampaignReport, directory: str) -> str:
    from repro.analysis.tables import format_table

    summary = report.summary()
    lines = [
        f"campaign {summary['name']!r} in {directory}: "
        f"{summary['done']}/{summary['cells']} cells done "
        f"({summary['memo_hits']} memoized, {summary['computed']} computed, "
        f"{summary['failures']} failed attempts, "
        f"{summary['quarantined']} quarantined) "
        f"in {summary['seconds']:.2f}s"
    ]
    if report.quarantined:
        rows = [
            {
                "index": o.index,
                "policy": o.cell.policy,
                "capacity": o.cell.capacity,
                "trace": o.cell.trace,
                "attempts": o.attempts,
                "last_error": (o.error or "")[:60],
            }
            for o in report.quarantined
        ]
        lines.append(format_table(rows, title="quarantined cells"))
        lines.append("re-run `campaign resume` to retry quarantined cells")
    else:
        lines.append(f"export: `gc-caching campaign export {directory}`")
    return "\n".join(lines)


def collect_rows(directory: str | Path) -> List[Dict[str, Any]]:
    """Completed rows of a campaign directory, in grid order.

    Pure store read — nothing executes.  Incomplete cells are skipped.
    """
    spec = CampaignSpec.load(directory)
    fingerprints = {
        key: tspec.materialize().fingerprint()
        for key, tspec in spec.traces.items()
    }
    rows: List[Dict[str, Any]] = []
    with ResultStore(directory) as store:
        for cell in spec.cells:
            digest = cell_hash(
                policy=cell.policy,
                capacity=cell.capacity,
                trace_fingerprint=fingerprints[cell.trace],
                fast=cell.fast,
                policy_kwargs=cell.policy_kwargs,
                version=spec.version,
                serving=cell.serving,
                cluster=cell.cluster,
            )
            stored = store.get(digest)
            if stored is None:
                continue
            row = result_from_fields(stored).as_row()
            for key, value in cell.params_row().items():
                row.setdefault(key, value)
            rows.append(row)
    return rows


def _status(directory: str) -> tuple:
    """Render the status board; exit code 1 when cells are quarantined.

    A quarantined cell means the latest run gave up on it — scripts
    polling ``campaign status`` in CI need that surfaced as a nonzero
    exit, not buried in a table.
    """
    from repro.analysis.tables import format_table

    spec = CampaignSpec.load(directory)
    journal = Journal(directory)
    attempts = journal.attempts_by_hash()
    errors = journal.last_error_by_hash()
    quarantined = journal.quarantined_cells()
    fingerprints = {
        key: tspec.materialize().fingerprint()
        for key, tspec in spec.traces.items()
    }
    rows = []
    done = 0
    stuck = 0
    with ResultStore(directory) as store:
        for index, cell in enumerate(spec.cells):
            digest = cell_hash(
                policy=cell.policy,
                capacity=cell.capacity,
                trace_fingerprint=fingerprints[cell.trace],
                fast=cell.fast,
                policy_kwargs=cell.policy_kwargs,
                version=spec.version,
                serving=cell.serving,
                cluster=cell.cluster,
            )
            stored = digest in store
            done += stored
            # A quarantine record only matters while the cell is still
            # missing from the store: a later resume may have finished it.
            quarantine = None if stored else quarantined.get(digest)
            if quarantine is not None:
                stuck += 1
                status = "quarantined"
                error = quarantine["error"] or errors.get(digest, "")
            else:
                status = "done" if stored else "pending"
                error = "" if stored else errors.get(digest, "")
            rows.append(
                {
                    "index": index,
                    "policy": cell.policy,
                    "capacity": cell.capacity,
                    "trace": cell.trace,
                    "mode": cell.mode_label(),
                    "status": status,
                    "attempts": attempts.get(digest, 0),
                    "last_error": error[:48],
                }
            )
    header = (
        f"campaign {spec.name!r} (version {spec.version}, "
        f"{journal.run_count()} run(s)): {done}/{len(spec.cells)} cells done"
    )
    if stuck:
        header += (
            f"\nWARNING: {stuck} cell(s) quarantined by the latest run — "
            "`campaign resume` retries them with a fresh attempt budget"
        )
    return header + "\n" + format_table(rows, title="cells"), 1 if stuck else 0


def _export(ns: argparse.Namespace) -> str:
    rows = collect_rows(ns.directory)
    fmt = ns.format
    if fmt is None and ns.out:
        fmt = "csv" if ns.out.endswith(".csv") else "jsonl"
    spec = CampaignSpec.load(ns.directory)
    if not rows:
        return f"campaign {spec.name!r}: no completed cells to export"
    if ns.out:
        out_path = Path(ns.out)
        if fmt == "csv":
            from repro.analysis.tables import write_csv

            write_csv(rows, out_path)
        else:
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(
                "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows)
            )
        total = len(spec.cells)
        return f"wrote {len(rows)}/{total} rows to {out_path} ({fmt})"
    if fmt == "jsonl":
        return "\n".join(json.dumps(r, sort_keys=True) for r in rows)
    if fmt == "csv":
        import csv
        import io

        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
        return buf.getvalue().rstrip("\n")
    from repro.analysis.tables import format_table

    return format_table(rows, title=f"campaign {spec.name!r}")


def run_campaign_command(ns: argparse.Namespace):
    """Dispatch one ``campaign`` subcommand.

    Returns printable output, or a ``(text, exit_code)`` tuple where a
    nonzero exit is meaningful (``status`` with quarantined cells,
    ``watch``).
    """
    if ns.campaign_command == "run":
        spec = _spec_from_namespace(ns)
        with CampaignRunner(
            ns.directory,
            spec,
            parallel=ns.parallel,
            max_workers=ns.workers,
            retry=_retry_from_namespace(ns),
            trace_spans=ns.trace_spans,
            metrics_out=ns.metrics_out,
        ) as runner:
            report = runner.run()
        return _render_report(report, ns.directory)
    if ns.campaign_command == "resume":
        with CampaignRunner(
            ns.directory,
            parallel=ns.parallel,
            max_workers=ns.workers,
            retry=_retry_from_namespace(ns),
            trace_spans=ns.trace_spans,
            metrics_out=ns.metrics_out,
        ) as runner:
            report = runner.run()
        return _render_report(report, ns.directory)
    if ns.campaign_command == "status":
        return _status(ns.directory)
    if ns.campaign_command == "watch":
        from repro.obs.watch import watch_loop

        return "", watch_loop(
            ns.directory, interval=ns.interval, once=ns.once
        )
    if ns.campaign_command == "export":
        return _export(ns)
    raise ConfigurationError(
        f"unknown campaign command {ns.campaign_command!r}"
    )  # pragma: no cover

"""Campaign descriptions and the content address of a cell.

A campaign is a named grid of *cells*; each cell names a registered
policy, its kwargs, a capacity, a trace, and whether the fast replay
kernels may serve it.  Traces are referenced by key into the
campaign's trace table so a grid over two policies × three capacities
carries one copy of each trace spec, not six.

Content addressing
------------------
:func:`cell_hash` maps a cell to a stable SHA-256 over a canonical
JSON encoding of every input that can change the result:

* policy name and policy kwargs (sorted),
* capacity,
* the **trace fingerprint** (:meth:`repro.core.trace.Trace.fingerprint`
  — access sequence + block partition, independent of how the trace
  was built),
* the ``fast`` flag (the conformance harness proves fast and referee
  replay bit-identical, but the flag is still an input: a hash that
  ignored it could serve a referee row where a kernel bug repro was
  requested),
* the library version (``repro.__version__``), so upgrading the code
  invalidates memoized rows instead of silently mixing versions.

Anything *not* in the list — trace metadata, worker count, retry
policy, wall-clock — must not influence the result, and therefore
does not influence the address.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import repro
from repro.core.trace import Trace
from repro.errors import ConfigurationError

__all__ = [
    "TraceSpec",
    "CellSpec",
    "CampaignSpec",
    "cell_hash",
    "canonical_json",
    "trace_workload_names",
]

SPEC_FILENAME = "spec.json"


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _workload_registry() -> Dict[str, Callable[..., Trace]]:
    # Imported lazily so `repro.campaign.spec` stays importable without
    # the workload stack (mirrors sweep's lazy-import convention).
    from repro import workloads as w

    return {
        "uniform": w.uniform_random,
        "zipf": w.zipf_items,
        "scan": w.sequential_scan,
        "cyclic_scan": w.cyclic_scan,
        "strided": w.strided,
        "block_runs": w.block_runs,
        "markov": w.markov_spatial,
        "block_zipf": w.block_zipf,
        "interleaved_streams": w.interleaved_streams,
        "hot_and_stream": w.hot_and_stream,
        "dram": w.dram_cache_workload,
        "pagecache": w.page_cache_workload,
        "etc": w.etc_kv_workload,
    }


def trace_workload_names() -> List[str]:
    """Workload generator names a :class:`TraceSpec` may reference."""
    return sorted(_workload_registry())


@dataclass(frozen=True)
class TraceSpec:
    """A reproducible trace reference: generator call or trace file.

    ``kind="workload"`` names a generator from
    :func:`trace_workload_names` with JSON-scalar ``params``;
    ``kind="file"`` names a text trace readable by
    :func:`repro.workloads.trace_io.read_text_trace`;
    ``kind="rtc"`` names a compiled ``.rtc`` trace opened memory-mapped
    via :func:`repro.core.rtc.open_rtc` — materialization is a header
    read plus an mmap, so huge traces cost nothing to plan.  Either way
    the cell hash uses the *materialized* trace's fingerprint, so an
    edited trace file recomputes its cells even though the spec text
    is unchanged.
    """

    kind: str = "workload"
    name: str = "uniform"
    params: Mapping[str, Any] = field(default_factory=dict)
    path: Optional[str] = None
    block_size: Optional[int] = None
    densify: bool = False

    def materialize(self) -> Trace:
        """Build the trace this spec describes."""
        if self.kind == "workload":
            registry = _workload_registry()
            if self.name not in registry:
                raise ConfigurationError(
                    f"unknown campaign workload {self.name!r}; "
                    f"known: {', '.join(sorted(registry))}"
                )
            return registry[self.name](**dict(self.params))
        if self.kind == "file":
            from repro.workloads.trace_io import read_text_trace

            if not self.path:
                raise ConfigurationError("file trace spec needs a path")
            return read_text_trace(
                self.path, block_size=self.block_size, densify=self.densify
            ).trace
        if self.kind == "rtc":
            from repro.core.rtc import open_rtc

            if not self.path:
                raise ConfigurationError("rtc trace spec needs a path")
            try:
                return open_rtc(self.path)
            except FileNotFoundError as exc:
                raise ConfigurationError(
                    f"rtc trace {self.path!r} does not exist"
                ) from exc
        raise ConfigurationError(f"unknown trace spec kind {self.kind!r}")

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "workload":
            out["name"] = self.name
            out["params"] = dict(self.params)
        elif self.kind == "rtc":
            out["path"] = self.path
        else:
            out["path"] = self.path
            out["block_size"] = self.block_size
            out["densify"] = self.densify
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpec":
        return cls(
            kind=data.get("kind", "workload"),
            name=data.get("name", "uniform"),
            params=dict(data.get("params", {})),
            path=data.get("path"),
            block_size=data.get("block_size"),
            densify=bool(data.get("densify", False)),
        )


@dataclass(frozen=True)
class CellSpec:
    """One grid cell: a policy replayed over one trace at one size.

    ``serving`` (a :meth:`repro.serving.ServingConfig.as_dict` mapping,
    or ``None``) turns the cell into a request-level serving run: the
    worker calls :func:`repro.serving.serve` instead of offline
    ``simulate`` and the row carries latency columns.

    ``cluster`` (a :meth:`repro.cluster.ClusterSpec.as_dict` mapping,
    or ``None``) replays the cell through an N-shard cluster instead
    of one cache — combinable with ``serving`` (cluster dispatch under
    the request-level simulator).  Single-cache cells omit both keys
    entirely, so pre-cluster ``spec.json`` files load unchanged and
    keep their cell hashes.
    """

    policy: str
    capacity: int
    trace: str  #: key into :attr:`CampaignSpec.traces`
    fast: bool = True
    policy_kwargs: Mapping[str, Any] = field(default_factory=dict)
    serving: Optional[Mapping[str, Any]] = None
    cluster: Optional[Mapping[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "policy": self.policy,
            "capacity": self.capacity,
            "trace": self.trace,
            "fast": self.fast,
            "policy_kwargs": dict(self.policy_kwargs),
        }
        if self.serving is not None:
            out["serving"] = dict(self.serving)
        if self.cluster is not None:
            out["cluster"] = dict(self.cluster)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellSpec":
        serving = data.get("serving")
        cluster = data.get("cluster")
        return cls(
            policy=data["policy"],
            capacity=int(data["capacity"]),
            trace=data["trace"],
            fast=bool(data.get("fast", True)),
            policy_kwargs=dict(data.get("policy_kwargs", {})),
            serving=dict(serving) if serving is not None else None,
            cluster=dict(cluster) if cluster is not None else None,
        )

    def params_row(self) -> Dict[str, Any]:
        """The cell parameters echoed into exported rows (sweep-style)."""
        out: Dict[str, Any] = {
            "policy": self.policy,
            "capacity": self.capacity,
            "trace": self.trace,
            "fast": self.fast,
        }
        if self.cluster is not None:
            out["n_shards"] = self.cluster.get("n_shards")
            out["hash_scheme"] = self.cluster.get("scheme")
        out.update(self.policy_kwargs)
        return out

    def mode_label(self) -> str:
        """Short human label for status/watch boards.

        Offline single-cache cells label as ``"offline"``; serving and
        cluster dimensions compose, e.g. ``"cluster[4×block]+serving"``.
        """
        parts: List[str] = []
        if self.cluster is not None:
            parts.append(
                "cluster[{}×{}]".format(
                    self.cluster.get("n_shards", "?"),
                    self.cluster.get("scheme", "?"),
                )
            )
        if self.serving is not None:
            parts.append("serving")
        return "+".join(parts) if parts else "offline"


def cell_hash(
    policy: str,
    capacity: int,
    trace_fingerprint: str,
    fast: bool = True,
    policy_kwargs: Optional[Mapping[str, Any]] = None,
    version: Optional[str] = None,
    serving: Optional[Mapping[str, Any]] = None,
    cluster: Optional[Mapping[str, Any]] = None,
) -> str:
    """The content address of one cell (see the module docstring).

    ``serving`` — the cell's serving config dict, when it is a
    request-level cell — is part of the address: changing any arrival,
    service, or queue parameter yields a different hash, so serving
    rows can never be served from cells computed under other load
    parameters.  ``cluster`` — the cell's
    :meth:`repro.cluster.ClusterSpec.as_dict` mapping — joins the
    address the same way, so shard count / hash scheme / capacity-mode
    changes always recompute.  Single-cache cells (both ``None``) hash
    exactly as they did before either layer existed, keeping old
    stores valid.
    """
    body: Dict[str, Any] = {
        "policy": policy,
        "capacity": int(capacity),
        "policy_kwargs": dict(policy_kwargs or {}),
        "trace_fingerprint": trace_fingerprint,
        "fast": bool(fast),
        "version": version if version is not None else repro.__version__,
    }
    if serving is not None:
        body["serving"] = dict(serving)
    if cluster is not None:
        body["cluster"] = dict(cluster)
    payload = canonical_json(body)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CampaignSpec:
    """A named, serializable experiment grid.

    ``version`` is pinned at construction so a campaign directory
    records the code version its rows were computed with; `resume`
    re-hashes with the *pinned* version, keeping an interrupted
    campaign bit-identical to an uninterrupted one even across a
    library upgrade mid-campaign.
    """

    name: str
    traces: Dict[str, TraceSpec]
    cells: List[CellSpec]
    version: str = field(default_factory=lambda: repro.__version__)

    def __post_init__(self) -> None:
        for cell in self.cells:
            if cell.trace not in self.traces:
                raise ConfigurationError(
                    f"cell references unknown trace key {cell.trace!r}"
                )

    @classmethod
    def from_grid(
        cls,
        name: str,
        policies: Sequence[str],
        capacities: Sequence[int],
        traces: Mapping[str, TraceSpec],
        fast: bool = True,
        policy_kwargs: Optional[Mapping[str, Any]] = None,
        servings: Optional[Sequence[Mapping[str, Any]]] = None,
        clusters: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> "CampaignSpec":
        """Cartesian (trace × policy × capacity) grid, sweep-ordered.

        ``servings`` (optional) adds a fourth axis of serving-config
        dicts, making every cell a request-level serving cell — the
        ``latency_vs_load`` experiment grids over arrival rates this
        way.  ``clusters`` (optional) adds a fifth axis of
        :meth:`repro.cluster.ClusterSpec.as_dict` mappings, so one
        resumable campaign can sweep shard count × hash scheme ×
        policy × capacity.  ``None`` keeps the classic offline grid.
        """
        if not policies or not capacities or not traces:
            raise ConfigurationError(
                "a campaign grid needs at least one policy, capacity, and trace"
            )
        serving_axis: Sequence[Optional[Mapping[str, Any]]] = (
            [None] if servings is None else list(servings)
        )
        if not serving_axis:
            raise ConfigurationError("servings, when given, must be non-empty")
        cluster_axis: Sequence[Optional[Mapping[str, Any]]] = (
            [None] if clusters is None else list(clusters)
        )
        if not cluster_axis:
            raise ConfigurationError("clusters, when given, must be non-empty")
        cells = [
            CellSpec(
                policy=p,
                capacity=c,
                trace=t,
                fast=fast,
                policy_kwargs=dict(policy_kwargs or {}),
                serving=dict(s) if s is not None else None,
                cluster=dict(cl) if cl is not None else None,
            )
            for t in traces
            for p in policies
            for c in capacities
            for s in serving_axis
            for cl in cluster_axis
        ]
        return cls(name=name, traces=dict(traces), cells=cells)

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "traces": {k: t.as_dict() for k, t in self.traces.items()},
            "cells": [c.as_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            traces={
                k: TraceSpec.from_dict(t) for k, t in data["traces"].items()
            },
            cells=[CellSpec.from_dict(c) for c in data["cells"]],
            version=data.get("version", repro.__version__),
        )

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / SPEC_FILENAME
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, directory: str | Path) -> "CampaignSpec":
        path = Path(directory) / SPEC_FILENAME
        if not path.exists():
            raise ConfigurationError(
                f"{path} not found: not a campaign directory (run before resume)"
            )
        return cls.from_dict(json.loads(path.read_text()))

"""Checkpointed, fault-tolerant, memoizing experiment orchestration.

The paper's tables and figures come from (policy × capacity × workload
× seed) grids whose cells are arbitrarily expensive — the offline side
is NP-complete — and :func:`repro.analysis.sweep.sweep` holds the
whole grid in memory with no persistence: one hung or crashed worker
throws away hours of grid.  This package layers orchestration on top
of ``sweep``/``simulate_cell``:

* :mod:`repro.campaign.spec` — declarative campaign descriptions and
  the **content address** of a cell: a stable hash over (policy,
  policy kwargs, capacity, trace fingerprint, fast flag, code
  version).  Same inputs ⇒ same hash ⇒ the cell is never recomputed.
* :mod:`repro.campaign.store` — the append-only JSONL result log with
  a SQLite index keyed by cell hash; crash-safe (rows are fsync'd
  before being indexed, torn tail lines are discarded on open).
* :mod:`repro.campaign.journal` — the cell-state journal
  (``attempt``/``done``/``failed``/``quarantined`` events) that makes
  every campaign resumable.
* :mod:`repro.campaign.runner` — the checkpointed executor: per-cell
  worker processes with timeouts, retry with exponential backoff, and
  a poison-cell quarantine that lets the rest of the grid finish.
* :mod:`repro.campaign.integrate` — :class:`CampaignCache`, a
  memoizing ``simulate`` front-end the experiment drivers use to make
  table/figure regeneration resumable.

``campaign run / resume / status / export`` on the CLI drive all of
this; see ``docs/campaigns.md``.
"""

from repro.campaign.integrate import CampaignCache, cached_simulate, open_cache
from repro.campaign.journal import Journal
from repro.campaign.runner import CampaignReport, CampaignRunner, RetryPolicy
from repro.campaign.spec import (
    CampaignSpec,
    CellSpec,
    TraceSpec,
    cell_hash,
    trace_workload_names,
)
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignCache",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CellSpec",
    "Journal",
    "ResultStore",
    "RetryPolicy",
    "TraceSpec",
    "cached_simulate",
    "cell_hash",
    "open_cache",
    "trace_workload_names",
]

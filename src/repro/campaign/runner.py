"""The checkpointed, fault-tolerant campaign executor.

Execution model
---------------
Each cell runs in its **own worker process** (not a shared pool): a
hung cell can be killed on timeout, a crashed or ``kill -9``'d worker
takes down only its own cell, and the orchestrator observes both as an
ordinary failed attempt.  Failed attempts retry with exponential
backoff (``delay = base * factor**(attempt-1)``); a cell that exhausts
``max_attempts`` is **quarantined** — journaled with its last error
and skipped — so one poison cell cannot stall the rest of the grid.

Checkpointing is a consequence of content addressing, not a separate
mechanism: every completed cell is committed to the
:class:`~repro.campaign.store.ResultStore` under its hash *before* the
executor moves on, so the store **is** the checkpoint.  ``resume``
simply reruns the campaign — cells whose hash is already stored are
served as memo hits and never recomputed, which makes an interrupted
run's final rows bit-identical (row for row) to an uninterrupted one.
Quarantined cells get a fresh attempt budget on resume: quarantine is
a per-run circuit breaker, not a permanent verdict.

Determinism: workers receive fully materialized traces and seeded
policies; retry timing, worker counts, and scheduling order can change
*when* a cell is computed but never *what* it computes.

Trace delivery: a parallel run publishes each materialized trace once
into a shared-memory arena (:mod:`repro.core.arena`) and ships workers
the small handle; a worker attaches zero-copy and, because attachments
carry the publisher's fingerprint, content addressing is unchanged.
When shared memory is unavailable the trace travels by pickle exactly
as before — the arena is an optimization, never a requirement.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.sweep import default_workers
from repro.campaign.journal import Journal
from repro.campaign.spec import CampaignSpec, CellSpec, cell_hash
from repro.campaign.store import ResultStore
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.obs.watch import WATCH_FILENAME, write_watch_state
from repro.telemetry import spans
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanContext
from repro.types import SimResult

__all__ = [
    "RetryPolicy",
    "CellOutcome",
    "CampaignReport",
    "CampaignRunner",
    "execute_cell",
    "result_fields",
    "result_from_fields",
]


def result_fields(result: SimResult) -> Dict[str, Any]:
    """Full, JSON-safe :class:`SimResult` state (lossless round-trip)."""
    return {
        "accesses": result.accesses,
        "misses": result.misses,
        "temporal_hits": result.temporal_hits,
        "spatial_hits": result.spatial_hits,
        "loaded_items": result.loaded_items,
        "evicted_items": result.evicted_items,
        "policy": result.policy,
        "capacity": result.capacity,
        "metadata": dict(result.metadata),
        # Telemetry-only; stored when set so reports can show which
        # cells the fast path actually covered.
        **(
            {"fallback_reason": result.fallback_reason}
            if result.fallback_reason is not None
            else {}
        ),
    }


def result_from_fields(fields: Dict[str, Any]):
    """Rebuild the exact result object a worker stored.

    Offline cells stored :func:`result_fields` payloads and round-trip
    to :class:`SimResult`; serving cells are tagged ``"kind":
    "serving"`` and round-trip to
    :class:`repro.serving.ServingResult` (which carries its offline
    ``SimResult`` inside); cluster cells are tagged ``"kind":
    "cluster"`` and round-trip to
    :class:`repro.cluster.ClusterResult`.  All three expose
    ``as_row()``, which is all the report/CSV layers rely on.
    """
    if fields.get("kind") == "serving":
        from repro.serving import ServingResult

        return ServingResult.from_fields(fields)
    if fields.get("kind") == "cluster":
        from repro.cluster import ClusterResult

        return ClusterResult.from_fields(fields)
    return SimResult(
        accesses=int(fields["accesses"]),
        misses=int(fields["misses"]),
        temporal_hits=int(fields["temporal_hits"]),
        spatial_hits=int(fields["spatial_hits"]),
        loaded_items=int(fields["loaded_items"]),
        evicted_items=int(fields["evicted_items"]),
        policy=fields["policy"],
        capacity=int(fields["capacity"]),
        metadata=dict(fields.get("metadata", {})),
        fallback_reason=fields.get("fallback_reason"),
    )


def execute_cell(cell: CellSpec, trace: Trace) -> Dict[str, Any]:
    """Run one cell (same replay path as ``sweep``'s ``simulate_cell``).

    A cell with a ``serving`` config runs the request-level simulator
    instead; a cell with a ``cluster`` spec replays (or serves)
    through an N-shard cluster.  Either payload is self-tagged, so
    :func:`result_from_fields` rebuilds the right type.
    """
    from repro.core.engine import simulate
    from repro.policies import make_policy

    if cell.cluster is not None:
        from repro.cluster import ClusterSpec, replay_cluster

        cluster = ClusterSpec.from_dict(cell.cluster)
        if cell.serving is not None:
            from repro.cluster.serving_bridge import serve_cluster
            from repro.serving import ServingConfig

            return serve_cluster(
                cell.policy,
                cell.capacity,
                trace,
                cluster,
                ServingConfig.from_dict(cell.serving),
                policy_kwargs=cell.policy_kwargs,
            ).fields()
        return replay_cluster(
            cell.policy,
            cell.capacity,
            trace,
            cluster,
            policy_kwargs=cell.policy_kwargs,
            fast=cell.fast,
        ).fields()
    instance = make_policy(
        cell.policy, cell.capacity, trace.mapping, **dict(cell.policy_kwargs)
    )
    if cell.serving is not None:
        from repro.serving import ServingConfig, serve

        return serve(instance, trace, ServingConfig.from_dict(cell.serving)).fields()
    return result_fields(simulate(instance, trace, fast=cell.fast))


def _worker_main(
    conn, cell_dict: Dict[str, Any], trace, span_payload=None
) -> None:
    """Child-process entry: compute one cell, ship outcome over the pipe.

    ``trace`` is either a materialized :class:`Trace` (pickle fallback)
    or an :class:`repro.core.arena.ArenaHandle` to attach zero-copy; a
    failed attach reports like any other cell error and retries.

    ``span_payload`` carries the parent's span tracing across the
    process boundary: the spans file path plus the ids agreed with the
    orchestrator (``span_id`` names this attempt's ``cell`` span, so
    the parent can hang its ``store.put`` under it; ``parent_id`` is
    the orchestrator's ``campaign.execute`` span).  The worker appends
    to the shared file — per-record flushed single writes, so lines
    from concurrent workers interleave whole — and everything the cell
    touches (arena attach, compile memo, replay kernels) nests under
    the ``cell`` span via the ambient tracer.  With fork start the
    child *inherits* the parent's tracer object; :func:`spans.enable`
    replaces it without closing, so the parent's file handle is never
    flushed or closed from the child.
    """
    try:
        from repro.core.arena import resolve

        cell = CellSpec.from_dict(cell_dict)
        if span_payload is not None:
            tracer = spans.enable(
                span_payload["path"],
                root=SpanContext(
                    trace_id=span_payload["trace_id"],
                    span_id=span_payload["parent_id"],
                ),
                append=True,
            )
            cell_cm = tracer.span(
                "cell",
                span_id=span_payload["span_id"],
                **span_payload.get("attrs", {}),
            )
        else:
            from contextlib import nullcontext

            cell_cm = nullcontext()
        with cell_cm:
            fields = execute_cell(cell, resolve(trace))
        conn.send(("ok", fields))
    except BaseException as exc:  # report, never hang the pipe
        try:
            conn.send(
                (
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            )
        except Exception:
            pass
    finally:
        if span_payload is not None:
            spans.disable()
        conn.close()


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell fault-tolerance knobs.

    ``timeout`` is enforced only for process-isolated execution
    (``parallel=True``), where a stuck worker can be killed; inline
    execution cannot preempt a running cell.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                "backoff_base must be >= 0 and backoff_factor >= 1"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (0-based attempts)."""
        return self.backoff_base * self.backoff_factor ** max(0, attempt - 1)


@dataclass
class CellOutcome:
    """Terminal state of one grid cell after a run."""

    index: int
    cell: CellSpec
    hash: str
    status: str  # "done" | "quarantined"
    attempts: int = 0
    memo: bool = False
    error: Optional[str] = None
    #: ``SimResult`` (offline cell) or ``repro.serving.ServingResult``
    #: (serving cell); both expose ``as_row()``.
    result: Optional[Any] = None


@dataclass
class CampaignReport:
    """What :meth:`CampaignRunner.run` hands back."""

    spec: CampaignSpec
    outcomes: List[CellOutcome]
    computed: int = 0
    memo_hits: int = 0
    attempts: int = 0
    failures: int = 0
    seconds: float = 0.0

    @property
    def done(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "done"]

    @property
    def quarantined(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def complete(self) -> bool:
        return not self.quarantined

    @property
    def memo_hit_ratio(self) -> float:
        """Fraction of completed cells served from the result store."""
        done = len(self.done)
        return self.memo_hits / done if done else 0.0

    def rows(self) -> List[Dict[str, Any]]:
        """Result rows in grid order (sweep-compatible: ``as_row()`` +
        echoed cell parameters, worker values winning on collision)."""
        out = []
        for outcome in self.done:
            assert outcome.result is not None
            row = outcome.result.as_row()
            for key, value in outcome.cell.params_row().items():
                row.setdefault(key, value)
            out.append(row)
        return out

    def summary(self) -> Dict[str, Any]:
        return {
            "name": self.spec.name,
            "cells": len(self.outcomes),
            "done": len(self.done),
            "quarantined": len(self.quarantined),
            "memo_hits": self.memo_hits,
            "computed": self.computed,
            "attempts": self.attempts,
            "failures": self.failures,
            "memo_hit_ratio": self.memo_hit_ratio,
            "seconds": self.seconds,
        }


class _CellState:
    __slots__ = ("index", "cell", "hash", "attempts", "not_before", "span_id")

    def __init__(self, index: int, cell: CellSpec, digest: str) -> None:
        self.index = index
        self.cell = cell
        self.hash = digest
        self.attempts = 0
        self.not_before = 0.0
        # Span id of the latest attempt's "cell" span (pre-agreed with
        # the worker so the orchestrator's store.put can parent to it).
        self.span_id: Optional[str] = None


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class CampaignRunner:
    """Drive one campaign directory to completion (run or resume).

    Parameters
    ----------
    directory:
        The campaign directory.  If ``spec`` is given it is saved
        there (a differing existing spec is a configuration error —
        one directory, one campaign); if omitted, the directory's
        ``spec.json`` is loaded, which is exactly what ``resume`` does.
    parallel / max_workers:
        Fan cells out over per-cell worker processes.  Serial mode
        runs cells inline (no timeout enforcement, but identical
        retry/quarantine/memo semantics).
    retry:
        :class:`RetryPolicy` for timeouts/backoff/quarantine.
    recorder:
        Optional :class:`repro.telemetry.Recorder`; the runner times
        ``plan``/``execute`` phases and publishes campaign counters
        into its registry.  The recorder is *not* finalized here so a
        caller can keep composing phases.
    sleep:
        Injectable sleep (tests use a no-op to make backoff instant).
    trace_spans:
        Record hierarchical spans (campaign → plan/execute → cell →
        compile/attach/replay/store) to this JSONL file; workers join
        the same file across the process boundary.  Export with
        ``gc-caching obs trace-export``.
    metrics_out:
        Refresh a Prometheus-textfile snapshot of the live campaign
        gauges here on every heartbeat (and once more at the end).
    heartbeat:
        Seconds between ``watch.json`` progress snapshots in the
        campaign directory (what ``gc-caching campaign watch`` polls);
        ``0`` disables heartbeats entirely.
    """

    def __init__(
        self,
        directory: str | Path,
        spec: Optional[CampaignSpec] = None,
        *,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        retry: RetryPolicy = RetryPolicy(),
        recorder=None,
        sleep: Callable[[float], None] = time.sleep,
        store_sync: bool = True,
        tick: float = 0.05,
        trace_spans: Optional[str | Path] = None,
        metrics_out: Optional[str | Path] = None,
        heartbeat: float = 1.0,
    ) -> None:
        self.directory = Path(directory)
        self._respec_from: Optional[str] = None
        if spec is not None:
            # A directory may be re-pointed at an evolved spec (wider
            # grid, new fast flag, ...): the store is content-addressed,
            # so every previously computed overlapping cell stays a
            # valid memo entry and only changed cells recompute.  The
            # replacement is journaled below for auditability.
            spec_path = self.directory / "spec.json"
            if spec_path.exists():
                existing = CampaignSpec.load(self.directory)
                if existing.as_dict() != spec.as_dict():
                    self._respec_from = existing.name
            spec.save(self.directory)
            self.spec = spec
        else:
            self.spec = CampaignSpec.load(self.directory)
        self.parallel = parallel
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers or default_workers()
        self.retry = retry
        self._arenas: List[Any] = []
        self.recorder = recorder
        self._sleep = sleep
        self._tick = tick
        self.store = ResultStore(self.directory, sync=store_sync)
        self.journal = Journal(self.directory)
        self._spans_path = Path(trace_spans) if trace_spans else None
        self._metrics_path = Path(metrics_out) if metrics_out else None
        if heartbeat < 0:
            raise ConfigurationError(f"heartbeat must be >= 0, got {heartbeat}")
        self.heartbeat = heartbeat
        self._watch_path = self.directory / WATCH_FILENAME
        # Live gauges for --metrics-out, deliberately separate from the
        # recorder's registry: that one accumulates end-of-run counters
        # (campaign_cells etc.) and mixing gauge/counter kinds under
        # one name is a registry error.
        self._live = MetricsRegistry()
        self._last_heartbeat = 0.0

    # -- planning ----------------------------------------------------------
    def _plan(self) -> Tuple[List[CellOutcome], List[_CellState]]:
        """Materialize traces, hash cells, split memo hits from work."""
        traces: Dict[str, Trace] = {}
        fingerprints: Dict[str, str] = {}
        for key, tspec in self.spec.traces.items():
            trace = tspec.materialize()
            traces[key] = trace
            fingerprints[key] = trace.fingerprint()
        self._traces = traces
        # Parallel runs ship workers arena handles where possible;
        # traces that fail to publish fall back to pickling.
        self._close_arenas()
        self._trace_payloads: Dict[str, Any] = dict(traces)
        if self.parallel:
            from repro.core import arena

            for key, trace in traces.items():
                # mmap-backed .rtc traces need no shm publication: the
                # file is the arena, workers map it themselves.
                handle = arena.mmap_handle(trace)
                if handle is not None:
                    self._trace_payloads[key] = handle
                    continue
                published = arena.publish(trace)
                if published is not None:
                    self._arenas.append(published)
                    self._trace_payloads[key] = published.handle
        outcomes: List[CellOutcome] = []
        todo: List[_CellState] = []
        for index, cell in enumerate(self.spec.cells):
            digest = cell_hash(
                policy=cell.policy,
                capacity=cell.capacity,
                trace_fingerprint=fingerprints[cell.trace],
                fast=cell.fast,
                policy_kwargs=cell.policy_kwargs,
                version=self.spec.version,
                serving=cell.serving,
                cluster=cell.cluster,
            )
            stored = self.store.get(digest)
            if stored is not None:
                outcomes.append(
                    CellOutcome(
                        index=index,
                        cell=cell,
                        hash=digest,
                        status="done",
                        memo=True,
                        result=result_from_fields(stored),
                    )
                )
            else:
                todo.append(_CellState(index, cell, digest))
        return outcomes, todo

    # -- shared bookkeeping ------------------------------------------------
    def _commit(
        self, state: _CellState, fields: Dict[str, Any], seconds: float
    ) -> CellOutcome:
        tracer = spans.get_tracer()
        if tracer is not None:
            # Parent the durable-commit span to this cell's span even
            # though the put runs in the orchestrator: the cell span id
            # was pre-agreed with the worker at launch (and recorded by
            # the inline path), so the exported tree shows the commit
            # as the cell's final child.
            parent = (
                SpanContext(trace_id=tracer.trace_id, span_id=state.span_id)
                if state.span_id is not None
                else None
            )
            with tracer.span(
                "store.put", parent=parent, index=state.index, hash=state.hash[:12]
            ):
                self.store.put(state.hash, fields)
        else:
            self.store.put(state.hash, fields)
        self._accesses_done += int(fields.get("accesses", 0))
        self._cell_seconds += seconds
        self.journal.append(
            "done",
            index=state.index,
            hash=state.hash,
            attempt=state.attempts,
            seconds=seconds,
            memo=False,
        )
        return CellOutcome(
            index=state.index,
            cell=state.cell,
            hash=state.hash,
            status="done",
            attempts=state.attempts,
            result=result_from_fields(fields),
        )

    def _fail(
        self, state: _CellState, error: str, now: float
    ) -> Optional[CellOutcome]:
        """Journal a failed attempt; quarantine or schedule the retry.

        Returns the terminal outcome when the cell is quarantined,
        else ``None`` (the cell stays in flight).
        """
        self._failures += 1
        self.journal.append(
            "failed",
            index=state.index,
            hash=state.hash,
            attempt=state.attempts,
            error=error,
        )
        if state.attempts >= self.retry.max_attempts:
            self.journal.append(
                "quarantined",
                index=state.index,
                hash=state.hash,
                attempts=state.attempts,
                error=error,
            )
            self._quarantined += 1
            return CellOutcome(
                index=state.index,
                cell=state.cell,
                hash=state.hash,
                status="quarantined",
                attempts=state.attempts,
                error=error,
            )
        state.not_before = now + self.retry.delay(state.attempts)
        return None

    # -- serial execution --------------------------------------------------
    def _run_inline(self, todo: List[_CellState]) -> List[CellOutcome]:
        outcomes: List[CellOutcome] = []
        ready = list(todo)
        while ready:
            state = ready.pop(0)
            wait_s = state.not_before - time.monotonic()
            if wait_s > 0:
                self._sleep(wait_s)
            state.attempts += 1
            self._attempts += 1
            self.journal.append(
                "attempt",
                index=state.index,
                hash=state.hash,
                attempt=state.attempts,
            )
            t0 = time.perf_counter()
            try:
                # The cell span brackets the cell body alone (commit is
                # its own span, explicitly parented below), mirroring
                # the parallel path where the worker owns the cell span
                # and the orchestrator owns store.put.
                with spans.span(
                    "cell",
                    index=state.index,
                    policy=state.cell.policy,
                    capacity=state.cell.capacity,
                    trace=state.cell.trace,
                    attempt=state.attempts,
                ) as sp:
                    if sp is not None:
                        state.span_id = sp.span_id
                    fields = execute_cell(
                        state.cell, self._traces[state.cell.trace]
                    )
            except Exception as exc:
                terminal = self._fail(
                    state, f"{type(exc).__name__}: {exc}", time.monotonic()
                )
                if terminal is not None:
                    outcomes.append(terminal)
                else:
                    ready.append(state)
                self._heartbeat_tick()
                continue
            self._computed += 1
            outcomes.append(
                self._commit(state, fields, time.perf_counter() - t0)
            )
            self._heartbeat_tick()
        return outcomes

    # -- parallel execution ------------------------------------------------
    def _span_payload(self, state: _CellState) -> Optional[Dict[str, Any]]:
        """Cross-process span continuation for one worker attempt.

        Pre-generates the worker's ``cell`` span id so the orchestrator
        can parent its later ``store.put`` span to a span recorded in
        another process.  Requires a runner-owned spans file: without a
        path the worker has nowhere to append.
        """
        tracer = spans.get_tracer()
        if tracer is None or self._spans_path is None:
            return None
        parent = tracer.current_context()
        if parent is None:
            return None
        state.span_id = spans.new_span_id()
        return {
            "path": str(self._spans_path),
            "trace_id": tracer.trace_id,
            "parent_id": parent.span_id,
            "span_id": state.span_id,
            "attrs": {
                "index": state.index,
                "policy": state.cell.policy,
                "capacity": state.cell.capacity,
                "trace": state.cell.trace,
                "attempt": state.attempts,
            },
        }

    def _launch(self, ctx, state: _CellState):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        state.attempts += 1
        self._attempts += 1
        proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                state.cell.as_dict(),
                self._trace_payloads[state.cell.trace],
                self._span_payload(state),
            ),
            daemon=True,
        )
        self.journal.append(
            "attempt",
            index=state.index,
            hash=state.hash,
            attempt=state.attempts,
        )
        proc.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.retry.timeout
            if self.retry.timeout is not None
            else None
        )
        return parent_conn, proc, deadline, time.perf_counter()

    def _run_processes(self, todo: List[_CellState]) -> List[CellOutcome]:
        ctx = _mp_context()
        outcomes: List[CellOutcome] = []
        ready: List[Tuple[float, int, _CellState]] = []  # (not_before, idx, s)
        for state in todo:
            heapq.heappush(ready, (state.not_before, state.index, state))
        running: Dict[Any, Tuple[_CellState, Any, Optional[float], float]] = {}
        try:
            while ready or running:
                self._heartbeat_tick(running)
                now = time.monotonic()
                # Launch every ripe cell a free worker slot can take.
                while (
                    ready
                    and len(running) < self.max_workers
                    and ready[0][0] <= now
                ):
                    _, _, state = heapq.heappop(ready)
                    conn, proc, deadline, t0 = self._launch(ctx, state)
                    running[conn] = (state, proc, deadline, t0)
                if not running:
                    # Only backoff-delayed work left: sleep to ripeness.
                    self._sleep(max(0.0, ready[0][0] - time.monotonic()))
                    # A no-op test sleep must not spin: treat the wait
                    # as elapsed by releasing the ripest cell.
                    not_before, index, state = heapq.heappop(ready)
                    state.not_before = 0.0
                    heapq.heappush(ready, (0.0, index, state))
                    continue
                timeout = self._tick
                deadlines = [d for (_, _, d, _) in running.values() if d]
                if deadlines:
                    timeout = min(
                        timeout, max(0.0, min(deadlines) - time.monotonic())
                    )
                for conn in connection_wait(list(running), timeout=timeout):
                    state, proc, _, t0 = running.pop(conn)
                    terminal = self._reap(
                        conn, proc, state, time.perf_counter() - t0
                    )
                    if terminal is not None:
                        outcomes.append(terminal)
                    else:
                        heapq.heappush(
                            ready, (state.not_before, state.index, state)
                        )
                # Enforce per-cell deadlines on whatever is still running.
                now = time.monotonic()
                for conn in [
                    c
                    for c, (_, _, d, _) in running.items()
                    if d is not None and d <= now
                ]:
                    state, proc, _, t0 = running.pop(conn)
                    proc.kill()
                    proc.join()
                    conn.close()
                    terminal = self._fail(
                        state,
                        f"TimeoutError: cell exceeded {self.retry.timeout}s",
                        now,
                    )
                    if terminal is not None:
                        outcomes.append(terminal)
                    else:
                        heapq.heappush(
                            ready, (state.not_before, state.index, state)
                        )
        finally:
            for state, proc, _, _ in running.values():
                proc.kill()
                proc.join()
        return outcomes

    def _reap(
        self, conn, proc, state: _CellState, seconds: float
    ) -> Optional[CellOutcome]:
        """Handle a worker whose pipe became readable (result or death)."""
        try:
            message = conn.recv()
        except (EOFError, OSError):
            message = None
        finally:
            conn.close()
        proc.join()
        if message is None:
            # Pipe closed with nothing sent: the worker died (OOM kill,
            # SIGKILL crash injection, interpreter abort, ...).
            return self._fail(
                state,
                f"WorkerDied: exitcode={proc.exitcode}",
                time.monotonic(),
            )
        if message[0] == "ok":
            self._computed += 1
            return self._commit(state, message[1], seconds)
        return self._fail(state, message[1], time.monotonic())

    # -- entry point -------------------------------------------------------
    def run(self) -> CampaignReport:
        """Execute (or resume) the campaign; always returns a report.

        Never raises for cell-level failures — those end up
        quarantined in the report — only for campaign-level
        misconfiguration.
        """
        # A runner-owned spans file installs the ambient tracer for the
        # duration of the run (workers join it by path); an ambient
        # tracer the *caller* enabled is respected and left installed.
        owned_tracer = (
            spans.enable(self._spans_path)
            if self._spans_path is not None
            else None
        )
        try:
            with spans.span(
                "campaign",
                campaign=self.spec.name,
                cells=len(self.spec.cells),
                parallel=self.parallel,
            ):
                return self._execute_run()
        finally:
            if owned_tracer is not None and spans.get_tracer() is owned_tracer:
                spans.disable()

    def _execute_run(self) -> CampaignReport:
        t_start = time.perf_counter()
        run_number = self.journal.run_count() + 1
        if self._respec_from is not None:
            self.journal.append(
                "respec", previous=self._respec_from, name=self.spec.name
            )
            self._respec_from = None
        self.journal.append(
            "start",
            run=run_number,
            cells=len(self.spec.cells),
            name=self.spec.name,
            version=self.spec.version,
            parallel=self.parallel,
        )
        phase = (
            self.recorder.phase
            if self.recorder is not None
            else _null_phase
        )
        self._attempts = 0
        self._failures = 0
        self._computed = 0
        self._quarantined = 0
        self._memo_hits = 0
        self._accesses_done = 0
        self._cell_seconds = 0.0
        self._run_number = run_number
        self._t0_mono = time.monotonic()
        self._last_heartbeat = 0.0
        with phase("plan"), spans.span("campaign.plan"):
            memo_outcomes, todo = self._plan()
        self._memo_hits = len(memo_outcomes)
        for outcome in memo_outcomes:
            self.journal.append(
                "done",
                index=outcome.index,
                hash=outcome.hash,
                attempt=0,
                seconds=0.0,
                memo=True,
            )
        self._heartbeat_tick(force=True)
        try:
            with phase("execute"), spans.span("campaign.execute", todo=len(todo)):
                if self.parallel and todo:
                    executed = self._run_processes(todo)
                else:
                    executed = self._run_inline(todo)
        finally:
            self._close_arenas()
        outcomes = sorted(memo_outcomes + executed, key=lambda o: o.index)
        report = CampaignReport(
            spec=self.spec,
            outcomes=outcomes,
            computed=self._computed,
            memo_hits=len(memo_outcomes),
            attempts=self._attempts,
            failures=self._failures,
            seconds=time.perf_counter() - t_start,
        )
        self.journal.append("finish", run=run_number, **report.summary())
        self._heartbeat_tick(force=True, finished=True)
        if self.recorder is not None:
            self._publish_metrics(report)
        return report

    # -- live heartbeat ----------------------------------------------------
    def _heartbeat_tick(
        self,
        running: Optional[Dict[Any, Any]] = None,
        force: bool = False,
        finished: bool = False,
    ) -> None:
        """Throttled snapshot of run progress into ``watch.json`` (and,
        when configured, the Prometheus textfile).

        Heartbeat failures are swallowed: observability must never take
        down a campaign that is otherwise making progress.
        """
        if self.heartbeat <= 0:
            return
        now = time.monotonic()
        if not force and now - self._last_heartbeat < self.heartbeat:
            return
        self._last_heartbeat = now
        state = self._watch_state(running or {}, finished)
        try:
            write_watch_state(self._watch_path, state)
        except OSError:  # pragma: no cover - disk-full style failures
            pass
        if self._metrics_path is not None:
            from repro.obs.promfile import write_prometheus

            self._update_live_metrics(state)
            try:
                write_prometheus(self._live, self._metrics_path)
            except OSError:  # pragma: no cover - disk-full style failures
                pass

    def _watch_state(
        self, running: Dict[Any, Any], finished: bool
    ) -> Dict[str, Any]:
        elapsed = time.monotonic() - self._t0_mono
        total = len(self.spec.cells)
        done = self._memo_hits + self._computed
        remaining = max(0, total - done - self._quarantined)
        per_cell = (
            self._cell_seconds / self._computed if self._computed else None
        )
        workers = self.max_workers if self.parallel else 1
        if remaining == 0:
            eta: Optional[float] = 0.0
        elif per_cell is not None:
            eta = remaining * per_cell / max(1, workers)
        else:
            eta = None  # nothing computed this run yet: no basis
        in_flight = []
        now_perf = time.perf_counter()
        for cell_state, proc, _deadline, t0 in running.values():
            in_flight.append(
                {
                    "index": cell_state.index,
                    "policy": cell_state.cell.policy,
                    "capacity": cell_state.cell.capacity,
                    "trace": cell_state.cell.trace,
                    "mode": cell_state.cell.mode_label(),
                    "attempt": cell_state.attempts,
                    "pid": proc.pid,
                    "seconds": now_perf - t0,
                }
            )
        return {
            "name": self.spec.name,
            "run": self._run_number,
            "ts": time.time(),
            "finished": finished,
            "parallel": self.parallel,
            "workers": workers,
            "cells": total,
            "done": done,
            "memo_hits": self._memo_hits,
            "computed": self._computed,
            "attempts": self._attempts,
            "failures": self._failures,
            "quarantined": self._quarantined,
            "running": sorted(in_flight, key=lambda r: r["index"]),
            "accesses_done": self._accesses_done,
            "accesses_per_sec": (
                self._accesses_done / elapsed if elapsed > 0 else 0.0
            ),
            "memo_hit_ratio": self._memo_hits / done if done else 0.0,
            "store_hit_ratio": self.store.hit_ratio,
            "elapsed_seconds": elapsed,
            "eta_seconds": eta,
        }

    def _update_live_metrics(self, state: Dict[str, Any]) -> None:
        g = self._live.gauge
        g("campaign_cells").set(state["cells"])
        g("campaign_cells_done").set(state["done"])
        g("campaign_cells_quarantined").set(state["quarantined"])
        g("campaign_cells_running").set(len(state["running"]))
        g("campaign_memo_hits").set(state["memo_hits"])
        g("campaign_computed").set(state["computed"])
        g("campaign_attempts").set(state["attempts"])
        g("campaign_failed_attempts").set(state["failures"])
        g("campaign_accesses_per_sec").set(state["accesses_per_sec"])
        g("campaign_memo_hit_ratio").set(state["memo_hit_ratio"])
        g("campaign_store_hit_ratio").set(state["store_hit_ratio"])
        g("campaign_elapsed_seconds").set(state["elapsed_seconds"])
        g("campaign_eta_seconds").set(
            state["eta_seconds"] if state["eta_seconds"] is not None else -1.0
        )
        g("campaign_finished").set(1.0 if state["finished"] else 0.0)

    def _publish_metrics(self, report: CampaignReport) -> None:
        reg = self.recorder.registry
        reg.counter("campaign_cells").inc(len(report.outcomes))
        reg.counter("campaign_memo_hits").inc(report.memo_hits)
        reg.counter("campaign_computed").inc(report.computed)
        reg.counter("campaign_attempts").inc(report.attempts)
        reg.counter("campaign_failures").inc(report.failures)
        reg.counter("campaign_quarantined").inc(len(report.quarantined))
        reg.gauge("campaign_memo_hit_ratio").set(report.memo_hit_ratio)
        reg.gauge("campaign_store_hit_ratio").set(self.store.hit_ratio)

    def _close_arenas(self) -> None:
        while self._arenas:
            self._arenas.pop().close()

    def close(self) -> None:
        self._close_arenas()
        self.store.close()
        self.journal.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@contextmanager
def _null_phase(name: str):
    yield

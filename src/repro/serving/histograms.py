"""Fixed-bucket latency histograms with exact integer payloads.

Latency distributions are recorded into log-spaced buckets fixed at
construction (``per_decade`` buckets per factor of 10, starting at
``lo``), HdrHistogram-style: recording is O(1), memory is constant,
and the payload — an integer count vector plus exact count/sum/min/max
— serializes to JSON losslessly, which is what lets the campaign store
content-address serving results and lets the determinism suite demand
*bit-identical* histogram payloads across runs and resumes.

Quantiles report the **upper edge** of the bucket containing the
target rank (conservative: the true quantile is never above the
reported one by construction, and never below it by more than one
bucket width, a relative ``10^(1/per_decade) - 1`` — 12% at the
default 20 buckets per decade).  The exact observed ``max`` caps the
top, so p100 is always exact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Log-bucketed distribution of nonnegative latencies.

    Parameters
    ----------
    lo:
        Lower edge of the first bucket; values below land in a
        dedicated underflow bucket (reported as ``<= lo``).
    per_decade:
        Buckets per factor of 10 (resolution ``10^(1/per_decade)``).
    decades:
        Decades covered; values beyond ``lo * 10^decades`` land in an
        overflow bucket (reported via the exact ``max``).
    """

    __slots__ = (
        "lo",
        "per_decade",
        "decades",
        "counts",
        "underflow",
        "overflow",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self, lo: float = 1e-3, per_decade: int = 20, decades: int = 12
    ) -> None:
        if lo <= 0:
            raise ConfigurationError(f"histogram lo must be > 0, got {lo}")
        if per_decade < 1 or decades < 1:
            raise ConfigurationError("per_decade and decades must be >= 1")
        self.lo = float(lo)
        self.per_decade = int(per_decade)
        self.decades = int(decades)
        self.counts = np.zeros(self.per_decade * self.decades, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ---------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one observation (O(1))."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.lo:
            self.underflow += 1
            return
        index = int(self.per_decade * math.log10(value / self.lo))
        if index >= self.counts.size:
            self.overflow += 1
        else:
            self.counts[index] += 1

    # -- reading -----------------------------------------------------------
    def bucket_edge(self, index: int) -> float:
        """Upper edge of bucket ``index``."""
        return self.lo * 10.0 ** ((index + 1) / self.per_decade)

    def quantile(self, q: float) -> float:
        """Conservative quantile: upper edge of the bucket holding rank
        ``ceil(q * count)`` (0.0 on an empty histogram; exact ``max``
        for ranks in the overflow bucket or at ``q >= 1``)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = self.underflow
        if target <= seen:
            return min(self.lo, self.max)
        for index in range(self.counts.size):
            seen += int(self.counts[index])
            if target <= seen:
                return min(self.bucket_edge(index), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    @property
    def mean(self) -> float:
        """Exact mean of all recorded values (not bucket-approximated)."""
        return self.total / self.count if self.count else 0.0

    def merged_with(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Combine two histograms with identical bucket layouts."""
        if (
            self.lo != other.lo
            or self.per_decade != other.per_decade
            or self.decades != other.decades
        ):
            raise ConfigurationError("cannot merge differently-bucketed histograms")
        out = LatencyHistogram(self.lo, self.per_decade, self.decades)
        out.counts = self.counts + other.counts
        out.underflow = self.underflow + other.underflow
        out.overflow = self.overflow + other.overflow
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    # -- lossless JSON round-trip ------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe payload (sparse ``[index, count]`` pairs)."""
        nonzero: List[List[int]] = [
            [int(i), int(c)] for i, c in enumerate(self.counts.tolist()) if c
        ]
        return {
            "lo": self.lo,
            "per_decade": self.per_decade,
            "decades": self.decades,
            "buckets": nonzero,
            "underflow": self.underflow,
            "overflow": self.overflow,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencyHistogram":
        out = cls(
            lo=float(data["lo"]),
            per_decade=int(data["per_decade"]),
            decades=int(data["decades"]),
        )
        for index, value in data["buckets"]:
            out.counts[int(index)] = int(value)
        out.underflow = int(data["underflow"])
        out.overflow = int(data["overflow"])
        out.count = int(data["count"])
        out.total = float(data["total"])
        out.min = float(data["min"]) if data["min"] is not None else math.inf
        out.max = float(data["max"]) if data["max"] is not None else -math.inf
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.4g}, "
            f"p50={self.p50:.4g}, p99={self.p99:.4g})"
        )

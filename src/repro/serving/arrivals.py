"""Arrival processes: when each request enters the system.

Open-loop generators precompute the full arrival timestamp vector for a
trace (deterministic given the spec's seed), which keeps the event heap
small and makes the offered load independent of how fast the server
drains — the defining property of open-loop load, and the regime where
tail latency explodes near saturation.  The closed-loop mode has no
precomputed times; :func:`repro.serving.service.serve` issues each
client's next request only after its previous one completes plus an
exponential think time, so offered load self-limits at
``clients / (think + sojourn)``.

All randomness flows through :func:`numpy.random.default_rng` seeded
from the spec — no global RNG state, no wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalSpec",
    "poisson_arrivals",
    "mmpp_arrivals",
    "constant_arrivals",
    "generate_arrivals",
]

#: Open-loop process names (closed-loop is driven by the server loop).
OPEN_LOOP = ("poisson", "mmpp", "constant")


@dataclass(frozen=True)
class ArrivalSpec:
    """A reproducible description of the arrival process.

    Attributes
    ----------
    process:
        ``"poisson"`` (open-loop, exponential interarrivals at
        ``rate``), ``"mmpp"`` (on-off Markov-modulated Poisson:
        exponential dwell in an ON state at ``rate_on`` and an OFF
        state at ``rate_off``), ``"constant"`` (evenly spaced — useful
        for deterministic tests), or ``"closed"`` (``clients``
        closed-loop clients with exponential ``think`` time).
    rate:
        Mean offered request rate for the open-loop processes
        (requests per simulated time unit).
    seed:
        Seeds interarrival sampling (and think times in closed loop).
    rate_on / rate_off / mean_on / mean_off:
        MMPP knobs.  Defaults derive a bursty process with the same
        average ``rate``: ON bursts at ``2 * rate``, OFF silent, equal
        mean dwells — so MMPP and Poisson runs at the same ``rate``
        compare like for like.
    clients / think:
        Closed-loop population size and mean think time.
    """

    process: str = "poisson"
    rate: float = 0.01
    seed: int = 0
    rate_on: Optional[float] = None
    rate_off: Optional[float] = None
    mean_on: float = 1000.0
    mean_off: float = 1000.0
    clients: int = 1
    think: float = 0.0

    def __post_init__(self) -> None:
        if self.process not in OPEN_LOOP + ("closed",):
            raise ConfigurationError(
                f"unknown arrival process {self.process!r}; known: "
                f"{', '.join(OPEN_LOOP + ('closed',))}"
            )
        if self.process in OPEN_LOOP and self.rate <= 0:
            raise ConfigurationError(f"arrival rate must be > 0, got {self.rate}")
        if self.process == "mmpp" and (self.mean_on <= 0 or self.mean_off <= 0):
            raise ConfigurationError("mmpp dwell times must be > 0")
        if self.process == "closed":
            if self.clients < 1:
                raise ConfigurationError(
                    f"closed loop needs >= 1 client, got {self.clients}"
                )
            if self.think < 0:
                raise ConfigurationError(f"think time must be >= 0, got {self.think}")

    @property
    def open_loop(self) -> bool:
        return self.process in OPEN_LOOP

    def as_dict(self) -> Dict[str, Any]:
        """JSON-scalar form (content-addressed by the campaign layer)."""
        out: Dict[str, Any] = {"process": self.process, "seed": self.seed}
        if self.process in OPEN_LOOP:
            out["rate"] = self.rate
        if self.process == "mmpp":
            out.update(
                rate_on=self.rate_on,
                rate_off=self.rate_off,
                mean_on=self.mean_on,
                mean_off=self.mean_off,
            )
        if self.process == "closed":
            out.update(clients=self.clients, think=self.think)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown arrival spec fields: {sorted(unknown)}"
            )
        return cls(**dict(data))


def poisson_arrivals(n: int, rate: float, seed: int = 0) -> np.ndarray:
    """``n`` ascending Poisson-process arrival times at ``rate``."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x41525256]))
    gaps = rng.exponential(1.0 / rate, size=n)
    return np.cumsum(gaps)


def constant_arrivals(n: int, rate: float) -> np.ndarray:
    """Evenly spaced arrivals (period ``1/rate``), starting at ``1/rate``."""
    return (np.arange(n, dtype=np.float64) + 1.0) / rate


def mmpp_arrivals(
    n: int,
    rate_on: float,
    rate_off: float,
    mean_on: float,
    mean_off: float,
    seed: int = 0,
) -> np.ndarray:
    """On-off MMPP arrival times (thinning-free state-walk sampling).

    The process alternates exponential dwells in an ON state (Poisson
    at ``rate_on``) and an OFF state (``rate_off``, possibly 0); each
    interarrival is sampled by walking states until the next event
    lands inside the current dwell.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x4D4D5050]))
    times = np.empty(n, dtype=np.float64)
    t = 0.0
    state_on = True
    state_end = rng.exponential(mean_on)
    for i in range(n):
        while True:
            rate = rate_on if state_on else rate_off
            gap = rng.exponential(1.0 / rate) if rate > 0 else float("inf")
            if t + gap <= state_end:
                t += gap
                times[i] = t
                break
            # Next event falls past this dwell: jump to the state switch
            # and resample (memorylessness makes this exact).
            t = state_end
            state_on = not state_on
            state_end = t + rng.exponential(mean_on if state_on else mean_off)
    return times


def generate_arrivals(spec: ArrivalSpec, n: int) -> np.ndarray:
    """Arrival-time vector for ``n`` requests under an open-loop spec."""
    if not spec.open_loop:
        raise ConfigurationError(
            "closed-loop arrivals are driven by the serve loop, not pregenerated"
        )
    if spec.process == "poisson":
        return poisson_arrivals(n, spec.rate, spec.seed)
    if spec.process == "constant":
        return constant_arrivals(n, spec.rate)
    rate_on = spec.rate_on if spec.rate_on is not None else 2.0 * spec.rate
    if spec.rate_off is not None:
        rate_off = spec.rate_off
    else:
        # Preserve the requested average rate given the other knobs:
        # avg = (rate_on*mean_on + rate_off*mean_off) / (mean_on+mean_off).
        rate_off = max(
            0.0,
            (spec.rate * (spec.mean_on + spec.mean_off) - rate_on * spec.mean_on)
            / spec.mean_off,
        )
    return mmpp_arrivals(
        n, rate_on, rate_off, spec.mean_on, spec.mean_off, spec.seed
    )

"""Request-level serving simulation: from miss ratios to tail latency.

The offline layers answer *"how many misses"*; this package answers
*"what latency does a user see at a given offered load"*.  It is a
deterministic discrete-event simulator — seeded event heap, seeded
NumPy generators, no wall clock — so serving results content-address
exactly like offline cells.  See ``docs/serving.md`` for the model.
"""

from repro.serving.arrivals import (
    ArrivalSpec,
    constant_arrivals,
    generate_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
)
from repro.serving.events import EventLoop
from repro.serving.histograms import LatencyHistogram
from repro.serving.service import (
    ServiceModel,
    ServingConfig,
    ServingResult,
    serve,
    serve_policy,
    serving_cell,
)

__all__ = [
    "ArrivalSpec",
    "EventLoop",
    "LatencyHistogram",
    "ServiceModel",
    "ServingConfig",
    "ServingResult",
    "constant_arrivals",
    "generate_arrivals",
    "mmpp_arrivals",
    "poisson_arrivals",
    "serve",
    "serve_policy",
    "serving_cell",
]

"""The deterministic discrete-event core: a seeded virtual clock.

There is no wall clock anywhere in :mod:`repro.serving` — simulated
time only advances when the loop pops the next event, so two runs with
the same inputs replay the exact same event sequence bit-for-bit.
Events at equal timestamps are ordered by insertion sequence number
(FIFO among ties), which is what makes the tie-breaking deterministic
rather than heap-implementation-defined.

The loop enforces the monotone-time invariant itself: scheduling an
event before ``now`` raises :class:`~repro.errors.ConfigurationError`
instead of silently time-travelling, and ``tests/
test_serving_invariants.py`` property-tests that popped timestamps
never decrease under random schedules.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["EventLoop"]


class EventLoop:
    """A minimal monotone event heap.

    Events are ``(time, seq, tag, payload)`` tuples; ``run`` pops them
    in ``(time, seq)`` order and hands each to the caller-supplied
    handler.  The loop never sleeps — ``time`` is an abstract float in
    whatever unit the service model uses.
    """

    __slots__ = ("_heap", "_seq", "now", "processed")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, Any]] = []
        self._seq = 0
        #: Current simulated time (the timestamp of the last popped event).
        self.now = 0.0
        #: Number of events processed so far.
        self.processed = 0

    def schedule(self, time: float, tag: str, payload: Any = None) -> int:
        """Enqueue an event at absolute simulated ``time``.

        Returns the event's sequence number (its deterministic
        tiebreak among same-time events).
        """
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule event {tag!r} at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (time, seq, tag, payload))
        return seq

    def __len__(self) -> int:
        return len(self._heap)

    def pop(self) -> Optional[Tuple[float, str, Any]]:
        """Advance the clock to the next event; ``None`` when drained."""
        if not self._heap:
            return None
        time, _, tag, payload = heapq.heappop(self._heap)
        self.now = time
        self.processed += 1
        return time, tag, payload

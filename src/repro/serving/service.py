"""Request-level serving: from cache decisions to request latency.

This is the layer ROADMAP item 1 asks for: the offline simulator
answers *"what is the miss ratio"*; :func:`serve` answers *"what does
a user feel at this offered load"*.  Every policy plugs in unchanged —
the serving loop drives the same referee :class:`~repro.core.engine.
Engine` (validation, spatial/temporal taxonomy, ``on_access``
contract) that :func:`~repro.core.engine.simulate` uses, so the cache
decision stream is exactly the offline one; serving only adds *time*:

* **Arrivals** (open-loop Poisson / bursty MMPP / constant, or a
  closed-loop client population) timestamp each trace request.
* **Service**: a hit costs ``t_hit``; a miss additionally pays the
  backing-store delay ``t_miss`` **once** plus ``t_item`` per *extra*
  loaded item — a spatial load amortizes one backing fetch across the
  loaded subset, which is precisely the paper's granularity-change
  payoff translated into latency.  Spatial hits then cost only
  ``t_hit``: the fetch they would have needed was already paid for.
* **Queueing**: bounded server ``concurrency`` with a FIFO (default)
  or shortest-expected-job-first queue, optional admission bound
  (``queue_limit``) and queue-wait ``timeout``.

Determinism: simulated time comes from the seeded event heap
(:mod:`repro.serving.events`) and seeded NumPy generators only — no
wall clock anywhere — so a (policy, trace, config) triple maps to a
bit-identical :class:`ServingResult`, including histogram payloads,
which is what lets the campaign layer content-address serving cells.

Conformance invariant (pinned by ``tests/test_serving_conformance.py``):
with the FIFO queue and no drops (the defaults), requests start
service in arrival order, so the hit/miss/spatial stream — and the
embedded :class:`~repro.types.SimResult` — is bit-identical to
``simulate()`` on the same policy and trace.  The SJF queue and drop
knobs deliberately trade that equivalence for scheduling realism.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.engine import Engine
from repro.core.trace import Trace
from repro.errors import ConfigurationError, ProtocolViolation
from repro.serving.arrivals import ArrivalSpec, generate_arrivals
from repro.serving.events import EventLoop
from repro.serving.histograms import LatencyHistogram
from repro.telemetry import spans
from repro.types import HitKind, SimResult

__all__ = [
    "ServiceModel",
    "ServingConfig",
    "ServingResult",
    "serve",
    "serve_policy",
    "serving_cell",
]

#: HitKind → per-class histogram key (stable across payloads).
KIND_KEYS: Dict[HitKind, str] = {
    HitKind.MISS: "miss",
    HitKind.TEMPORAL_HIT: "temporal",
    HitKind.SPATIAL_HIT: "spatial",
}


@dataclass(frozen=True)
class ServiceModel:
    """Per-request service-time model (simulated time units).

    ``t_hit`` is the base cost every request pays (lookup + response).
    A miss adds ``t_miss`` — one backing-store round trip regardless of
    how many items the policy chose to load — plus ``t_item`` per
    loaded item beyond the requested one (transfer cost of the spatial
    subset).  ``dist="exponential"`` replaces the deterministic time
    with an exponential draw of that mean (the M/M/1-testable mode);
    ``"deterministic"`` is the default.

    ``size_dist="etc"`` makes the per-item transfer cost *variable*:
    every item gets a deterministic value size from the Facebook-ETC
    Generalized Pareto fit (:func:`repro.workloads.etc_item_sizes`,
    seeded by ``size_seed``, parameters ``size_scale``/``size_shape``),
    normalized to mean 1.0 so ``t_item`` keeps its meaning as the
    *average* per-item transfer time — a miss that side-loads
    heavy-tailed values pays proportionally more.  The default
    ``"none"`` preserves the fixed-cost model bit-for-bit *and* its
    :meth:`as_dict` payload (size fields are omitted), so existing
    serving cell hashes are untouched.
    """

    t_hit: float = 1.0
    t_miss: float = 100.0
    t_item: float = 0.0
    dist: str = "deterministic"
    seed: int = 0
    size_dist: str = "none"
    size_seed: int = 0
    size_scale: float = 214.476
    size_shape: float = 0.348238

    def __post_init__(self) -> None:
        if self.t_hit < 0 or self.t_miss < 0 or self.t_item < 0:
            raise ConfigurationError("service times must be >= 0")
        if self.t_hit + self.t_miss <= 0:
            raise ConfigurationError("t_hit + t_miss must be > 0")
        if self.dist not in ("deterministic", "exponential"):
            raise ConfigurationError(
                f"service dist must be 'deterministic' or 'exponential', "
                f"got {self.dist!r}"
            )
        if self.size_dist not in ("none", "etc"):
            raise ConfigurationError(
                f"size_dist must be 'none' or 'etc', got {self.size_dist!r}"
            )
        if self.size_scale <= 0 or self.size_shape <= 0:
            raise ConfigurationError("size_scale and size_shape must be > 0")

    def mean_time(self, kind: HitKind, loaded: int) -> float:
        """Mean service time for one classified access."""
        if kind is HitKind.MISS:
            return self.t_hit + self.t_miss + self.t_item * max(0, loaded - 1)
        return self.t_hit

    def sample(self, kind: HitKind, loaded: int, rng: np.random.Generator) -> float:
        mean = self.mean_time(kind, loaded)
        if self.dist == "deterministic":
            return mean
        return float(rng.exponential(mean)) if mean > 0 else 0.0

    def item_weights(self, universe: int) -> Optional[np.ndarray]:
        """Per-item transfer weights (mean 1.0), or ``None`` for fixed.

        With ``size_dist="etc"`` the weight of item ``i`` is its ETC
        value size divided by the universe's mean size, so
        ``t_item * weight`` is that item's transfer time and the
        *expected* extra-item cost matches the fixed model's.
        """
        if self.size_dist == "none":
            return None
        from repro.workloads.etc import etc_item_sizes

        sizes = etc_item_sizes(
            universe,
            seed=self.size_seed,
            scale=self.size_scale,
            shape=self.size_shape,
        )
        return sizes / sizes.mean()

    def sample_weighted(
        self, kind: HitKind, extra_weight: float, rng: np.random.Generator
    ) -> float:
        """Like :meth:`sample`, with the extra-item cost pre-weighted."""
        if kind is HitKind.MISS:
            mean = self.t_hit + self.t_miss + self.t_item * extra_weight
        else:
            mean = self.t_hit
        if self.dist == "deterministic":
            return mean
        return float(rng.exponential(mean)) if mean > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "t_hit": self.t_hit,
            "t_miss": self.t_miss,
            "t_item": self.t_item,
            "dist": self.dist,
            "seed": self.seed,
        }
        # Size-distribution keys only appear when active: legacy
        # fixed-cost payloads (and their campaign cell hashes) must
        # stay byte-identical to the pre-size-model era.
        if self.size_dist != "none":
            out["size_dist"] = self.size_dist
            out["size_seed"] = self.size_seed
            out["size_scale"] = self.size_scale
            out["size_shape"] = self.size_shape
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceModel":
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown service model fields: {sorted(unknown)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class ServingConfig:
    """Everything that shapes request latency besides the policy/trace.

    The dict form (:meth:`as_dict`) is JSON-scalar and canonical — the
    campaign layer hashes it into the cell's content address, so any
    arrival/service/queue change recomputes cells instead of reusing
    stale ones.
    """

    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    service: ServiceModel = field(default_factory=ServiceModel)
    concurrency: int = 1
    queue: str = "fifo"
    queue_limit: Optional[int] = None
    timeout: Optional[float] = None
    hist_lo: float = 1e-3
    hist_per_decade: int = 20
    hist_decades: int = 12

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.queue not in ("fifo", "sjf"):
            raise ConfigurationError(
                f"queue must be 'fifo' or 'sjf', got {self.queue!r}"
            )
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")

    def new_histogram(self) -> LatencyHistogram:
        return LatencyHistogram(
            lo=self.hist_lo,
            per_decade=self.hist_per_decade,
            decades=self.hist_decades,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "arrival": self.arrival.as_dict(),
            "service": self.service.as_dict(),
            "concurrency": self.concurrency,
            "queue": self.queue,
            "queue_limit": self.queue_limit,
            "timeout": self.timeout,
            "hist_lo": self.hist_lo,
            "hist_per_decade": self.hist_per_decade,
            "hist_decades": self.hist_decades,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingConfig":
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown serving config fields: {sorted(unknown)}"
            )
        payload = dict(data)
        if "arrival" in payload:
            payload["arrival"] = ArrivalSpec.from_dict(payload["arrival"])
        if "service" in payload:
            payload["service"] = ServiceModel.from_dict(payload["service"])
        return cls(**payload)


@dataclass
class ServingResult:
    """One serving run: cache statistics plus the latency story.

    ``sim`` is the referee's :class:`~repro.types.SimResult` — with the
    default FIFO/no-drop config it is bit-identical to what
    ``simulate()`` returns for the same policy/trace.  Everything else
    is time: conservation counters (``arrivals = completions +
    dropped_admission + dropped_timeout`` once the loop drains),
    latency/wait histograms with per-class breakdowns, and the
    Little's-law integrals (``area_in_system`` is ∫N(t)dt, so
    ``little_l == little_lambda * little_w`` exactly on no-drop runs).
    """

    sim: SimResult
    serving: Dict[str, Any]
    arrivals: int = 0
    completions: int = 0
    dropped_admission: int = 0
    dropped_timeout: int = 0
    duration: float = 0.0
    sojourn_sum: float = 0.0
    wait_sum: float = 0.0
    service_sum: float = 0.0
    area_in_system: float = 0.0
    area_busy: float = 0.0
    queue_peak: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    latency_by_kind: Dict[str, LatencyHistogram] = field(default_factory=dict)
    wait: LatencyHistogram = field(default_factory=LatencyHistogram)

    # -- headline latency --------------------------------------------------
    @property
    def p50(self) -> float:
        return self.latency.p50

    @property
    def p99(self) -> float:
        return self.latency.p99

    @property
    def p999(self) -> float:
        return self.latency.p999

    @property
    def mean_latency(self) -> float:
        return self.sojourn_sum / self.completions if self.completions else 0.0

    @property
    def mean_wait(self) -> float:
        return self.wait_sum / self.completions if self.completions else 0.0

    @property
    def mean_service(self) -> float:
        return self.service_sum / self.completions if self.completions else 0.0

    # -- load / conservation ----------------------------------------------
    @property
    def dropped(self) -> int:
        return self.dropped_admission + self.dropped_timeout

    @property
    def drop_ratio(self) -> float:
        return self.dropped / self.arrivals if self.arrivals else 0.0

    @property
    def offered_rate(self) -> Optional[float]:
        """Configured open-loop rate (``None`` for closed loop)."""
        return self.serving.get("arrival", {}).get("rate")

    @property
    def throughput(self) -> float:
        """Achieved completions per simulated time unit."""
        return self.completions / self.duration if self.duration > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Busy-server time over total server time."""
        denom = self.duration * int(self.serving.get("concurrency", 1))
        return self.area_busy / denom if denom > 0 else 0.0

    # -- Little's law -------------------------------------------------------
    @property
    def little_l(self) -> float:
        """Time-average number of requests in the system (∫N dt / T)."""
        return self.area_in_system / self.duration if self.duration > 0 else 0.0

    @property
    def little_lambda(self) -> float:
        return self.throughput

    @property
    def little_w(self) -> float:
        return self.mean_latency

    # -- interchange -------------------------------------------------------
    def as_row(self) -> Dict[str, Any]:
        """Flat row for tables/sweeps: cache columns + latency columns."""
        row = self.sim.as_row()
        arrival = self.serving.get("arrival", {})
        row.update(
            {
                "arrival_process": arrival.get("process", ""),
                "offered_rate": self.offered_rate,
                "concurrency": self.serving.get("concurrency", 1),
                "arrivals": self.arrivals,
                "completions": self.completions,
                "dropped_admission": self.dropped_admission,
                "dropped_timeout": self.dropped_timeout,
                "duration": self.duration,
                "throughput": self.throughput,
                "utilization": self.utilization,
                "mean_latency": self.mean_latency,
                "mean_wait": self.mean_wait,
                "p50": self.p50,
                "p99": self.p99,
                "p999": self.p999,
            }
        )
        for key, hist in sorted(self.latency_by_kind.items()):
            row[f"p99_{key}"] = hist.p99
            row[f"mean_{key}"] = hist.mean
        return row

    def fields(self) -> Dict[str, Any]:
        """Lossless JSON-safe payload (campaign-store interchange).

        The ``"kind": "serving"`` marker is what
        :func:`repro.campaign.runner.result_from_fields` dispatches on;
        top-level ``accesses`` feeds the executor's progress counters.
        """
        from repro.campaign.runner import result_fields

        return {
            "kind": "serving",
            "accesses": self.sim.accesses,
            "sim": result_fields(self.sim),
            "serving": dict(self.serving),
            "arrivals": self.arrivals,
            "completions": self.completions,
            "dropped_admission": self.dropped_admission,
            "dropped_timeout": self.dropped_timeout,
            "duration": self.duration,
            "sojourn_sum": self.sojourn_sum,
            "wait_sum": self.wait_sum,
            "service_sum": self.service_sum,
            "area_in_system": self.area_in_system,
            "area_busy": self.area_busy,
            "queue_peak": self.queue_peak,
            "latency": self.latency.as_dict(),
            "latency_by_kind": {
                key: hist.as_dict()
                for key, hist in sorted(self.latency_by_kind.items())
            },
            "wait": self.wait.as_dict(),
        }

    @classmethod
    def from_fields(cls, data: Mapping[str, Any]) -> "ServingResult":
        from repro.campaign.runner import result_from_fields

        return cls(
            sim=result_from_fields(data["sim"]),
            serving=dict(data["serving"]),
            arrivals=int(data["arrivals"]),
            completions=int(data["completions"]),
            dropped_admission=int(data["dropped_admission"]),
            dropped_timeout=int(data["dropped_timeout"]),
            duration=float(data["duration"]),
            sojourn_sum=float(data["sojourn_sum"]),
            wait_sum=float(data["wait_sum"]),
            service_sum=float(data["service_sum"]),
            area_in_system=float(data["area_in_system"]),
            area_busy=float(data["area_busy"]),
            queue_peak=int(data["queue_peak"]),
            latency=LatencyHistogram.from_dict(data["latency"]),
            latency_by_kind={
                key: LatencyHistogram.from_dict(payload)
                for key, payload in data["latency_by_kind"].items()
            },
            wait=LatencyHistogram.from_dict(data["wait"]),
        )


class _ServeState:
    """Mutable loop state (kept off the hot path's attribute lookups)."""

    __slots__ = (
        "queue",
        "busy",
        "n_system",
        "last_t",
        "area_system",
        "area_busy",
        "queue_peak",
    )

    def __init__(self) -> None:
        self.queue: deque = deque()
        self.busy = 0
        self.n_system = 0
        self.last_t = 0.0
        self.area_system = 0.0
        self.area_busy = 0.0
        self.queue_peak = 0

    def advance(self, now: float) -> None:
        """Accumulate the Little's-law integrals up to ``now``."""
        dt = now - self.last_t
        if dt > 0:
            self.area_system += self.n_system * dt
            self.area_busy += self.busy * dt
            self.last_t = now


def serve(
    policy,
    trace: Trace,
    config: Optional[ServingConfig] = None,
    *,
    validate: bool = True,
    engine=None,
    on_access: Optional[Callable[[int, int, HitKind], None]] = None,
    on_event: Optional[Callable[[str, float, int], None]] = None,
    recorder=None,
) -> ServingResult:
    """Serve ``trace`` through ``policy`` under a serving config.

    Parameters mirror :func:`~repro.core.engine.simulate` where they
    overlap: ``validate`` referee-checks every cache action,
    ``on_access(pos, item, kind)`` observes the classified access
    stream (same contract; ``pos`` is the trace position), and an
    optional telemetry ``recorder`` sees every access plus a
    ``"serve"`` phase.  ``on_event(name, time, index)`` additionally
    observes the serving events (``arrival`` / ``start`` / ``done`` /
    ``drop_admission`` / ``drop_timeout``) in simulated-time order —
    the hook the invariant tests use to check monotone time.

    ``engine`` dispatches the cache stream through a pre-built engine
    instead of constructing one: anything exposing the referee
    :class:`~repro.core.engine.Engine` surface the loop touches —
    ``access(item)``, a live ``result`` :class:`SimResult`, and a
    ``resident`` membership view — works; this is how
    :func:`repro.cluster.serving_bridge.serve_cluster` routes requests
    across an N-shard cluster.  With ``engine`` given, ``policy`` is
    ignored (pass ``None``) and the caller owns offline preparation.

    Returns a :class:`ServingResult`; the run always drains (every
    admitted request completes or is dropped before the loop ends).
    """
    config = config if config is not None else ServingConfig()
    if engine is None:
        if trace.mapping is not policy.mapping and (
            trace.mapping.universe != policy.mapping.universe
            or trace.mapping.max_block_size != policy.mapping.max_block_size
        ):
            raise ProtocolViolation(
                "trace and policy use different block mappings"
            )
        if policy.is_offline:
            policy.prepare(trace)
        engine = Engine(policy, trace.mapping, validate=validate, recorder=recorder)
    engine.result.metadata.update(
        {k: v for k, v in trace.metadata.items() if isinstance(v, (str, int, float))}
    )
    items: List[int] = trace.items.tolist()
    n = len(items)
    model = config.service
    item_weights = model.item_weights(trace.mapping.universe)
    service_rng = np.random.default_rng(
        np.random.SeedSequence([model.seed, 0x53455256])
    )
    think_rng = np.random.default_rng(
        np.random.SeedSequence([config.arrival.seed, 0x434C4F53])
    )

    result = ServingResult(
        sim=engine.result,
        serving=config.as_dict(),
        latency=config.new_histogram(),
        latency_by_kind={key: config.new_histogram() for key in KIND_KEYS.values()},
        wait=config.new_histogram(),
    )
    loop = EventLoop()
    state = _ServeState()
    arrival_time: List[float] = [0.0] * n
    kinds: List[Optional[HitKind]] = [None] * n
    closed = not config.arrival.open_loop
    open_times: Optional[np.ndarray] = None

    def _sample_think() -> float:
        think = config.arrival.think
        if think <= 0:
            return 0.0
        return float(think_rng.exponential(think))

    phase = (
        recorder.phase("serve") if recorder is not None else contextlib.nullcontext()
    )
    with spans.span("serve", policy=result.sim.policy, requests=n):
        with spans.span("serve.arrivals", process=config.arrival.process):
            if not closed and n:
                open_times = generate_arrivals(config.arrival, n)
        with phase:
            _run_loop(
                loop,
                state,
                config,
                engine,
                items,
                arrival_time,
                kinds,
                result,
                model,
                service_rng,
                _sample_think,
                open_times,
                on_access,
                on_event,
                item_weights,
            )
    result.duration = state.last_t
    result.area_in_system = state.area_system
    result.area_busy = state.area_busy
    result.queue_peak = state.queue_peak
    if recorder is not None:
        recorder.finalize(engine.result)
    return result


def _run_loop(
    loop: EventLoop,
    state: _ServeState,
    config: ServingConfig,
    engine: Engine,
    items: List[int],
    arrival_time: List[float],
    kinds: List[Optional[HitKind]],
    result: ServingResult,
    model: ServiceModel,
    service_rng: np.random.Generator,
    sample_think: Callable[[], float],
    open_times: Optional[np.ndarray],
    on_access: Optional[Callable[[int, int, HitKind], None]],
    on_event: Optional[Callable[[str, float, int], None]],
    item_weights: Optional[np.ndarray] = None,
) -> None:
    """The event loop body (split out to keep :func:`serve` readable)."""
    n = len(items)
    closed = not config.arrival.open_loop
    # Closed loop: clients are interchangeable consumers of "the next
    # workload request", so the trace cursor is assigned when an
    # arrival is *processed*, not when it is scheduled — think-time
    # randomness can reorder issue events, and assigning at processing
    # time keeps cache accesses in trace order (the conformance
    # invariant) regardless.  ``issued`` counts scheduled arrivals so
    # exactly ``n`` ever enter the system.
    cursor = 0
    issued = 0

    def start_service(index: int, wait: float) -> None:
        state.busy += 1
        loaded_before = engine.result.loaded_items
        kind = engine.access(items[index])
        kinds[index] = kind
        if on_access is not None:
            on_access(index, items[index], kind)
        if item_weights is None:
            loaded = engine.result.loaded_items - loaded_before
            service_time = model.sample(kind, loaded, service_rng)
        else:
            # Size-aware transfer cost: weigh each side-loaded item by
            # its (normalized) value size instead of counting it as 1.
            extra = 0.0
            outcome = engine.last_outcome
            if kind is HitKind.MISS and outcome is not None:
                requested = items[index]
                for loaded_item in outcome.loaded:
                    if loaded_item != requested:
                        extra += float(item_weights[loaded_item])
            service_time = model.sample_weighted(kind, extra, service_rng)
        result.wait_sum += wait
        result.wait.record(wait)
        result.service_sum += service_time
        if on_event is not None:
            on_event("start", loop.now, index)
        loop.schedule(loop.now + service_time, "done", index)

    def expected_service(index: int) -> float:
        # SJF key: peek shadow residency (read-only) for the likely kind.
        if items[index] in engine.resident:
            return model.t_hit
        return model.t_hit + model.t_miss

    def next_from_queue() -> Tuple[int, float]:
        if config.queue == "fifo":
            return state.queue.popleft()
        best_pos = 0
        best_key: Optional[Tuple[float, float]] = None
        for pos, (index, enq_t) in enumerate(state.queue):
            key = (expected_service(index), enq_t, index)
            if best_key is None or key < best_key:
                best_key = key
                best_pos = pos
        index, enq_t = state.queue[best_pos]
        del state.queue[best_pos]
        return index, enq_t

    def drain_queue() -> None:
        while state.queue and state.busy < config.concurrency:
            index, enq_t = next_from_queue()
            wait = loop.now - enq_t
            if config.timeout is not None and wait > config.timeout:
                result.dropped_timeout += 1
                state.n_system -= 1
                if on_event is not None:
                    on_event("drop_timeout", loop.now, index)
                continue
            start_service(index, wait)

    def issue_closed_arrival() -> None:
        nonlocal issued
        if issued < n:
            issued += 1
            loop.schedule(loop.now + sample_think(), "arr", None)

    def handle_arrival(payload: Optional[int]) -> None:
        nonlocal cursor
        state.advance(loop.now)
        if closed:
            index = cursor
            cursor += 1
        else:
            assert payload is not None
            index = payload
        arrival_time[index] = loop.now
        result.arrivals += 1
        if on_event is not None:
            on_event("arrival", loop.now, index)
        # Next arrival is scheduled lazily: keeps the heap O(in-flight).
        if not closed and index + 1 < n:
            assert open_times is not None
            loop.schedule(float(open_times[index + 1]), "arr", index + 1)
        if (
            config.queue_limit is not None
            and state.busy >= config.concurrency
            and len(state.queue) >= config.queue_limit
        ):
            result.dropped_admission += 1
            if on_event is not None:
                on_event("drop_admission", loop.now, index)
            if closed:
                issue_closed_arrival()
            return
        state.n_system += 1
        if state.busy < config.concurrency:
            start_service(index, 0.0)
        else:
            state.queue.append((index, loop.now))
            if len(state.queue) > state.queue_peak:
                state.queue_peak = len(state.queue)

    def handle_done(index: int) -> None:
        state.advance(loop.now)
        state.busy -= 1
        state.n_system -= 1
        result.completions += 1
        sojourn = loop.now - arrival_time[index]
        result.sojourn_sum += sojourn
        result.latency.record(sojourn)
        kind = kinds[index]
        assert kind is not None
        result.latency_by_kind[KIND_KEYS[kind]].record(sojourn)
        if on_event is not None:
            on_event("done", loop.now, index)
        drain_queue()
        if closed:
            issue_closed_arrival()

    # Seed the loop.
    if n:
        if closed:
            for _ in range(min(config.arrival.clients, n)):
                issued += 1
                loop.schedule(sample_think(), "arr", None)
        else:
            assert open_times is not None
            loop.schedule(float(open_times[0]), "arr", 0)

    with spans.span("serve.loop", requests=n):
        while True:
            event = loop.pop()
            if event is None:
                break
            _, tag, payload = event
            if tag == "arr":
                handle_arrival(payload)
            else:
                handle_done(payload)


def serve_policy(
    policy: str,
    capacity: int,
    trace: Trace,
    config: Optional[ServingConfig] = None,
    **policy_kwargs: Any,
) -> ServingResult:
    """Build a registry policy and :func:`serve` the trace through it."""
    from repro.policies import make_policy

    instance = make_policy(policy, capacity, trace.mapping, **policy_kwargs)
    return serve(instance, trace, config)


def serving_cell(
    policy: str,
    capacity: int,
    trace: Trace,
    serving: Mapping[str, Any],
    **policy_kwargs: Any,
) -> Dict[str, Any]:
    """Picklable sweep worker: one (policy, capacity, trace, serving) cell.

    The serving counterpart of
    :func:`repro.analysis.sweep.simulate_cell`: ``serving`` is a plain
    config dict (:meth:`ServingConfig.as_dict` form, so it pickles and
    hashes), and the row is :meth:`ServingResult.as_row`.  Grids over
    arrival rate become grids over ``serving`` dicts.
    """
    config = ServingConfig.from_dict(serving)
    return serve_policy(
        policy, capacity, trace, config, **policy_kwargs
    ).as_row()

"""Policy interface and registry.

A *policy* owns the cache content decisions: on each access it reports
hit/miss and, on a miss, decides which subset of the block to load
(Definition 1 allows any subset containing the requested item) and
which resident items to evict.  The engine (:mod:`repro.core.engine`)
re-validates every decision, so policies here concentrate on strategy,
not bookkeeping safety.

Policies register themselves under a short name via
:func:`register_policy`, which lets the CLI, sweep harness, and benches
construct them from strings.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Type

from repro.core.mapping import BlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.types import AccessOutcome, ItemId

__all__ = [
    "Policy",
    "OfflinePolicy",
    "register_policy",
    "policy_names",
    "make_policy",
]


class Policy(abc.ABC):
    """Base class for online replacement policies in the GC model.

    Parameters
    ----------
    capacity:
        Cache size ``k`` in items.
    mapping:
        The item→block partition the cache operates against.
    """

    #: Short registry name, set by subclasses.
    name: str = "abstract"
    #: Whether the policy needs the full trace in advance.
    is_offline: bool = False

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.mapping = mapping

    # -- required API ----------------------------------------------------------
    @abc.abstractmethod
    def access(self, item: ItemId) -> AccessOutcome:
        """Serve one request and return the resulting action."""

    @abc.abstractmethod
    def contains(self, item: ItemId) -> bool:
        """Whether ``item`` is currently resident.

        Adversaries (§4) interrogate this to construct worst-case
        traces; it must agree with the engine's shadow state at all
        times.
        """

    @abc.abstractmethod
    def resident_items(self) -> FrozenSet[ItemId]:
        """A snapshot of all resident items."""

    # -- optional hooks ----------------------------------------------------------
    def prepare(self, trace: Trace) -> None:
        """Receive the full trace before simulation (offline policies)."""

    def reset(self) -> None:
        """Restore the empty-cache initial state.

        The default re-runs ``__init__`` with the stored configuration;
        subclasses with extra constructor arguments must override.
        """
        self.__init__(self.capacity, self.mapping)  # type: ignore[misc]

    # -- helpers ----------------------------------------------------------------
    def _assert_known(self, item: ItemId) -> None:
        self.mapping.validate_item(item)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(k={self.capacity})"


class OfflinePolicy(Policy):
    """Base for clairvoyant policies; ``prepare`` must be called first."""

    is_offline = True

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._prepared = False

    def prepare(self, trace: Trace) -> None:
        self._prepared = True

    def _require_prepared(self) -> None:
        if not self._prepared:
            raise ConfigurationError(
                f"{type(self).__name__} is offline: call prepare(trace) "
                "before access()"
            )


_REGISTRY: Dict[str, Type[Policy]] = {}


def register_policy(cls: Type[Policy]) -> Type[Policy]:
    """Class decorator: register ``cls`` under ``cls.name``."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise ConfigurationError(f"{cls.__name__} must define a registry name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate policy name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def policy_names() -> Iterable[str]:
    """All registered policy names, sorted."""
    return sorted(_REGISTRY)


def policy_class(name: str) -> Optional[Type[Policy]]:
    """The registered class for ``name``, or ``None`` if unknown."""
    return _REGISTRY.get(name)


def make_policy(
    name: str, capacity: int, mapping: BlockMapping, **kwargs
) -> Policy:
    """Instantiate a registered policy by name."""
    try:
        cls: Callable[..., Policy] = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {', '.join(policy_names())}"
        ) from None
    return cls(capacity, mapping, **kwargs)

"""Item Cache baselines with recency-based eviction: LRU, MRU, FIFO.

``item-lru`` is the canonical traditional cache the paper compares
against: Sleator–Tarjan show it is ``k/(k-h+1)``-competitive in the
traditional model, while Theorem 2 shows that in the GC model every
item cache — LRU included — loses an extra ≈B factor.
"""

from __future__ import annotations

from repro.core.mapping import BlockMapping
from repro.policies.base import register_policy
from repro.policies.item_base import ItemPolicyBase
from repro.structs.linked_lru import LinkedLRU
from repro.types import ItemId

__all__ = ["ItemLRU", "ItemMRU", "ItemFIFO"]


@register_policy
class ItemLRU(ItemPolicyBase):
    """Least-Recently-Used item cache (the traditional baseline)."""

    name = "item-lru"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._order = LinkedLRU()

    def _on_hit(self, item: ItemId) -> None:
        self._order.touch(item)

    def _on_load(self, item: ItemId) -> None:
        self._order.insert_mru(item)

    def _choose_victim(self) -> ItemId:
        key, _ = self._order.pop_lru()
        return key


@register_policy
class ItemMRU(ItemPolicyBase):
    """Most-Recently-Used eviction — strong on cyclic scans.

    Included as a deliberately contrarian item policy for the
    adversary benches (Theorem 2 applies to it as well).
    """

    name = "item-mru"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._order = LinkedLRU()

    def _on_hit(self, item: ItemId) -> None:
        self._order.touch(item)

    def _on_load(self, item: ItemId) -> None:
        self._order.insert_mru(item)

    def _choose_victim(self) -> ItemId:
        key, _ = self._order.pop_mru()
        return key


@register_policy
class ItemFIFO(ItemPolicyBase):
    """First-In-First-Out item cache (no recency update on hits)."""

    name = "item-fifo"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._order = LinkedLRU()

    def _on_hit(self, item: ItemId) -> None:
        # FIFO ignores hits: insertion order alone decides eviction.
        pass

    def _on_load(self, item: ItemId) -> None:
        self._order.insert_mru(item)

    def _choose_victim(self) -> ItemId:
        key, _ = self._order.pop_lru()
        return key

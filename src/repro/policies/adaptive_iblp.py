"""Adaptive-split IBLP: ghost-list tuning of the layer boundary.

§5.3 shows IBLP's optimal split depends on the unknown comparison size
``h``, and Figure 6 shows a fixed split degrades badly away from its
design point.  This extension (beyond the paper, in the spirit of its
"unknown optimal size" discussion) adapts the split online with the
ghost-list technique of ARC [Megiddo & Modha 2003]:

* a bounded **item ghost** remembers items recently evicted from the
  item layer — a miss found there means a larger item layer would have
  hit (temporal pressure → grow ``i``);
* a bounded **block ghost** remembers blocks recently evicted from the
  block layer — a miss whose block is found there means a larger block
  layer would have hit (spatial pressure → shrink ``i``).

The boundary moves by ``B`` items per spatial signal and 1 per temporal
signal (one block trades against B items), clamped to ``[0, k]``;
layers shed entries lazily when the boundary moves.  On stationary
workloads the split converges toward the better regime, and on phase
changes it re-adapts — see ``tests/test_adaptive_iblp.py`` and the
ablation bench.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.core.mapping import BlockMapping
from repro.errors import ConfigurationError
from repro.policies.base import Policy, register_policy
from repro.structs.linked_lru import LinkedLRU
from repro.types import AccessOutcome, BlockId, ItemId

__all__ = ["AdaptiveIBLP"]


@register_policy
class AdaptiveIBLP(Policy):
    """IBLP with an ARC-style self-tuning layer boundary."""

    name = "iblp-adaptive"

    def __init__(
        self,
        capacity: int,
        mapping: BlockMapping,
        initial_item_fraction: float = 0.5,
        ghost_factor: float = 1.0,
    ) -> None:
        super().__init__(capacity, mapping)
        if not 0.0 <= initial_item_fraction <= 1.0:
            raise ConfigurationError(
                f"initial_item_fraction must be in [0, 1], got "
                f"{initial_item_fraction}"
            )
        if ghost_factor <= 0:
            raise ConfigurationError(
                f"ghost_factor must be positive, got {ghost_factor}"
            )
        self.initial_item_fraction = initial_item_fraction
        self.ghost_factor = ghost_factor
        #: the adaptive target for the item layer size (float; floored
        #: when enforcing)
        self._target_i = capacity * initial_item_fraction
        self._items = LinkedLRU()  # item layer: item -> None
        self._blocks = LinkedLRU()  # block layer: block -> tuple(items)
        self._block_occupancy = 0
        self._refcount: dict[ItemId, int] = {}
        self._ghost_items = LinkedLRU()  # item -> None
        self._ghost_blocks = LinkedLRU()  # block -> None
        self._ghost_item_cap = max(1, int(capacity * ghost_factor))
        self._ghost_block_cap = max(
            1, int(capacity * ghost_factor) // mapping.max_block_size
        )

    def reset(self) -> None:
        self.__init__(
            self.capacity,
            self.mapping,
            initial_item_fraction=self.initial_item_fraction,
            ghost_factor=self.ghost_factor,
        )

    # -- introspection ---------------------------------------------------
    @property
    def item_layer_target(self) -> int:
        """Current adaptive item-layer size (floored)."""
        return int(self._target_i)

    def item_layer_contents(self) -> FrozenSet[ItemId]:
        return frozenset(self._items)

    def block_layer_blocks(self) -> FrozenSet[BlockId]:
        return frozenset(self._blocks)

    # -- union bookkeeping -------------------------------------------------
    def _acquire(self, item: ItemId, loaded: Set[ItemId]) -> None:
        n = self._refcount.get(item, 0)
        self._refcount[item] = n + 1
        if n == 0:
            loaded.add(item)

    def _release(self, item: ItemId, evicted: Set[ItemId]) -> None:
        n = self._refcount[item] - 1
        if n:
            self._refcount[item] = n
        else:
            del self._refcount[item]
            evicted.add(item)

    # -- ghost upkeep ------------------------------------------------------
    def _remember_item(self, item: ItemId) -> None:
        if item in self._ghost_items:
            self._ghost_items.touch(item)
        else:
            self._ghost_items.insert_mru(item)
            if len(self._ghost_items) > self._ghost_item_cap:
                self._ghost_items.pop_lru()

    def _remember_block(self, block: BlockId) -> None:
        if block in self._ghost_blocks:
            self._ghost_blocks.touch(block)
        else:
            self._ghost_blocks.insert_mru(block)
            if len(self._ghost_blocks) > self._ghost_block_cap:
                self._ghost_blocks.pop_lru()

    # -- boundary enforcement ---------------------------------------------
    def _shrink_layers(self, loaded: Set[ItemId], evicted: Set[ItemId]) -> None:
        i_cap = int(self._target_i)
        b_cap = self.capacity - i_cap
        while len(self._items) > i_cap:
            victim, _ = self._items.pop_lru()
            self._remember_item(victim)
            self._release(victim, evicted)
        while self._block_occupancy > b_cap and self._blocks:
            blk, members = self._blocks.pop_lru()
            self._block_occupancy -= len(members)
            self._remember_block(blk)
            for it in members:
                self._release(it, evicted)

    # -- Policy API ---------------------------------------------------------
    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        if item in self._items:
            self._items.touch(item)
            return AccessOutcome(item=item, hit=True)
        block = self.mapping.block_of(item)
        loaded: Set[ItemId] = set()
        evicted: Set[ItemId] = set()
        if block in self._blocks and item in self._refcount:
            self._blocks.touch(block)
            self._promote(item, loaded, evicted)
            loaded.discard(item)
            churn = loaded & evicted
            return AccessOutcome(
                item=item,
                hit=True,
                loaded=frozenset(),
                evicted=frozenset(evicted - churn),
            )
        # Miss: consult the ghosts to move the boundary first.
        if item in self._ghost_items:
            self._ghost_items.remove(item)
            self._target_i = min(
                float(self.capacity), self._target_i + 1.0
            )
        elif block in self._ghost_blocks:
            self._ghost_blocks.remove(block)
            self._target_i = max(
                0.0, self._target_i - float(self.mapping.max_block_size)
            )
        self._shrink_layers(loaded, evicted)
        self._promote(item, loaded, evicted)
        self._insert_block(block, item, loaded, evicted)
        churn = loaded & evicted
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset(loaded - churn),
            evicted=frozenset(evicted - churn),
        )

    def _promote(
        self, item: ItemId, loaded: Set[ItemId], evicted: Set[ItemId]
    ) -> None:
        i_cap = int(self._target_i)
        if i_cap == 0:
            return
        if item in self._items:
            self._items.touch(item)
            return
        while len(self._items) >= i_cap and self._items:
            victim, _ = self._items.pop_lru()
            self._remember_item(victim)
            self._release(victim, evicted)
        self._items.insert_mru(item)
        self._acquire(item, loaded)

    def _insert_block(
        self, block: BlockId, item: ItemId, loaded: Set[ItemId], evicted: Set[ItemId]
    ) -> None:
        b_cap = self.capacity - int(self._target_i)
        if b_cap == 0:
            # No block layer: ensure the item itself is resident.
            if item not in self._refcount:
                self._promote_forced(item, loaded, evicted)
            return
        if block in self._blocks:
            stale = self._blocks.remove(block)
            self._block_occupancy -= len(stale)
            for it in stale:
                self._release(it, evicted)
        members = self.mapping.items_in(block)
        load = members
        if len(members) > b_cap:
            keep = [item] + [it for it in members if it != item]
            load = tuple(keep[:b_cap])
        while self._block_occupancy + len(load) > b_cap and self._blocks:
            victim, victims = self._blocks.pop_lru()
            self._block_occupancy -= len(victims)
            self._remember_block(victim)
            for it in victims:
                self._release(it, evicted)
        self._blocks.insert_mru(block, load)
        self._block_occupancy += len(load)
        for it in load:
            self._acquire(it, loaded)

    def _promote_forced(
        self, item: ItemId, loaded: Set[ItemId], evicted: Set[ItemId]
    ) -> None:
        """Guarantee residency of a missed item when b = 0 and i full."""
        if len(self._items) >= max(1, int(self._target_i)):
            victim, _ = self._items.pop_lru()
            self._remember_item(victim)
            self._release(victim, evicted)
        self._items.insert_mru(item)
        self._acquire(item, loaded)

    def contains(self, item: ItemId) -> bool:
        return item in self._refcount

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._refcount)

"""Further Item Cache baselines: CLOCK, LFU, and seeded Random.

These round out the deterministic item-policy family used by the
Theorem 2 adversary benches.  ``item-random`` draws victims from a
seeded :class:`numpy.random.Generator`; with a fixed seed it is a
deterministic function of the request sequence, so the deterministic
lower-bound machinery applies to any fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import BlockMapping
from repro.policies.base import register_policy
from repro.policies.item_base import ItemPolicyBase
from repro.structs.clock_hand import ClockHand
from repro.types import ItemId

__all__ = ["ItemClock", "ItemLFU", "ItemRandom"]


@register_policy
class ItemClock(ItemPolicyBase):
    """CLOCK (second-chance) item cache — a practical LRU approximation."""

    name = "item-clock"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._clock = ClockHand()

    def _on_hit(self, item: ItemId) -> None:
        self._clock.reference(item)

    def _on_load(self, item: ItemId) -> None:
        self._clock.insert(item)

    def _choose_victim(self) -> ItemId:
        return self._clock.evict()


@register_policy
class ItemLFU(ItemPolicyBase):
    """Least-Frequently-Used item cache with LRU tie-breaking.

    Frequencies persist only while resident (in-cache LFU).
    """

    name = "item-lfu"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._freq: dict[ItemId, int] = {}
        self._tick = 0
        self._last_use: dict[ItemId, int] = {}

    def _on_hit(self, item: ItemId) -> None:
        self._tick += 1
        self._freq[item] += 1
        self._last_use[item] = self._tick

    def _on_load(self, item: ItemId) -> None:
        self._tick += 1
        self._freq[item] = 1
        self._last_use[item] = self._tick

    def _choose_victim(self) -> ItemId:
        victim = min(
            self._freq, key=lambda it: (self._freq[it], self._last_use[it])
        )
        del self._freq[victim]
        del self._last_use[victim]
        return victim


@register_policy
class ItemRandom(ItemPolicyBase):
    """Random-replacement item cache with a reproducible seed."""

    name = "item-random"

    def __init__(
        self, capacity: int, mapping: BlockMapping, seed: int = 0
    ) -> None:
        super().__init__(capacity, mapping)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._slots: list[ItemId] = []
        self._pos: dict[ItemId, int] = {}

    def reset(self) -> None:
        self.__init__(self.capacity, self.mapping, seed=self.seed)

    def _on_hit(self, item: ItemId) -> None:
        pass

    def _on_load(self, item: ItemId) -> None:
        self._pos[item] = len(self._slots)
        self._slots.append(item)

    def _choose_victim(self) -> ItemId:
        idx = int(self._rng.integers(len(self._slots)))
        victim = self._slots[idx]
        last = self._slots.pop()
        if last is not victim:
            self._slots[idx] = last
            self._pos[last] = idx
        del self._pos[victim]
        return victim

"""The ``a``-threshold policy family analyzed by Theorem 4.

Theorem 4 parameterizes deterministic policies by ``a`` — the number of
distinct accesses a block must suffer before the policy loads all of
it — and lower-bounds the competitive ratio at
``(a(k-h+1) + B(h-a)) / (k-h+1)``.  §4.4 concludes the optimum sits at
an extreme: load a single item (``a = B``-like behaviour… i.e. never
promote) or the whole block (``a = 1``), never in between.

:class:`AThresholdLRU` makes that trade-off concrete: it evicts
individual items by LRU, loads only the requested item while a block
has seen fewer than ``a`` distinct missed items, and loads the whole
block on the ``a``-th distinct miss.  With ``a = 1`` it loads blocks
eagerly but still evicts items (half of IBLP's design recipe); with
``a >= B`` it degenerates to a plain item LRU.  The ablation bench
sweeps ``a`` to reproduce §4.4's "extremes win" conclusion.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.core.mapping import BlockMapping
from repro.errors import ConfigurationError
from repro.policies.base import Policy, register_policy
from repro.structs.linked_lru import LinkedLRU
from repro.types import AccessOutcome, ItemId

__all__ = ["AThresholdLRU"]


@register_policy
class AThresholdLRU(Policy):
    """LRU item eviction; whole-block load after ``a`` distinct misses."""

    name = "athreshold-lru"

    def __init__(
        self, capacity: int, mapping: BlockMapping, a: int = 1
    ) -> None:
        super().__init__(capacity, mapping)
        if a < 1:
            raise ConfigurationError(f"threshold a must be >= 1, got {a}")
        self.a = a
        self._order = LinkedLRU()  # item -> None, recency of residents
        self._resident: Set[ItemId] = set()
        # Distinct missed items per block since the block last became
        # fully absent from the cache.
        self._block_miss_count: Dict[int, int] = {}
        self._block_resident_count: Dict[int, int] = {}

    def reset(self) -> None:
        self.__init__(self.capacity, self.mapping, a=self.a)

    # -- internal helpers ------------------------------------------------
    def _evict_one(self, protect: Set[ItemId]) -> ItemId:
        """Evict the LRU item not in ``protect``."""
        for key in self._order.keys_lru_to_mru():
            if key not in protect:
                self._order.remove(key)
                self._drop(key)
                return key
        raise ConfigurationError(
            "cannot evict: every resident item is protected "
            f"(capacity {self.capacity} too small for block size "
            f"{self.mapping.max_block_size})"
        )

    def _drop(self, item: ItemId) -> None:
        self._resident.discard(item)
        blk = self.mapping.block_of(item)
        n = self._block_resident_count[blk] - 1
        if n:
            self._block_resident_count[blk] = n
        else:
            del self._block_resident_count[blk]
            # Block fully gone: its miss counter restarts.
            self._block_miss_count.pop(blk, None)

    def _admit(self, item: ItemId) -> None:
        self._resident.add(item)
        self._order.insert_mru(item)
        blk = self.mapping.block_of(item)
        self._block_resident_count[blk] = self._block_resident_count.get(blk, 0) + 1

    # -- Policy API ---------------------------------------------------------
    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        if item in self._resident:
            self._order.touch(item)
            return AccessOutcome(item=item, hit=True)
        blk = self.mapping.block_of(item)
        misses_so_far = self._block_miss_count.get(blk, 0) + 1
        self._block_miss_count[blk] = misses_so_far
        if misses_so_far >= self.a:
            want = [it for it in self.mapping.items_in(blk) if it not in self._resident]
            # Never load more than fits even after evicting everything.
            if len(want) > self.capacity:
                want = [item] + [it for it in want if it != item]
                want = want[: self.capacity]
        else:
            want = [item]
        protect = set(want)
        loaded: Set[ItemId] = set()
        evicted: Set[ItemId] = set()
        for it in want:
            if len(self._resident) >= self.capacity:
                evicted.add(self._evict_one(protect))
            self._admit(it)
            loaded.add(it)
        return AccessOutcome(
            item=item, hit=False, loaded=frozenset(loaded), evicted=frozenset(evicted)
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._resident

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._resident)

"""Clairvoyant reference policies: Belady at item and block granularity.

:class:`BeladyItem` is Belady/MIN [Belady 1966, Mattson et al. 1970]:
evict the resident item whose next use is furthest in the future.  It
is *optimal for traditional caching* (B = 1) but generally suboptimal
in the GC model — it never exploits free subset loads, which is exactly
the gap Theorem 2's adversary magnifies.

:class:`BeladyBlock` runs Belady over the block-granularity projection
of the trace: it loads/evicts whole blocks and evicts the block whose
next use (any item) is furthest away.  Misses of an optimal GC cache
are lower-bounded by this policy's misses at the same *item* capacity
(see :mod:`repro.offline.lower_bounds`), because any cache of ``k``
items covers at most ``k`` blocks and serving a block-level cold block
always costs a load.

Both implement the incremental :class:`Policy` interface — ``prepare``
precomputes next-use chains, and ``access`` replays them in O(log k)
per access with a lazy max-heap.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Set

import numpy as np

from repro.core.mapping import BlockMapping
from repro.core.trace import Trace
from repro.errors import ProtocolViolation
from repro.policies.base import OfflinePolicy, register_policy
from repro.types import AccessOutcome, ItemId

__all__ = ["BeladyItem", "BeladyBlock", "next_use_array"]

_INF = np.iinfo(np.int64).max


def next_use_array(ids: np.ndarray) -> np.ndarray:
    """For each position, the index of the next occurrence of the same id.

    Positions with no later occurrence get ``np.iinfo(int64).max``.
    One backward O(T) pass.
    """
    ids = np.asarray(ids, dtype=np.int64)
    out = np.full(ids.shape, _INF, dtype=np.int64)
    last_seen: Dict[int, int] = {}
    for pos in range(ids.size - 1, -1, -1):
        nxt = last_seen.get(int(ids[pos]))
        if nxt is not None:
            out[pos] = nxt
        last_seen[int(ids[pos])] = pos
    return out


class _BeladyCore:
    """Furthest-in-future eviction over a stream of (key, next_use)."""

    def __init__(self) -> None:
        self.next_use: Dict[int, int] = {}
        self._heap: List[tuple] = []  # (-next_use, key) with lazy deletion

    def __contains__(self, key: int) -> bool:
        return key in self.next_use

    def __len__(self) -> int:
        return len(self.next_use)

    def update(self, key: int, next_use: int) -> None:
        self.next_use[key] = next_use
        heapq.heappush(self._heap, (-next_use, key))

    def remove(self, key: int) -> None:
        del self.next_use[key]  # heap entry becomes stale; skipped later

    def evict_furthest(self) -> int:
        while self._heap:
            neg, key = heapq.heappop(self._heap)
            if self.next_use.get(key) == -neg:
                del self.next_use[key]
                return key
        raise ProtocolViolation("Belady eviction from empty cache")


@register_policy
class BeladyItem(OfflinePolicy):
    """Belady/MIN at item granularity (loads only the requested item)."""

    name = "belady-item"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._core = _BeladyCore()
        self._pos = 0
        self._next: np.ndarray | None = None
        self._trace_items: np.ndarray | None = None

    def prepare(self, trace: Trace) -> None:
        super().prepare(trace)
        self._trace_items = trace.items
        self._next = next_use_array(trace.items)
        self._pos = 0

    def access(self, item: ItemId) -> AccessOutcome:
        self._require_prepared()
        assert self._next is not None and self._trace_items is not None
        if int(self._trace_items[self._pos]) != item:
            raise ProtocolViolation(
                f"offline policy replayed out of order at position {self._pos}"
            )
        nxt = int(self._next[self._pos])
        self._pos += 1
        if item in self._core:
            self._core.update(item, nxt)
            return AccessOutcome(item=item, hit=True)
        evicted: Set[ItemId] = set()
        if len(self._core) >= self.capacity:
            evicted.add(self._core.evict_furthest())
        self._core.update(item, nxt)
        return AccessOutcome(
            item=item, hit=False, loaded=frozenset((item,)), evicted=frozenset(evicted)
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._core

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._core.next_use)


@register_policy
class BeladyBlock(OfflinePolicy):
    """Belady/MIN at block granularity (whole-block loads and evictions).

    The block's priority is the next access to *any* of its items.
    Capacity is still counted in items; a block occupies its full size.
    """

    name = "belady-block"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._core = _BeladyCore()  # keys are block ids
        self._members: Dict[int, tuple] = {}
        self._resident: Set[ItemId] = set()
        self._occupancy = 0
        self._pos = 0
        self._next_block: np.ndarray | None = None
        self._trace_items: np.ndarray | None = None

    def prepare(self, trace: Trace) -> None:
        super().prepare(trace)
        self._trace_items = trace.items
        self._next_block = next_use_array(trace.block_trace())
        self._pos = 0

    def access(self, item: ItemId) -> AccessOutcome:
        self._require_prepared()
        assert self._next_block is not None and self._trace_items is not None
        if int(self._trace_items[self._pos]) != item:
            raise ProtocolViolation(
                f"offline policy replayed out of order at position {self._pos}"
            )
        blk = self.mapping.block_of(item)
        nxt = int(self._next_block[self._pos])
        self._pos += 1
        evicted: Set[ItemId] = set()
        if blk in self._core:
            if item in self._resident:
                self._core.update(blk, nxt)
                return AccessOutcome(item=item, hit=True)
            # Trimmed-block residue (k < |block|): drop the partial
            # entry and reload it around the requested item.
            stale = self._members.pop(blk)
            self._occupancy -= len(stale)
            self._resident.difference_update(stale)
            self._core.remove(blk)
            evicted.update(stale)
        members = self.mapping.items_in(blk)
        load = members
        if len(members) > self.capacity:
            keep = [item] + [it for it in members if it != item]
            load = tuple(keep[: self.capacity])
        while self._occupancy + len(load) > self.capacity:
            victim = self._core.evict_furthest()
            victims = self._members.pop(victim)
            self._occupancy -= len(victims)
            self._resident.difference_update(victims)
            evicted.update(victims)
        self._core.update(blk, nxt)
        self._members[blk] = load
        self._occupancy += len(load)
        self._resident.update(load)
        churn = set(load) & evicted
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset(set(load) - churn),
            evicted=frozenset(evicted - churn),
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._resident

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._resident)

"""Shared machinery for item-granularity (traditional) policies.

An *Item Cache* (paper §2, "Baseline policies") loads only the
requested item on a miss and evicts single items.  All such policies
differ only in victim selection, so :class:`ItemPolicyBase` centralizes
the resident-set bookkeeping and outcome construction; subclasses
implement three small hooks.

Theorem 2 lower-bounds the competitive ratio of *every* policy in this
family at ``B(k-B+1)/(k-h+1)`` — the empirical adversary benches run
several of these to demonstrate the bound's policy independence.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.core.mapping import BlockMapping
from repro.policies.base import Policy
from repro.types import AccessOutcome, ItemId

__all__ = ["ItemPolicyBase"]


class ItemPolicyBase(Policy):
    """Base class: single-item loads, single-item evictions."""

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._resident: Set[ItemId] = set()

    # -- hooks for subclasses ----------------------------------------------
    def _on_hit(self, item: ItemId) -> None:
        """Update recency/frequency metadata after a hit."""
        raise NotImplementedError

    def _on_load(self, item: ItemId) -> None:
        """Record a newly loaded item."""
        raise NotImplementedError

    def _choose_victim(self) -> ItemId:
        """Pick and *remove from internal metadata* the eviction victim."""
        raise NotImplementedError

    # -- Policy API ---------------------------------------------------------
    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        if item in self._resident:
            self._on_hit(item)
            return AccessOutcome(item=item, hit=True)
        evicted: Set[ItemId] = set()
        if len(self._resident) >= self.capacity:
            victim = self._choose_victim()
            self._resident.discard(victim)
            evicted.add(victim)
        self._resident.add(item)
        self._on_load(item)
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset((item,)),
            evicted=frozenset(evicted),
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._resident

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._resident)

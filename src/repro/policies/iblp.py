"""Item-Block Layered Partitioning (IBLP) — the paper's policy (§5).

IBLP splits a cache of ``k`` items into two LRU partitions:

* an **item layer** of size ``i`` that serves every access first and
  loads only requested items (pure temporal locality), and
* a **block layer** of size ``b = k - i`` that serves only accesses
  missing the item layer and loads/evicts *whole blocks* (pure spatial
  locality).

The ordering is load-bearing (§5.1): because item-layer hits never
reach the block layer, blocks holding a few hot items cannot keep
refreshing their block-layer recency and pollute it.  The block layer
is neither inclusive nor exclusive of the item layer; an item may
occupy a slot in both partitions at once (the paper accepts this
duplication to keep the policy simple).

The engine views the cache as the *union* of the layers, so this
policy reports loads/evictions as deltas of that union: evicting an
item from one layer while the other still holds it is not a cache-level
eviction.

:class:`BlockFirstIBLP` is the ablation variant that consults the block
layer first — exactly the reordering hazard §5.1 warns about — used by
``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

from repro.core.mapping import BlockMapping
from repro.errors import ConfigurationError
from repro.policies.base import Policy, register_policy
from repro.structs.linked_lru import LinkedLRU
from repro.types import AccessOutcome, BlockId, ItemId

__all__ = ["IBLP", "BlockFirstIBLP"]


class _LayeredBase(Policy):
    """Shared two-layer machinery; subclasses fix the lookup order."""

    def __init__(
        self,
        capacity: int,
        mapping: BlockMapping,
        item_layer_size: Optional[int] = None,
    ) -> None:
        super().__init__(capacity, mapping)
        if item_layer_size is None:
            # Default to the equal split analyzed in §7.3 (i = b).
            item_layer_size = capacity // 2
        if not 0 <= item_layer_size <= capacity:
            raise ConfigurationError(
                f"item layer size {item_layer_size} not in [0, {capacity}]"
            )
        self.item_layer_size = item_layer_size
        self.block_layer_size = capacity - item_layer_size
        self._items = LinkedLRU()  # item id -> None
        self._blocks = LinkedLRU()  # block id -> tuple of resident items
        self._block_occupancy = 0
        #: item -> number of layers holding it (1 or 2)
        self._refcount: dict[ItemId, int] = {}

    def reset(self) -> None:
        self.__init__(self.capacity, self.mapping, self.item_layer_size)

    # -- union bookkeeping ------------------------------------------------
    def _acquire(self, item: ItemId, loaded: Set[ItemId]) -> None:
        n = self._refcount.get(item, 0)
        self._refcount[item] = n + 1
        if n == 0:
            loaded.add(item)

    def _release(self, item: ItemId, evicted: Set[ItemId]) -> None:
        n = self._refcount[item] - 1
        if n:
            self._refcount[item] = n
        else:
            del self._refcount[item]
            evicted.add(item)

    # -- per-layer operations ------------------------------------------------
    def _item_layer_insert(
        self, item: ItemId, loaded: Set[ItemId], evicted: Set[ItemId]
    ) -> None:
        """Insert into the item layer, evicting its LRU victim if full."""
        if self.item_layer_size == 0:
            return
        if item in self._items:
            self._items.touch(item)
            return
        if len(self._items) >= self.item_layer_size:
            victim, _ = self._items.pop_lru()
            self._release(victim, evicted)
        self._items.insert_mru(item)
        self._acquire(item, loaded)

    def _block_layer_insert(
        self, block: BlockId, item: ItemId, loaded: Set[ItemId], evicted: Set[ItemId]
    ) -> None:
        """Insert ``block`` (whole) into the block layer, evicting LRU blocks."""
        if self.block_layer_size == 0:
            return
        if block in self._blocks:
            # Only reachable when a previous insertion trimmed the block
            # (b < |block|) so the requested item was left out: replace
            # the stale partial entry.
            stale = self._blocks.remove(block)
            self._block_occupancy -= len(stale)
            for it in stale:
                self._release(it, evicted)
        members: Tuple[int, ...] = self.mapping.items_in(block)
        load: Tuple[int, ...] = members
        if len(members) > self.block_layer_size:
            # Degenerate b < |block|: keep the requested item plus as
            # many neighbours as fit (only reachable when k is tiny).
            keep = [item] + [it for it in members if it != item]
            load = tuple(keep[: self.block_layer_size])
        while self._block_occupancy + len(load) > self.block_layer_size:
            victim_block, victim_items = self._blocks.pop_lru()
            self._block_occupancy -= len(victim_items)
            for it in victim_items:
                self._release(it, evicted)
        self._blocks.insert_mru(block, load)
        self._block_occupancy += len(load)
        for it in load:
            self._acquire(it, loaded)

    # -- Policy API ---------------------------------------------------------
    def contains(self, item: ItemId) -> bool:
        return item in self._refcount

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._refcount)

    def item_layer_contents(self) -> FrozenSet[ItemId]:
        """Snapshot of the item layer (tests/ablation introspection)."""
        return frozenset(self._items)

    def block_layer_blocks(self) -> FrozenSet[BlockId]:
        """Snapshot of blocks resident in the block layer."""
        return frozenset(self._blocks)


@register_policy
class IBLP(_LayeredBase):
    """Canonical IBLP: item layer in front of the block layer (§5.1)."""

    name = "iblp"

    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        # 1. Item layer serves the access first.
        if item in self._items:
            self._items.touch(item)
            return AccessOutcome(item=item, hit=True)
        block = self.mapping.block_of(item)
        loaded: Set[ItemId] = set()
        evicted: Set[ItemId] = set()
        # 2. Item-layer miss falls through to the block layer.
        if block in self._blocks and item in self._refcount:
            # Block-layer hit: refresh the block's recency and promote
            # the item into the item layer (it was accessed).
            self._blocks.touch(block)
            self._item_layer_insert(item, loaded, evicted)
            # A block-layer hit cannot change cache-level residency of
            # the requested item, and item-layer insertion only evicts
            # at the cache level if the victim has no other copy.
            return AccessOutcome(
                item=item, hit=True, loaded=frozenset(), evicted=frozenset()
            ) if not (loaded or evicted) else self._hit_with_motion(item, loaded, evicted)
        # 3. Full miss: both layers load.
        self._item_layer_insert(item, loaded, evicted)
        self._block_layer_insert(block, item, loaded, evicted)
        if self.item_layer_size == 0 and self.block_layer_size == 0:
            raise ConfigurationError("cache has zero capacity in both layers")
        # Items both loaded and evicted within this access cancel out.
        churn = loaded & evicted
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset(loaded - churn),
            evicted=frozenset(evicted - churn),
        )

    def _hit_with_motion(
        self, item: ItemId, loaded: Set[ItemId], evicted: Set[ItemId]
    ) -> AccessOutcome:
        """A hit whose item-layer promotion changed cache-level residency.

        Promoting the requested item duplicates it (it stays resident),
        but the item-layer victim may lose its last copy, producing a
        genuine eviction.  The promotion itself must not be reported as
        a load: the item was already resident.
        """
        loaded.discard(item)
        churn = loaded & evicted
        if loaded - churn:
            # The only insertion was `item`, already discarded; anything
            # else would be a bookkeeping bug.
            raise ConfigurationError(
                f"unexpected load set on block-layer hit: {sorted(loaded)}"
            )
        return AccessOutcome(
            item=item, hit=True, loaded=frozenset(), evicted=frozenset(evicted - churn)
        )


@register_policy
class BlockFirstIBLP(_LayeredBase):
    """Ablation: block layer consulted (and re-ordered) on every access.

    This variant lets temporal hits refresh block-layer recency — the
    pollution hazard §5.1's ordering avoids.  On traces mixing a few
    hot items with streaming blocks it measurably underperforms
    canonical IBLP (see ``benchmarks/bench_ablation.py``).
    """

    name = "iblp-blockfirst"

    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        block = self.mapping.block_of(item)
        block_hit = block in self._blocks
        if block_hit:
            self._blocks.touch(block)  # the harmful reordering
        if item in self._items:
            self._items.touch(item)
            return AccessOutcome(item=item, hit=True)
        loaded: Set[ItemId] = set()
        evicted: Set[ItemId] = set()
        if block_hit and item in self._refcount:
            self._item_layer_insert(item, loaded, evicted)
            loaded.discard(item)
            churn = loaded & evicted
            return AccessOutcome(
                item=item,
                hit=True,
                loaded=frozenset(),
                evicted=frozenset(evicted - churn),
            )
        self._item_layer_insert(item, loaded, evicted)
        self._block_layer_insert(block, item, loaded, evicted)
        churn = loaded & evicted
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset(loaded - churn),
            evicted=frozenset(evicted - churn),
        )

"""Replacement policies for the GC caching model.

Importing this package registers every built-in policy with the
registry in :mod:`repro.policies.base`; use
:func:`~repro.policies.base.make_policy` to construct one by name.

Online policies
---------------
========================  ====================================================
``item-lru``              Traditional LRU item cache (§2 baseline)
``item-fifo``/``-mru``    Further item-granularity baselines
``item-clock``/``-lfu``   CLOCK and in-cache LFU item baselines
``item-2q``               Scan-resistant 2Q item baseline
``item-random``           Seeded random-replacement item cache
``block-lru``/``-fifo``   Whole-block caches (§2 baseline)
``iblp``                  Item-Block Layered Partitioning (§5, contribution)
``iblp-blockfirst``       Ablation: block layer in front (§5.1 hazard)
``iblp-adaptive``         ARC-style self-tuning split (extension, §5.3)
``athreshold-lru``        Theorem 4's ``a``-parameter family
``marking-lru``           Traditional deterministic marking
``gcm``                   Granularity-Change Marking (§6, randomized)
``gcm-markall``           §6 strawman that marks side loads
``gcm-partial``           §6.1 middle ground: load some, not all
========================  ====================================================

Offline policies
----------------
``belady-item`` and ``belady-block`` are clairvoyant baselines (optimal
in the traditional model at item/block granularity respectively; both
suboptimal for GC caching, which is NP-complete — see
:mod:`repro.offline` for exact solvers on small instances).
"""

from repro.policies.base import (
    OfflinePolicy,
    Policy,
    make_policy,
    policy_names,
    register_policy,
)
from repro.policies.item_base import ItemPolicyBase
from repro.policies.item_lru import ItemFIFO, ItemLRU, ItemMRU
from repro.policies.item_other import ItemClock, ItemLFU, ItemRandom
from repro.policies.item_twoq import ItemTwoQ
from repro.policies.block_cache import BlockFIFO, BlockLRU
from repro.policies.iblp import IBLP, BlockFirstIBLP
from repro.policies.adaptive_iblp import AdaptiveIBLP
from repro.policies.athreshold import AThresholdLRU
from repro.policies.marking import GCM, MarkAllGCM, MarkingLRU, PartialGCM
from repro.policies.belady import BeladyBlock, BeladyItem

__all__ = [
    "Policy",
    "OfflinePolicy",
    "ItemPolicyBase",
    "register_policy",
    "policy_names",
    "make_policy",
    "ItemLRU",
    "ItemFIFO",
    "ItemMRU",
    "ItemClock",
    "ItemLFU",
    "ItemRandom",
    "ItemTwoQ",
    "BlockLRU",
    "BlockFIFO",
    "IBLP",
    "BlockFirstIBLP",
    "AdaptiveIBLP",
    "AThresholdLRU",
    "MarkingLRU",
    "GCM",
    "MarkAllGCM",
    "PartialGCM",
    "BeladyItem",
    "BeladyBlock",
]

"""2Q item cache [Johnson & Shasha 1994] — a scan-resistant baseline.

A further member of the Item Cache family (every such policy falls
under Theorem 2's lower bound): newly-admitted items go to a FIFO
probation queue ``A1in``; only items re-referenced after leaving
probation (tracked by the ghost queue ``A1out``) are promoted into the
protected LRU queue ``Am``.  One-touch scans therefore wash through
probation without displacing the protected working set.

Sizing follows the paper's recommendations: ``A1in`` gets 25 % of
capacity, ``A1out`` remembers 50 % of capacity worth of ghosts.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.core.mapping import BlockMapping
from repro.policies.base import Policy, register_policy
from repro.structs.linked_lru import LinkedLRU
from repro.types import AccessOutcome, ItemId

__all__ = ["ItemTwoQ"]


@register_policy
class ItemTwoQ(Policy):
    """2Q replacement at item granularity."""

    name = "item-2q"

    def __init__(
        self,
        capacity: int,
        mapping: BlockMapping,
        probation_fraction: float = 0.25,
        ghost_fraction: float = 0.5,
    ) -> None:
        super().__init__(capacity, mapping)
        self.probation_fraction = probation_fraction
        self.ghost_fraction = ghost_fraction
        self._a1in_cap = max(1, int(capacity * probation_fraction))
        self._ghost_cap = max(1, int(capacity * ghost_fraction))
        self._a1in = LinkedLRU()  # FIFO probation (insertion order)
        self._am = LinkedLRU()  # protected LRU
        self._ghosts = LinkedLRU()  # A1out: ids only, hold no data
        self._resident: Set[ItemId] = set()

    def reset(self) -> None:
        self.__init__(
            self.capacity,
            self.mapping,
            probation_fraction=self.probation_fraction,
            ghost_fraction=self.ghost_fraction,
        )

    def _evict_one(self) -> ItemId:
        # Prefer draining probation past its cap, else protected LRU,
        # else probation anyway (protected may be empty).
        if len(self._a1in) > self._a1in_cap or not self._am:
            victim, _ = self._a1in.pop_lru()
            self._remember_ghost(victim)
        else:
            victim, _ = self._am.pop_lru()
        self._resident.discard(victim)
        return victim

    def _remember_ghost(self, item: ItemId) -> None:
        if item in self._ghosts:
            self._ghosts.touch(item)
        else:
            self._ghosts.insert_mru(item)
            if len(self._ghosts) > self._ghost_cap:
                self._ghosts.pop_lru()

    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        if item in self._resident:
            if item in self._am:
                self._am.touch(item)
            elif item in self._a1in:
                # 2Q leaves probation order untouched on hits (FIFO).
                pass
            return AccessOutcome(item=item, hit=True)
        evicted: Set[ItemId] = set()
        if len(self._resident) >= self.capacity:
            evicted.add(self._evict_one())
        if item in self._ghosts:
            # Recently evicted from probation: promote straight to Am.
            self._ghosts.remove(item)
            self._am.insert_mru(item)
        else:
            self._a1in.insert_mru(item)
        self._resident.add(item)
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset((item,)),
            evicted=frozenset(evicted),
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._resident

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._resident)

    # -- introspection (tests) -------------------------------------------
    def probation_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._a1in)

    def protected_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._am)

"""Block Cache baselines: load and evict whole blocks.

A *Block Cache* (paper §2) raises the cache's own granularity to the
block level: a miss loads every item of the block, and evictions remove
whole blocks.  Residency is therefore always a union of complete
blocks.  Block caches excel at spatial locality but, per Theorem 3,
suffer cache pollution on sparse traces — their competitive ratio
``k/(k - B(h-1))`` is unbounded unless ``k > B(h-1)``.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.core.mapping import BlockMapping
from repro.policies.base import Policy, register_policy
from repro.structs.linked_lru import LinkedLRU
from repro.types import AccessOutcome, BlockId, ItemId

__all__ = ["BlockLRU", "BlockFIFO"]


class _BlockPolicyBase(Policy):
    """Common bookkeeping for whole-block policies."""

    #: If True, hits refresh the block's recency (LRU); if False they
    #: do not (FIFO).
    touch_on_hit = True

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._blocks = LinkedLRU()  # block id -> tuple of items
        self._resident: Set[ItemId] = set()

    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        block: BlockId = self.mapping.block_of(item)
        evicted: Set[ItemId] = set()
        if block in self._blocks:
            if item in self._resident:
                if self.touch_on_hit:
                    self._blocks.touch(block)
                return AccessOutcome(item=item, hit=True)
            # Trimmed residue (k < |block|): the block entry exists but
            # the requested item was left out — replace the stale entry.
            stale = self._blocks.remove(block)
            self._resident.difference_update(stale)
            evicted.update(stale)
        members = self.mapping.items_in(block)
        # Keep only as much of the block as fits: when the whole block
        # exceeds remaining capacity even after evicting everything
        # else, trim from the tail (but always include the requested
        # item).  This only matters for pathological k < B setups.
        load = members
        if len(members) > self.capacity:
            keep = [item]
            for it in members:
                if it != item and len(keep) < self.capacity:
                    keep.append(it)
            load = tuple(sorted(keep))
        while len(self._resident) + len(load) > self.capacity:
            victim_block, victim_items = self._blocks.pop_lru()
            evicted.update(victim_items)
            self._resident.difference_update(victim_items)
        self._blocks.insert_mru(block, load)
        self._resident.update(load)
        churn = set(load) & evicted
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset(set(load) - churn),
            evicted=frozenset(evicted - churn),
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._resident

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._resident)

    def resident_blocks(self) -> FrozenSet[BlockId]:
        """Blocks currently held (useful to adversaries and tests)."""
        return frozenset(self._blocks)


@register_policy
class BlockLRU(_BlockPolicyBase):
    """Whole-block cache with LRU block replacement."""

    name = "block-lru"
    touch_on_hit = True


@register_policy
class BlockFIFO(_BlockPolicyBase):
    """Whole-block cache with FIFO block replacement."""

    name = "block-fifo"
    touch_on_hit = False

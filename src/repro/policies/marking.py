"""Marking algorithms: the traditional baseline and GC-aware GCM (§6).

Marking algorithms proceed in phases: items are *marked* when
requested; eviction victims must be unmarked; when every resident item
is marked, all marks are cleared and a new phase begins.

* :class:`MarkingLRU` — a deterministic traditional marking algorithm
  (victim = least-recently-used unmarked item) that loads only the
  requested item.  §6 notes such block-oblivious marking has
  competitive ratio ≥ B in the GC model.
* :class:`GCM` — Granularity-Change Marking, the paper's randomized
  policy: on a miss it loads and *marks* the requested item, and loads
  the remaining items of the block **unmarked**, replacing randomly
  chosen unmarked residents.  Spatially-local items thus enter the
  cache without displacing temporally-hot (marked) ones.
* :class:`MarkAllGCM` — the §6 strawman that marks everything it
  loads; like a Block Cache it loses effective capacity to pollution
  (ablation bench).
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

import numpy as np

from repro.core.mapping import BlockMapping
from repro.policies.base import Policy, register_policy
from repro.structs.linked_lru import LinkedLRU
from repro.types import AccessOutcome, ItemId

__all__ = ["MarkingLRU", "GCM", "MarkAllGCM"]


@register_policy
class MarkingLRU(Policy):
    """Deterministic traditional marking (LRU victim among unmarked)."""

    name = "marking-lru"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._order = LinkedLRU()
        self._resident: Set[ItemId] = set()
        self._marked: Set[ItemId] = set()

    def _new_phase_if_needed(self) -> None:
        if len(self._marked) >= len(self._resident) and self._resident:
            self._marked.clear()

    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        if item in self._resident:
            self._order.touch(item)
            self._marked.add(item)
            return AccessOutcome(item=item, hit=True)
        evicted: Set[ItemId] = set()
        if len(self._resident) >= self.capacity:
            self._new_phase_if_needed()
            victim = next(
                k for k in self._order.keys_lru_to_mru() if k not in self._marked
            )
            self._order.remove(victim)
            self._resident.discard(victim)
            evicted.add(victim)
        self._resident.add(item)
        self._order.insert_mru(item)
        self._marked.add(item)
        return AccessOutcome(
            item=item, hit=False, loaded=frozenset((item,)), evicted=frozenset(evicted)
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._resident

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._resident)

    def marked_items(self) -> FrozenSet[ItemId]:
        """Currently marked residents (introspection for tests)."""
        return frozenset(self._marked)


class _GCMBase(Policy):
    """Shared machinery for the GC marking variants."""

    #: Whether side-loaded block neighbours are marked on load.
    mark_side_loads = False
    #: Maximum items loaded per miss (requested item included); ``None``
    #: means the whole block.  §6.1 notes "there may be value in a
    #: policy that loads some but not all of the items" — the
    #: :class:`PartialGCM` subclass exposes that dial.
    max_load: int | None = None

    def __init__(
        self, capacity: int, mapping: BlockMapping, seed: int = 0
    ) -> None:
        super().__init__(capacity, mapping)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._resident: Set[ItemId] = set()
        self._marked: Set[ItemId] = set()

    def reset(self) -> None:
        self.__init__(self.capacity, self.mapping, seed=self.seed)

    # -- helpers -----------------------------------------------------------
    def _pick_unmarked_victim(self, protect: Set[ItemId]) -> ItemId:
        """Random unmarked resident outside ``protect``; new phase if none."""
        candidates = sorted(self._resident - self._marked - protect)
        if not candidates:
            # All (unprotected) items marked: phase ends, clear marks.
            self._marked.clear()
            candidates = sorted(self._resident - protect)
        idx = int(self._rng.integers(len(candidates)))
        return candidates[idx]

    def access(self, item: ItemId) -> AccessOutcome:
        self._assert_known(item)
        if item in self._resident:
            self._marked.add(item)
            return AccessOutcome(item=item, hit=True)
        loaded: Set[ItemId] = set()
        evicted: Set[ItemId] = set()
        # 1. Load and mark the requested item.
        if len(self._resident) >= self.capacity:
            victim = self._pick_unmarked_victim(protect=loaded)
            self._resident.discard(victim)
            evicted.add(victim)
        self._resident.add(item)
        self._marked.add(item)
        loaded.add(item)
        # 2. Bring in the rest of the block, replacing unmarked items.
        blk = self.mapping.block_of(item)
        neighbours: List[ItemId] = [
            it for it in self.mapping.items_in(blk) if it not in self._resident
        ]
        if neighbours:
            self._rng.shuffle(neighbours)
        if self.max_load is not None:
            neighbours = neighbours[: max(0, self.max_load - 1)]
        for nb in neighbours:
            if len(self._resident) >= self.capacity:
                # Replace only unmarked items that were already cached
                # before this access; never churn this access's loads,
                # and never displace marked (temporally hot) items.
                candidates = sorted(self._resident - self._marked - loaded)
                if not candidates:
                    break
                victim = candidates[int(self._rng.integers(len(candidates)))]
                self._resident.discard(victim)
                if victim in loaded:  # pragma: no cover - excluded above
                    loaded.discard(victim)
                else:
                    evicted.add(victim)
            self._resident.add(nb)
            loaded.add(nb)
            if self.mark_side_loads:
                self._marked.add(nb)
        self._marked &= self._resident
        churn = loaded & evicted
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset(loaded - churn),
            evicted=frozenset(evicted - churn),
        )

    def contains(self, item: ItemId) -> bool:
        return item in self._resident

    def resident_items(self) -> FrozenSet[ItemId]:
        return frozenset(self._resident)

    def marked_items(self) -> FrozenSet[ItemId]:
        """Currently marked residents (introspection for tests)."""
        return frozenset(self._marked)


@register_policy
class GCM(_GCMBase):
    """Granularity-Change Marking (§6.1): side loads stay unmarked."""

    name = "gcm"
    mark_side_loads = False


@register_policy
class MarkAllGCM(_GCMBase):
    """Strawman variant that marks every loaded item (pollutes phases)."""

    name = "gcm-markall"
    mark_side_loads = True


@register_policy
class PartialGCM(_GCMBase):
    """GCM loading at most ``load_count`` items per miss (§6.1's open
    middle ground between marking and full GCM).

    ``load_count = 1`` degenerates to block-oblivious marking with a
    randomized victim; ``load_count = B`` is exactly :class:`GCM`.
    The ablation bench sweeps the dial on workloads with partial
    spatial locality, where an intermediate value can win — the
    randomized analogue of the §4.4 discussion.
    """

    name = "gcm-partial"
    mark_side_loads = False

    def __init__(
        self,
        capacity: int,
        mapping: BlockMapping,
        load_count: int = 2,
        seed: int = 0,
    ) -> None:
        if load_count < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"load_count must be >= 1, got {load_count}"
            )
        super().__init__(capacity, mapping, seed=seed)
        self.max_load = load_count

    def reset(self) -> None:
        self.__init__(
            self.capacity, self.mapping, load_count=self.max_load, seed=self.seed
        )

"""Command-line interface (``gc-caching`` / ``python -m repro.cli``).

Subcommands map one-to-one onto the experiment drivers plus a generic
simulator front-end; see ``gc-caching --help``.
"""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]

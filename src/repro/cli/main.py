"""Argument parsing and dispatch for the ``gc-caching`` CLI.

Examples
--------
::

    gc-caching table 1
    gc-caching table 2 --B 64 --p 2
    gc-caching figure 3 --k 1280000 --B 64
    gc-caching figure 2 --trials 6
    gc-caching simulate --policy iblp --workload hot_and_stream \\
        --capacity 256 --block-size 8 --length 50000
    gc-caching simulate --policy iblp --workload markov --capacity 256 \\
        --telemetry out.jsonl --window 1000 --sample-rate 0.01
    gc-caching report out.jsonl --metric spatial_fraction
    gc-caching adversarial --k 256 --h 48 --B 8
    gc-caching profile --workload dram --length 50000
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional

import repro
from repro.analysis.tables import format_table
from repro.campaign.cli import add_campaign_parser, run_campaign_command
from repro.cluster.cli import add_cluster_parser, run_cluster_command
from repro.core.engine import simulate as run_simulation
from repro.errors import ConfigurationError
from repro.obs.cli import add_obs_parser, run_obs_command
from repro.locality.profile import profile_trace
from repro.policies import make_policy, policy_names
from repro.workloads import (
    block_runs,
    dram_cache_workload,
    etc_kv_workload,
    hot_and_stream,
    markov_spatial,
    page_cache_workload,
    sequential_scan,
    uniform_random,
    zipf_items,
)

__all__ = ["build_parser", "main"]

_WORKLOADS: Dict[str, Callable] = {
    "uniform": lambda ns: uniform_random(
        ns.length, ns.universe, ns.block_size, ns.seed
    ),
    "zipf": lambda ns: zipf_items(
        ns.length, ns.universe, ns.alpha, ns.block_size, ns.seed
    ),
    "scan": lambda ns: sequential_scan(
        ns.universe, ns.block_size, repeats=max(1, ns.length // ns.universe)
    ),
    "block_runs": lambda ns: block_runs(
        ns.length, ns.universe, ns.block_size, seed=ns.seed
    ),
    "markov": lambda ns: markov_spatial(
        ns.length, ns.universe, ns.block_size, stay=ns.stay, seed=ns.seed
    ),
    "hot_and_stream": lambda ns: hot_and_stream(
        ns.length,
        hot_items=max(1, ns.universe // 8),
        stream_blocks=max(1, ns.universe // ns.block_size),
        block_size=ns.block_size,
        seed=ns.seed,
    ),
    "dram": lambda ns: dram_cache_workload(length=ns.length, seed=ns.seed),
    "pagecache": lambda ns: page_cache_workload(length=ns.length, seed=ns.seed),
    "etc": lambda ns: etc_kv_workload(
        ns.length, ns.universe, ns.block_size, alpha=ns.alpha, seed=ns.seed
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="gc-caching",
        description="Granularity-Change Caching reproduction toolkit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for parallel phases (exported as the "
        "REPRO_JOBS override read by sweeps and campaigns; defaults to "
        "all CPUs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="reproduce a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2))
    p_table.add_argument("--B", type=float, default=64.0)
    p_table.add_argument("--h", type=float, default=10_000.0)
    p_table.add_argument("--p", type=float, default=2.0)
    p_table.add_argument("--i", type=float, default=4096.0)

    p_fig = sub.add_parser("figure", help="reproduce a paper figure")
    p_fig.add_argument("number", type=int, choices=(2, 3, 5, 6))
    p_fig.add_argument("--k", type=int, default=1_280_000)
    p_fig.add_argument("--B", type=int, default=64)
    p_fig.add_argument("--trials", type=int, default=8)
    p_fig.add_argument("--points", type=int, default=100)

    p_sim = sub.add_parser("simulate", help="run one policy on a workload")
    p_sim.add_argument("--policy", choices=sorted(policy_names()), required=True)
    group = p_sim.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", choices=sorted(_WORKLOADS))
    group.add_argument(
        "--trace-file",
        help="trace file to replay: text format (see "
        "repro.workloads.trace_io; gzip OK) or a compiled .rtc file, "
        "replayed memory-mapped",
    )
    p_sim.add_argument(
        "--densify",
        action="store_true",
        help="rename sparse trace-file addresses onto a dense universe",
    )
    p_sim.add_argument("--capacity", type=int, required=True)
    p_sim.add_argument("--block-size", type=int, default=8)
    p_sim.add_argument("--length", type=int, default=50_000)
    p_sim.add_argument("--universe", type=int, default=4096)
    p_sim.add_argument("--alpha", type=float, default=1.0)
    p_sim.add_argument("--stay", type=float, default=0.8)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--fast",
        action="store_true",
        help="replay through the conformance-proven fast kernels "
        "(repro.core.fast) when the policy supports it; automatically "
        "falls back to the referee otherwise (and always with "
        "--telemetry, which needs the referee's observation hooks)",
    )
    p_sim.add_argument(
        "--telemetry",
        metavar="OUT",
        help="write windowed telemetry to this file "
        "(JSONL; a .csv suffix selects CSV)",
    )
    p_sim.add_argument(
        "--window",
        type=int,
        default=1000,
        help="accesses per telemetry window (with --telemetry)",
    )
    p_sim.add_argument(
        "--sample-rate",
        type=float,
        default=0.0,
        help="per-access event sampling probability in [0, 1] "
        "(with --telemetry; 1.0 = full trace)",
    )

    p_srv = sub.add_parser(
        "serve",
        help="request-level serving simulation: latency, not just misses",
    )
    p_srv.add_argument("--policy", choices=sorted(policy_names()), required=True)
    p_srv.add_argument("--workload", choices=sorted(_WORKLOADS), required=True)
    p_srv.add_argument("--capacity", type=int, required=True)
    p_srv.add_argument("--block-size", type=int, default=8)
    p_srv.add_argument("--length", type=int, default=50_000)
    p_srv.add_argument("--universe", type=int, default=4096)
    p_srv.add_argument("--alpha", type=float, default=1.0)
    p_srv.add_argument("--stay", type=float, default=0.8)
    p_srv.add_argument("--seed", type=int, default=0)
    p_srv.add_argument(
        "--process",
        choices=("poisson", "mmpp", "constant", "closed"),
        default="poisson",
        help="arrival process (closed = fixed client population)",
    )
    p_srv.add_argument(
        "--rate",
        type=float,
        default=0.01,
        help="open-loop arrival rate (requests per simulated time unit)",
    )
    p_srv.add_argument("--clients", type=int, default=1, help="closed-loop clients")
    p_srv.add_argument(
        "--think", type=float, default=0.0, help="closed-loop mean think time"
    )
    p_srv.add_argument("--arrival-seed", type=int, default=0)
    p_srv.add_argument("--t-hit", type=float, default=1.0)
    p_srv.add_argument("--t-miss", type=float, default=100.0)
    p_srv.add_argument(
        "--t-item",
        type=float,
        default=0.0,
        help="transfer cost per extra item in a spatial load",
    )
    p_srv.add_argument(
        "--dist", choices=("deterministic", "exponential"), default="deterministic"
    )
    p_srv.add_argument("--concurrency", type=int, default=1)
    p_srv.add_argument("--queue", choices=("fifo", "sjf"), default="fifo")
    p_srv.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="admission bound on waiting requests (default unbounded)",
    )
    p_srv.add_argument(
        "--queue-timeout",
        type=float,
        default=None,
        help="drop requests whose queue wait exceeds this",
    )

    p_lvl = sub.add_parser(
        "latency-vs-load",
        help="IBLP vs item-LRU tail latency across offered loads",
    )
    p_lvl.add_argument("--capacity", type=int, default=256)
    p_lvl.add_argument(
        "--loads",
        type=lambda s: [float(x) for x in s.split(",")],
        default=None,
        help="comma-separated loads as fractions of all-miss capacity",
    )
    p_lvl.add_argument(
        "--policies",
        type=lambda s: [p.strip() for p in s.split(",") if p.strip()],
        default=None,
        help="comma-separated registry policy names",
    )
    p_lvl.add_argument(
        "--campaign-dir",
        default=None,
        help="memoize serving cells in this campaign directory "
        "(content-addressed incl. the serving config; resumable)",
    )
    p_lvl.add_argument(
        "--shards",
        type=lambda s: [int(x) for x in s.split(",")],
        default=None,
        help="comma-separated shard counts: dispatch requests across an "
        "N-shard cluster at every load point (with --schemes)",
    )
    p_lvl.add_argument(
        "--schemes",
        type=lambda s: [x.strip() for x in s.split(",") if x.strip()],
        default=None,
        help="comma-separated hash schemes for --shards "
        "(default block,item)",
    )

    p_rep = sub.add_parser(
        "report", help="render a telemetry file written by simulate --telemetry"
    )
    p_rep.add_argument("telemetry_file", help="JSONL file from simulate --telemetry")
    p_rep.add_argument(
        "--metric",
        default="miss_ratio",
        choices=("miss_ratio", "spatial_fraction", "mean_load_set_size", "occupancy"),
        help="window metric to plot over time",
    )
    p_rep.add_argument(
        "--no-plot",
        action="store_true",
        help="table and summary only, skip the ASCII time series",
    )

    p_adv = sub.add_parser(
        "adversarial", help="empirical competitive-ratio experiment"
    )
    p_adv.add_argument("--k", type=int, default=256)
    p_adv.add_argument("--h", type=int, default=48)
    p_adv.add_argument("--B", type=int, default=8)
    p_adv.add_argument("--cycles", type=int, default=4)

    p_abl = sub.add_parser("ablation", help="design-choice ablations")
    p_abl.add_argument("--k", type=int, default=256)
    p_abl.add_argument("--B", type=int, default=8)
    p_abl.add_argument(
        "--campaign-dir",
        default=None,
        help="memoize trace-driven simulations in this campaign "
        "directory (rerun after a crash recomputes only missing cells)",
    )
    p_abl.add_argument(
        "--serve-rate",
        type=float,
        default=None,
        help="attach p50/p99 sojourn columns from request-level serving "
        "runs at this Poisson arrival rate (requests per simulated "
        "time unit)",
    )
    p_abl.add_argument(
        "--serve-concurrency",
        type=int,
        default=1,
        help="server concurrency for --serve-rate runs",
    )

    p_prof = sub.add_parser("profile", help="empirical f(n)/g(n) profile")
    p_prof.add_argument("--workload", choices=sorted(_WORKLOADS), required=True)
    p_prof.add_argument("--length", type=int, default=50_000)
    p_prof.add_argument("--universe", type=int, default=4096)
    p_prof.add_argument("--block-size", type=int, default=8)
    p_prof.add_argument("--alpha", type=float, default=1.0)
    p_prof.add_argument("--stay", type=float, default=0.8)
    p_prof.add_argument("--seed", type=int, default=0)

    p_mrc = sub.add_parser(
        "mrc", help="Mattson miss-ratio curve (item and block LRU)"
    )
    p_mrc.add_argument("--workload", choices=sorted(_WORKLOADS), required=True)
    p_mrc.add_argument(
        "--capacities",
        type=lambda s: [int(x) for x in s.split(",")],
        default=[16, 64, 256, 1024],
        help="comma-separated capacities",
    )
    p_mrc.add_argument("--length", type=int, default=50_000)
    p_mrc.add_argument("--universe", type=int, default=4096)
    p_mrc.add_argument("--block-size", type=int, default=8)
    p_mrc.add_argument("--alpha", type=float, default=1.0)
    p_mrc.add_argument("--stay", type=float, default=0.8)
    p_mrc.add_argument("--seed", type=int, default=0)

    p_trc = sub.add_parser(
        "trace",
        help="compiled-trace toolbox: convert, inspect, SHARDS-sample",
    )
    trc_action = p_trc.add_subparsers(dest="trace_action", required=True)
    t_conv = trc_action.add_parser(
        "convert",
        help="stream a trace file into the mmap-able .rtc format "
        "(bounded memory; gzip input OK)",
    )
    t_conv.add_argument("source", help="input trace file")
    t_conv.add_argument("out", help="output .rtc path")
    t_conv.add_argument(
        "--format",
        choices=("text", "msr", "kv"),
        default="text",
        help="input format: repo text traces, MSR-Cambridge block CSV, "
        "or memcached-style key-value CSV",
    )
    t_conv.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="items per block (default: the file's directive, else 1)",
    )
    t_conv.add_argument(
        "--page-bytes",
        type=int,
        default=4096,
        help="bytes per cache item for --format msr offset/size expansion",
    )
    t_conv.add_argument(
        "--densify",
        action="store_true",
        default=None,
        help="rename sparse addresses onto a dense universe, preserving "
        "blocks (default on for msr/kv, off for text)",
    )
    t_conv.add_argument("--limit", type=int, default=None, help="access window size")
    t_conv.add_argument(
        "--offset", type=int, default=0, help="accesses to skip before the window"
    )
    t_conv.add_argument(
        "--sample-rate",
        type=float,
        default=None,
        help="SHARDS-sample blocks at this rate in (0, 1] during conversion",
    )
    t_conv.add_argument("--sample-seed", type=int, default=0)
    t_info = trc_action.add_parser(
        "info", help="print an .rtc header (reads no column data)"
    )
    t_info.add_argument("path", help=".rtc file")
    t_samp = trc_action.add_parser(
        "sample",
        help="SHARDS-sample an .rtc into a smaller .rtc (streaming)",
    )
    t_samp.add_argument("source", help="input .rtc file")
    t_samp.add_argument("out", help="output .rtc path")
    t_samp.add_argument(
        "--rate", type=float, required=True, help="block keep rate in (0, 1]"
    )
    t_samp.add_argument("--seed", type=int, default=0)

    add_campaign_parser(sub)
    add_cluster_parser(sub)
    add_obs_parser(sub)

    sub.add_parser("schematics", help="executable Figures 1 & 4 demo")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    ns = build_parser().parse_args(argv)
    if getattr(ns, "jobs", None) is not None:
        if ns.jobs < 1:
            raise ConfigurationError(f"--jobs must be >= 1, got {ns.jobs}")
        # The env var is the single source of truth every parallel
        # entry point (sweep, campaign runner) already reads.
        os.environ["REPRO_JOBS"] = str(ns.jobs)
    # Handlers return either printable text (exit 0) or a
    # (text, exit_code) tuple — how `campaign status` and
    # `obs bench-compare` signal failure to CI without exceptions.
    out = _dispatch(ns)
    code = 0
    if isinstance(out, tuple):
        out, code = out
    if out:
        print(out)
    return code


def _make_recorder(ns: argparse.Namespace):
    """Build the simulate subcommand's Recorder (None without --telemetry)."""
    if not getattr(ns, "telemetry", None):
        return None
    from repro.telemetry import CSVSink, JSONLSink, Recorder

    sink_cls = CSVSink if ns.telemetry.endswith(".csv") else JSONLSink
    return Recorder(
        window=ns.window,
        sinks=[sink_cls(ns.telemetry)],
        sample_rate=ns.sample_rate,
        sample_seed=ns.seed,
    )


def _render_rtc_info(path: str) -> str:
    from repro.core.rtc import rtc_info

    info = rtc_info(path)
    lines = [f"{info['path']} ({info['file_bytes']:,} bytes)"]
    for key in ("n", "universe", "block_size", "n_distinct", "n_blocks",
                "write_count"):
        lines.append(f"  {key}: {info[key]:,}")
    lines.append(f"  fingerprint: {info['fingerprint']}")
    for section in ("metadata", "conversion"):
        entries = info.get(section) or {}
        if entries:
            lines.append(f"  {section}:")
            for k in sorted(entries):
                lines.append(f"    {k}: {entries[k]}")
    return "\n".join(lines)


def _run_trace_command(ns: argparse.Namespace):
    if ns.trace_action == "convert":
        from repro.workloads.stream import convert_to_rtc

        out = convert_to_rtc(
            ns.source,
            ns.out,
            fmt=ns.format,
            block_size=ns.block_size,
            page_bytes=ns.page_bytes,
            densify=ns.densify,
            limit=ns.limit,
            offset=ns.offset,
            sample_rate=ns.sample_rate,
            sample_seed=ns.sample_seed,
        )
        return _render_rtc_info(str(out))
    if ns.trace_action == "info":
        return _render_rtc_info(ns.path)
    if ns.trace_action == "sample":
        from repro.workloads.stream import sample_rtc

        out = sample_rtc(ns.source, ns.out, rate=ns.rate, seed=ns.seed)
        return _render_rtc_info(str(out))
    raise ConfigurationError(  # pragma: no cover
        f"unknown trace action {ns.trace_action!r}"
    )


def _dispatch(ns: argparse.Namespace):
    # Imports are local so `--help` stays fast.
    from repro.experiments import (
        ablation,
        adversarial,
        figure2,
        figure3,
        figure5,
        figure6,
        schematics,
        table1,
        table2,
    )

    if ns.command == "table":
        if ns.number == 1:
            return table1.render(h=ns.h, B=ns.B)
        return table2.render(p=ns.p, B=ns.B, i=ns.i)
    if ns.command == "figure":
        if ns.number == 2:
            return figure2.render(trials=ns.trials)
        if ns.number == 3:
            return figure3.render(k=ns.k, B=ns.B, points=ns.points)
        if ns.number == 5:
            return figure5.render(B=min(ns.B, 32))
        return figure6.render(k=ns.k, B=ns.B, points=ns.points)
    if ns.command == "simulate":
        recorder = _make_recorder(ns)
        workload_phase = (
            recorder.phase("workload") if recorder is not None else nullcontext()
        )
        with workload_phase:
            if ns.trace_file and ns.trace_file.endswith(".rtc"):
                from repro.core.rtc import open_rtc

                trace = open_rtc(ns.trace_file)
            elif ns.trace_file:
                from repro.workloads.trace_io import read_text_trace

                trace = read_text_trace(
                    ns.trace_file,
                    block_size=ns.block_size,
                    densify=ns.densify,
                ).trace
            else:
                trace = _WORKLOADS[ns.workload](ns)
        policy = make_policy(ns.policy, ns.capacity, trace.mapping)
        result = run_simulation(policy, trace, recorder=recorder, fast=ns.fast)
        out = format_table([result.as_row()], title="simulation result")
        if recorder is not None:
            # `report` reads the JSONL interchange format only, so don't
            # suggest it for CSV telemetry files.
            hint = (
                ""
                if ns.telemetry.endswith(".csv")
                else f"; run `gc-caching report {ns.telemetry}`"
            )
            out += (
                f"\ntelemetry: {ns.telemetry} "
                f"({len(recorder.window_rows)} windows of {ns.window}{hint})"
            )
        return out
    if ns.command == "serve":
        from repro.serving import (
            ArrivalSpec,
            ServiceModel,
            ServingConfig,
            serve_policy,
        )

        trace = _WORKLOADS[ns.workload](ns)
        config = ServingConfig(
            arrival=ArrivalSpec(
                process=ns.process,
                rate=ns.rate,
                seed=ns.arrival_seed,
                clients=ns.clients,
                think=ns.think,
            ),
            service=ServiceModel(
                t_hit=ns.t_hit,
                t_miss=ns.t_miss,
                t_item=ns.t_item,
                dist=ns.dist,
                seed=ns.seed,
            ),
            concurrency=ns.concurrency,
            queue=ns.queue,
            queue_limit=ns.queue_limit,
            timeout=ns.queue_timeout,
        )
        result = serve_policy(ns.policy, ns.capacity, trace, config)
        row = result.as_row()
        cache_cols = {
            k: row[k]
            for k in ("policy", "capacity", "miss_ratio", "spatial_fraction")
        }
        serve_cols = {
            k: row[k]
            for k in (
                "arrivals",
                "completions",
                "dropped_admission",
                "dropped_timeout",
                "throughput",
                "utilization",
                "mean_latency",
                "p50",
                "p99",
                "p999",
            )
        }
        return (
            format_table([cache_cols], title="cache behaviour")
            + "\n"
            + format_table([serve_cols], title="serving behaviour")
        )
    if ns.command == "latency-vs-load":
        from repro.campaign import open_cache
        from repro.experiments import latency_vs_load

        kwargs = {"capacity": ns.capacity}
        if ns.loads:
            kwargs["loads"] = ns.loads
        if ns.policies:
            kwargs["policies"] = ns.policies
        if ns.shards:
            from repro.cluster import ClusterSpec

            schemes = ns.schemes or ["block", "item"]
            kwargs["clusters"] = [
                ClusterSpec(n_shards=n, scheme=scheme)
                for scheme in schemes
                for n in ns.shards
            ]
        cache = open_cache(ns.campaign_dir)
        if cache is None:
            return latency_vs_load.render(**kwargs)
        with cache:
            return latency_vs_load.render(cache=cache, **kwargs)
    if ns.command == "report":
        from repro.telemetry.report import load_telemetry, render_report

        log = load_telemetry(ns.telemetry_file)
        return render_report(log, metric=ns.metric, plot=not ns.no_plot)
    if ns.command == "adversarial":
        return adversarial.render(k=ns.k, h=ns.h, B=ns.B, cycles=ns.cycles)
    if ns.command == "ablation":
        from repro.campaign import open_cache

        serving = None
        if ns.serve_rate is not None:
            from repro.serving import ArrivalSpec, ServingConfig

            serving = ServingConfig(
                arrival=ArrivalSpec(rate=ns.serve_rate),
                concurrency=ns.serve_concurrency,
            )
        cache = open_cache(ns.campaign_dir)
        if cache is None:
            return ablation.render(k=ns.k, B=ns.B, serving=serving)
        with cache:
            return ablation.render(k=ns.k, B=ns.B, cache=cache, serving=serving)
    if ns.command == "profile":
        trace = _WORKLOADS[ns.workload](ns)
        profile = profile_trace(trace)
        c, p, gamma = profile.fit_polynomial()
        rows = [
            {
                "n": int(n),
                "f(n)": int(f),
                "g(n)": int(g),
                "f/g": float(f) / max(int(g), 1),
            }
            for n, f, g in zip(
                profile.windows, profile.f_values, profile.g_values
            )
        ]
        fit = f"\npolynomial fit: f(n) ~= {c:.3g} * n^(1/{p:.3g}), gamma ~= {gamma:.3g}"
        return format_table(rows, title="locality profile") + fit
    if ns.command == "mrc":
        from repro.analysis.mrc import (
            block_lru_stack_distances,
            lru_stack_distances,
            miss_ratio_curve,
        )

        trace = _WORKLOADS[ns.workload](ns)
        caps = sorted(set(ns.capacities))
        item_curve = dict(
            miss_ratio_curve(lru_stack_distances(trace.items), caps)
        )
        block_slots = sorted(
            {max(1, c // trace.block_size) for c in caps}
        )
        block_curve = dict(
            miss_ratio_curve(block_lru_stack_distances(trace), block_slots)
        )
        rows = [
            {
                "capacity": c,
                "item_lru_miss_ratio": item_curve[c],
                "block_lru_miss_ratio": block_curve[
                    max(1, c // trace.block_size)
                ],
            }
            for c in caps
        ]
        return format_table(
            rows, title=f"Mattson MRC ({ns.workload}, B={trace.block_size})"
        )
    if ns.command == "trace":
        return _run_trace_command(ns)
    if ns.command == "campaign":
        return run_campaign_command(ns)
    if ns.command == "cluster":
        return run_cluster_command(ns)
    if ns.command == "obs":
        return run_obs_command(ns)
    if ns.command == "schematics":
        return schematics.render()
    raise ConfigurationError(f"unknown command {ns.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

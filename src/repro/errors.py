"""Exception hierarchy for the GC caching library.

Every error raised by this package derives from :class:`GCCachingError`,
so callers can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from protocol
violations detected by the simulation engine's referee.
"""

from __future__ import annotations

__all__ = [
    "GCCachingError",
    "ConfigurationError",
    "ProtocolViolation",
    "CapacityExceeded",
    "IllegalLoadSet",
    "SweepCellError",
    "TraceFormatError",
    "SolverError",
]


class GCCachingError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(GCCachingError, ValueError):
    """Invalid parameters (non-positive capacity, bad block size, ...)."""


class ProtocolViolation(GCCachingError):
    """A policy produced an action that violates the GC caching model.

    The simulation engine re-validates every policy decision against
    Definition 1 of the paper; any discrepancy (loading items outside
    the requested block, claiming a hit for a non-resident item,
    exceeding capacity) raises a subclass of this error rather than
    silently producing wrong statistics.
    """


class CapacityExceeded(ProtocolViolation):
    """Cache occupancy exceeded the configured capacity ``k``."""


class IllegalLoadSet(ProtocolViolation):
    """A miss loaded a set that is not a valid subset of the block.

    Definition 1 requires the loaded set to (a) be contained in the
    requested item's block and (b) contain the requested item.
    """


class SweepCellError(GCCachingError, RuntimeError):
    """A sweep worker failed; carries the failing cell's parameters.

    A bare exception surfacing from a parallel sweep says nothing
    about *which* grid cell died; this wrapper pins the cell's kwargs
    to the message (and keeps the original exception as
    ``__cause__``).
    """

    def __init__(self, message: str, cell: dict | None = None) -> None:
        super().__init__(message)
        #: The kwargs of the cell whose worker raised.
        self.cell = dict(cell or {})


class TraceFormatError(GCCachingError, ValueError):
    """A trace array or file does not satisfy the expected format."""


class SolverError(GCCachingError, RuntimeError):
    """An offline solver or LP optimizer failed to produce a solution."""

"""The referee simulation engine.

:func:`simulate` drives a policy over a trace while maintaining an
independent *shadow* copy of the cache contents.  Every policy action
is validated against the Granularity-Change Caching model
(Definition 1):

* a claimed hit must be to a shadow-resident item;
* a miss must load a set that is a subset of the requested item's
  block and contains the item;
* loaded items must not already be resident; evicted items must be;
* occupancy never exceeds the capacity ``k``.

Violations raise :class:`~repro.errors.ProtocolViolation` subclasses
instead of silently producing wrong statistics — policies cannot
cheat, which keeps the empirical competitive-ratio results honest.

The engine also classifies hits into *temporal* and *spatial* per §2:
the first hit to an item whose residency was created by a different
item's miss is spatial; every other hit is temporal.

Observability
-------------
Two opt-in observation channels exist; both are strictly read-only and
cost a single ``is not None`` branch per access when unused:

* ``on_access(pos, item, kind)`` — a lightweight per-access callback.
  **Contract:** it is invoked *after* the engine's shadow state and
  statistics are updated for that access, in trace order, and receives
  only immutable values (two ``int``\\ s and a :class:`HitKind`), so an
  observer cannot corrupt engine state through its arguments.
  Observers must not mutate the policy or the engine; they run before
  any ``cross_check_every`` reconciliation scheduled for the same
  position, and exceptions they raise propagate to the caller.
* ``recorder`` — a :class:`repro.telemetry.Recorder` receiving the
  full referee-classified outcome (item, block, kind, load/evict set
  sizes, occupancy) for windowed metrics, event tracing, and sink
  fan-out.  The engine hands it frozen sets and ints only; see
  :mod:`repro.telemetry`.

With neither channel configured, ``simulate`` behaves byte-identically
to the uninstrumented engine — validation semantics and results are
unchanged.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Dict, Optional, Set

from repro.core.trace import Trace
from repro.errors import CapacityExceeded, IllegalLoadSet, ProtocolViolation
from repro.telemetry import spans
from repro.types import AccessOutcome, HitKind, SimResult

__all__ = ["Engine", "simulate"]


class Engine:
    """Stateful referee wrapping a policy.

    Useful when an adversary needs to interleave trace generation with
    simulation; for plain trace replay use :func:`simulate`.
    """

    def __init__(
        self, policy, mapping=None, validate: bool = True, recorder=None
    ) -> None:
        self.policy = policy
        self.mapping = mapping if mapping is not None else policy.mapping
        self.validate = validate
        #: Optional :class:`repro.telemetry.Recorder`; ``None`` keeps
        #: the access path uninstrumented (one branch per access).
        self.recorder = recorder
        self.resident: Set[int] = set()
        #: The :class:`AccessOutcome` of the most recent :meth:`access`
        #: (``None`` before the first).  Lets per-access observers —
        #: e.g. size-aware serving, which weighs each loaded item by
        #: its value size — see the exact load set without the engine
        #: growing a heavier callback surface.
        self.last_outcome: Optional[AccessOutcome] = None
        #: items currently resident that were loaded as a side effect of
        #: another item's miss and have not been hit since.
        self._spatial_pending: Set[int] = set()
        self.result = SimResult(
            policy=getattr(policy, "name", type(policy).__name__),
            capacity=policy.capacity,
        )

    def access(self, item: int) -> HitKind:
        """Serve one request; update statistics; return the hit kind."""
        shadow_hit = item in self.resident
        outcome: AccessOutcome = self.policy.access(item)
        self.last_outcome = outcome
        if self.validate:
            self._validate(item, outcome, shadow_hit)
        self._apply(outcome)
        kind = self._classify(item, shadow_hit)
        res = self.result
        res.accesses += 1
        if kind is HitKind.MISS:
            res.misses += 1
            res.loaded_items += len(outcome.loaded)
        elif kind is HitKind.SPATIAL_HIT:
            res.spatial_hits += 1
        else:
            res.temporal_hits += 1
        res.evicted_items += len(outcome.evicted)
        recorder = self.recorder
        if recorder is not None:
            recorder.on_access(
                item,
                self.mapping.block_of(item),
                kind,
                outcome.loaded,
                outcome.evicted,
                len(self.resident),
            )
        return kind

    # -- internals ---------------------------------------------------------
    def _validate(self, item: int, outcome: AccessOutcome, shadow_hit: bool) -> None:
        if outcome.item != item:
            raise ProtocolViolation(
                f"policy answered for item {outcome.item}, asked {item}"
            )
        if outcome.hit != shadow_hit:
            raise ProtocolViolation(
                f"policy claims {'hit' if outcome.hit else 'miss'} on item "
                f"{item} but shadow state says otherwise"
            )
        if not outcome.hit:
            block_items = set(self.mapping.items_in(self.mapping.block_of(item)))
            if not outcome.loaded <= block_items:
                raise IllegalLoadSet(
                    f"loaded {sorted(outcome.loaded - block_items)} outside "
                    f"block of item {item}"
                )
            if item not in outcome.loaded:
                raise IllegalLoadSet(f"miss on {item} did not load it")
            already = outcome.loaded & self.resident
            if already:
                raise ProtocolViolation(
                    f"loaded already-resident items {sorted(already)}"
                )
        not_resident = outcome.evicted - self.resident
        if not_resident:
            raise ProtocolViolation(
                f"evicted non-resident items {sorted(not_resident)}"
            )
        if outcome.evicted & outcome.loaded:
            raise ProtocolViolation("an item was both loaded and evicted")
        new_size = len(self.resident) + len(outcome.loaded) - len(outcome.evicted)
        if new_size > self.policy.capacity:
            raise CapacityExceeded(
                f"occupancy {new_size} exceeds capacity {self.policy.capacity}"
            )

    def _apply(self, outcome: AccessOutcome) -> None:
        self.resident -= outcome.evicted
        self._spatial_pending -= outcome.evicted
        self.resident |= outcome.loaded
        if not outcome.hit:
            # Side-loaded items are spatial-hit candidates; the missed
            # item itself is not (its next hit is temporal).
            for it in outcome.loaded:
                if it != outcome.item:
                    self._spatial_pending.add(it)
                else:
                    self._spatial_pending.discard(it)

    def _classify(self, item: int, shadow_hit: bool) -> HitKind:
        if not shadow_hit:
            return HitKind.MISS
        if item in self._spatial_pending:
            self._spatial_pending.discard(item)
            return HitKind.SPATIAL_HIT
        return HitKind.TEMPORAL_HIT

    def cross_check(self) -> None:
        """Assert policy-reported residency matches the shadow state."""
        reported = self.policy.resident_items()
        if set(reported) != self.resident:
            extra = sorted(set(reported) - self.resident)
            missing = sorted(self.resident - set(reported))
            raise ProtocolViolation(
                f"residency mismatch: policy extra={extra} missing={missing}"
            )


def simulate(
    policy,
    trace: Trace,
    validate: bool = True,
    cross_check_every: int = 0,
    on_access: Optional[Callable[[int, int, HitKind], None]] = None,
    recorder=None,
    fast: bool = False,
) -> SimResult:
    """Run ``policy`` over ``trace`` and return aggregate statistics.

    Parameters
    ----------
    policy:
        A :class:`~repro.policies.base.Policy`.  Offline policies are
        automatically ``prepare``-d with the trace.
    trace:
        The request trace; its mapping must match the policy's.
    validate:
        Referee-validate every action (disable only in throughput
        benchmarks, where the policy under test is already trusted).
    cross_check_every:
        If > 0, additionally reconcile the policy's full residency set
        with the shadow state every N accesses (O(k) each time).
    on_access:
        Optional observer ``(position, item, kind)`` called per access,
        after engine state is updated and before any cross-check at the
        same position; receives immutable values only and must not
        mutate the policy or engine (see the module docstring).
    recorder:
        Optional :class:`repro.telemetry.Recorder`.  The run is timed
        as a ``"simulate"`` phase and the recorder is finalized (its
        sinks flushed and closed) before returning.  Telemetry never
        alters the returned :class:`SimResult`.
    fast:
        Replay through a validation-free kernel from
        :mod:`repro.core.fast` when one covers this policy; the
        conformance harness (:mod:`repro.core.conformance`) proves the
        kernels bit-identical to the referee, so the returned
        :class:`SimResult` is the same object it would be either way.
        Falls back to the referee automatically for unsupported
        policies, warm policies, or when observation/reconciliation
        (``on_access``, ``recorder``, ``cross_check_every``) is
        requested.  Unlike the referee, the kernel does not mutate
        ``policy``.  When the fallback happens, the reason is no longer
        silent: it is emitted as a ``fast.fallback`` span and surfaced
        on :attr:`SimResult.fallback_reason` (``"unsupported-policy"``,
        ``"mapping-mismatch"``, ``"warm-policy"``, or ``"observed"``).

    Returns
    -------
    SimResult
    """
    if trace.mapping is not policy.mapping and (
        trace.mapping.universe != policy.mapping.universe
        or trace.mapping.max_block_size != policy.mapping.max_block_size
    ):
        raise ProtocolViolation("trace and policy use different block mappings")
    fallback_reason = None
    if fast:
        if on_access is not None or recorder is not None or cross_check_every:
            fallback_reason = "observed"
        else:
            from repro.core.fast import fast_fallback_reason, fast_simulate

            result = fast_simulate(policy, trace)
            if result is not None:
                return result
            fallback_reason = fast_fallback_reason(policy, trace)
        with spans.span(
            "fast.fallback",
            policy=policy.name,
            reason=fallback_reason or "unknown",
        ):
            pass
    if policy.is_offline:
        policy.prepare(trace)
    engine = Engine(policy, trace.mapping, validate=validate, recorder=recorder)
    engine.result.fallback_reason = fallback_reason
    engine.result.metadata.update(
        {k: v for k, v in trace.metadata.items() if isinstance(v, (str, int, float))}
    )
    items = trace.items.tolist()
    with nullcontext() if recorder is None else recorder.phase("simulate"):
        for pos, item in enumerate(items):
            kind = engine.access(item)
            if on_access is not None:
                on_access(pos, item, kind)
            if cross_check_every and (pos + 1) % cross_check_every == 0:
                engine.cross_check()
        if cross_check_every:
            engine.cross_check()
    if recorder is not None:
        recorder.finalize(engine.result)
    return engine.result


def miss_counts(policies: Dict[str, object], trace: Trace, **kwargs) -> Dict[str, int]:
    """Convenience: misses per named policy over the same trace."""
    return {name: simulate(p, trace, **kwargs).misses for name, p in policies.items()}

"""Memory-mapped compiled-trace files (``.rtc``).

An ``.rtc`` file is the on-disk twin of :class:`repro.core.fast.CompiledTrace`:
numpy-backed columns (``items``, ``blocks``, ``dense``, ``ops``) plus the
distinct-id tables, behind a small JSON header that records the trace
geometry and its content fingerprint.  The point of the format is that
*nothing* has to be materialized to replay it:

* :func:`open_rtc` wraps the columns in ``np.memmap`` views and returns a
  :class:`MmapTrace` — a :class:`~repro.core.trace.Trace` whose ``items``
  array is the mapped file.  The fast kernels, ``multi_capacity_replay``
  and ``multi_policy_replay`` all run directly over the mapping; the OS
  page cache is the only "copy".
* The header fingerprint is the exact ``trace-v1`` recipe from
  :meth:`Trace.fingerprint`, computed incrementally by the writer, so an
  mmap-backed trace content-addresses identically to its in-memory twin
  (campaign cells memoize across the two representations).
* For campaign workers the mmap *is* the arena: an
  :class:`~repro.core.arena.ArenaHandle` with ``kind="rtc"`` ships only
  the path, and every worker attaches by mapping the same file.

Layout (little-endian)::

    b"RTC1" | uint32 header_len | header JSON | pad | columns...

Columns follow in a fixed order — ``items`` (int64), ``blocks`` (int64),
``dense`` (int64), ``ops`` (uint8), ``unique_items`` (int64),
``unique_blocks`` (int64) — each aligned to a 64-byte boundary, so the
header needs no offset table: offsets derive from the counts.

Only :class:`~repro.core.mapping.FixedBlockMapping` traces are
representable (``blocks[i] == items[i] // block_size``); explicit
mappings stay in-memory.

Compile-memo interaction: the fast path's compile memo normally keys on
the content fingerprint, but for mmap traces the fingerprint is *read
from the header* (trusted, validated at convert time) — editing column
bytes in place would not change it.  :func:`file_memo_key` therefore
digests the header bytes together with ``st_mtime_ns`` and ``st_size``,
and :func:`open_rtc` plants it as ``trace._memo_key`` so a modified file
can never be served a stale compilation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError, TraceFormatError

__all__ = [
    "RTC_MAGIC",
    "RTC_VERSION",
    "MmapTrace",
    "RtcFile",
    "RtcWriter",
    "file_memo_key",
    "open_rtc",
    "rtc_info",
    "trace_to_rtc",
]

RTC_MAGIC = b"RTC1"
RTC_VERSION = 1

#: Accesses per chunk for streaming writes/reads (bounded memory).
DEFAULT_CHUNK = 65536

_ALIGN = 64

_I8 = np.dtype("<i8")
_U1 = np.dtype("<u1")


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def _column_offsets(header_end: int, n: int, n_distinct: int, n_blocks: int) -> Dict[str, int]:
    """Column offsets derived from the counts (fixed order, 64-aligned)."""
    offsets: Dict[str, int] = {}
    pos = _align(header_end)
    for name, nbytes in (
        ("items", n * 8),
        ("blocks", n * 8),
        ("dense", n * 8),
        ("ops", n * 1),
        ("unique_items", n_distinct * 8),
        ("unique_blocks", n_blocks * 8),
    ):
        offsets[name] = pos
        pos = _align(pos + nbytes)
    offsets["end"] = pos
    return offsets


class MmapTrace(Trace):
    """A :class:`Trace` whose ``items`` column is an ``np.memmap``.

    Construction skips the full min/max range scan that
    ``Trace.__post_init__`` performs — the converter validated every
    chunk when the file was written — so opening a multi-gigabyte trace
    touches only the header page.  ``_fp`` is planted from the header
    (the writer computed the exact ``trace-v1`` recipe incrementally)
    and ``_memo_key`` from :func:`file_memo_key`.
    """

    def __post_init__(self) -> None:
        if self.items.ndim != 1:
            raise TraceFormatError("trace items must be one-dimensional")
        self._fp: Optional[str] = None


class RtcFile:
    """Read-side view of an ``.rtc`` file: header dict + memmap columns."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            magic = fh.read(4)
            if magic != RTC_MAGIC:
                raise TraceFormatError(
                    f"{self.path}: not an .rtc file (bad magic {magic!r})"
                )
            (header_len,) = np.frombuffer(fh.read(4), dtype="<u4")
            self.header_bytes = fh.read(int(header_len))
            if len(self.header_bytes) != int(header_len):
                raise TraceFormatError(f"{self.path}: truncated header")
        try:
            self.header = json.loads(self.header_bytes.decode("utf-8"))
        except ValueError as exc:
            raise TraceFormatError(f"{self.path}: corrupt header JSON") from exc
        if self.header.get("version") != RTC_VERSION:
            raise TraceFormatError(
                f"{self.path}: unsupported rtc version "
                f"{self.header.get('version')!r} (expected {RTC_VERSION})"
            )
        st = os.stat(self.path)
        self.size = st.st_size
        self.mtime_ns = st.st_mtime_ns
        n = int(self.header["n"])
        n_distinct = int(self.header["n_distinct"])
        n_blocks = int(self.header["n_blocks"])
        offsets = _column_offsets(8 + int(header_len), n, n_distinct, n_blocks)
        if self.size < offsets["end"]:
            raise TraceFormatError(
                f"{self.path}: truncated columns "
                f"(need {offsets['end']} bytes, have {self.size})"
            )
        self.n = n
        self.items = self._map("items", offsets, _I8, n)
        self.blocks = self._map("blocks", offsets, _I8, n)
        self.dense = self._map("dense", offsets, _I8, n)
        self.ops = self._map("ops", offsets, _U1, n)
        self.unique_items = self._map("unique_items", offsets, _I8, n_distinct)
        self.unique_blocks = self._map("unique_blocks", offsets, _I8, n_blocks)

    def _map(self, name: str, offsets: Dict[str, int], dtype: np.dtype, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(self.path, dtype=dtype, mode="r", offset=offsets[name], shape=(count,))

    @property
    def fingerprint(self) -> str:
        return str(self.header["fingerprint"])


class RtcWriter:
    """Incremental one-pass ``.rtc`` writer with bounded memory.

    ``append()`` streams access chunks to sibling spill files while
    accumulating the distinct-id table and the incremental ``trace-v1``
    fingerprint; ``finalize()`` runs one chunked pass over the spilled
    items to compute the dense column, then assembles the final file and
    atomically renames it into place.  Peak memory is O(chunk +
    distinct), never O(n).
    """

    def __init__(
        self,
        path: str | Path,
        block_size: int,
        metadata: Optional[dict] = None,
        conversion: Optional[dict] = None,
        chunk: int = DEFAULT_CHUNK,
    ):
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.block_size = int(block_size)
        self.metadata = dict(metadata or {})
        self.conversion = dict(conversion or {})
        self.chunk = max(1, int(chunk))
        self._n = 0
        self._write_count = 0
        self._max_item = -1
        self._unique = np.empty(0, dtype=np.int64)
        self._hash = hashlib.sha256(b"trace-v1\x00")
        self._tmp = {
            name: self.path.with_name(self.path.name + f".tmp-{name}")
            for name in ("items", "blocks", "ops")
        }
        self._files: Dict[str, BinaryIO] = {
            name: open(p, "wb") for name, p in self._tmp.items()
        }
        self._finalized = False

    def append(self, items: np.ndarray, writes: Optional[np.ndarray] = None) -> None:
        """Append one chunk of accesses (and optional write flags)."""
        if self._finalized:
            raise ConfigurationError("RtcWriter already finalized")
        arr = np.ascontiguousarray(items, dtype=np.int64)
        if arr.ndim != 1:
            raise ConfigurationError("items chunk must be 1-D")
        if arr.size == 0:
            return
        if int(arr.min()) < 0:
            raise TraceFormatError("item ids must be non-negative")
        self._hash.update(arr.tobytes())
        self._files["items"].write(arr.astype(_I8, copy=False).tobytes())
        blocks = arr // self.block_size
        self._files["blocks"].write(blocks.astype(_I8, copy=False).tobytes())
        if writes is None:
            ops = np.zeros(arr.size, dtype=_U1)
        else:
            ops = np.ascontiguousarray(writes).astype(bool).astype(_U1)
            if ops.size != arr.size:
                raise ConfigurationError("writes chunk must match items chunk")
        self._write_count += int(ops.sum())
        self._files["ops"].write(ops.tobytes())
        self._unique = np.union1d(self._unique, arr)
        self._max_item = max(self._max_item, int(arr.max()))
        self._n += arr.size

    def abort(self) -> None:
        """Close and remove spill files without producing an output."""
        for fh in self._files.values():
            try:
                fh.close()
            except OSError:
                pass
        for p in self._tmp.values():
            p.unlink(missing_ok=True)
        self._finalized = True

    def finalize(self, universe: Optional[int] = None) -> Path:
        """Complete the file and rename it into place; returns the path."""
        if self._finalized:
            raise ConfigurationError("RtcWriter already finalized")
        if self._n == 0:
            self.abort()
            raise TraceFormatError(f"{self.path}: no accesses to write")
        for fh in self._files.values():
            fh.close()
        top = self._max_item + 1
        if universe is None:
            universe = -(-top // self.block_size) * self.block_size
        universe = int(universe)
        if universe < top:
            self.abort()
            raise TraceFormatError(
                f"{self.path}: universe {universe} smaller than max item {top - 1}"
            )
        # Finish the trace-v1 recipe exactly as Trace.fingerprint() does.
        self._hash.update(b"\x00mapping\x00")
        self._hash.update(f"fixed:{universe}:{self.block_size}".encode())
        fingerprint = self._hash.hexdigest()

        unique_blocks = np.unique(self._unique // self.block_size)
        header = {
            "format": "rtc",
            "version": RTC_VERSION,
            "n": self._n,
            "universe": universe,
            "block_size": self.block_size,
            "n_distinct": int(self._unique.size),
            "n_blocks": int(unique_blocks.size),
            "write_count": self._write_count,
            "fingerprint": fingerprint,
            "metadata": self.metadata,
            "conversion": self.conversion,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        offsets = _column_offsets(
            8 + len(header_bytes), self._n, int(self._unique.size), int(unique_blocks.size)
        )

        # Chunked pass over the spilled items to emit the dense column.
        dense_tmp = self.path.with_name(self.path.name + ".tmp-dense")
        items_mm = np.memmap(self._tmp["items"], dtype=_I8, mode="r", shape=(self._n,))
        with open(dense_tmp, "wb") as dense_f:
            for lo in range(0, self._n, self.chunk):
                seg = np.asarray(items_mm[lo : lo + self.chunk])
                dense_f.write(np.searchsorted(self._unique, seg).astype(_I8).tobytes())
        del items_mm

        final_tmp = self.path.with_name(self.path.name + ".tmp-final")
        try:
            with open(final_tmp, "wb") as out:
                out.write(RTC_MAGIC)
                out.write(len(header_bytes).to_bytes(4, "little"))
                out.write(header_bytes)
                copy_chunk = max(self.chunk * 8, 1 << 20)
                for name, src in (
                    ("items", self._tmp["items"]),
                    ("blocks", self._tmp["blocks"]),
                    ("dense", dense_tmp),
                    ("ops", self._tmp["ops"]),
                ):
                    out.write(b"\x00" * (offsets[name] - out.tell()))
                    with open(src, "rb") as fh:
                        while True:
                            buf = fh.read(copy_chunk)
                            if not buf:
                                break
                            out.write(buf)
                out.write(b"\x00" * (offsets["unique_items"] - out.tell()))
                out.write(self._unique.astype(_I8, copy=False).tobytes())
                out.write(b"\x00" * (offsets["unique_blocks"] - out.tell()))
                out.write(unique_blocks.astype(_I8, copy=False).tobytes())
                out.write(b"\x00" * (offsets["end"] - out.tell()))
            os.replace(final_tmp, self.path)
        finally:
            final_tmp.unlink(missing_ok=True)
            dense_tmp.unlink(missing_ok=True)
            for p in self._tmp.values():
                p.unlink(missing_ok=True)
        self._finalized = True
        return self.path


def file_memo_key(path: str | Path, header_bytes: Optional[bytes] = None) -> str:
    """Compile-memo key for an on-disk trace: header digest + mtime + size.

    The content fingerprint alone is unsafe for mmap traces (it is read
    from the header, so editing column bytes leaves it unchanged); the
    mtime/size pair ties the memo entry to this revision of the file.
    """
    path = Path(path)
    st = os.stat(path)
    if header_bytes is None:
        with open(path, "rb") as fh:
            magic = fh.read(4)
            if magic != RTC_MAGIC:
                raise TraceFormatError(f"{path}: not an .rtc file (bad magic {magic!r})")
            (header_len,) = np.frombuffer(fh.read(4), dtype="<u4")
            header_bytes = fh.read(int(header_len))
    h = hashlib.sha256(b"rtc-memo\x00")
    h.update(header_bytes)
    h.update(f":{st.st_mtime_ns}:{st.st_size}".encode())
    return h.hexdigest()


def open_rtc(path: str | Path) -> MmapTrace:
    """Open an ``.rtc`` file as a zero-copy :class:`MmapTrace`."""
    rtc = RtcFile(path)
    mapping = FixedBlockMapping(
        universe=int(rtc.header["universe"]),
        block_size=int(rtc.header["block_size"]),
    )
    trace = MmapTrace(rtc.items, mapping, dict(rtc.header.get("metadata", {})))
    trace._rtc = rtc
    trace._fp = rtc.fingerprint
    trace._memo_key = file_memo_key(rtc.path, rtc.header_bytes)
    return trace


def rtc_info(path: str | Path) -> dict:
    """Header + file stats for ``trace info`` (touches only the header)."""
    rtc = RtcFile(path)
    info = dict(rtc.header)
    info["path"] = str(rtc.path)
    info["file_bytes"] = rtc.size
    return info


def trace_to_rtc(
    trace: Trace,
    path: str | Path,
    writes: Optional[np.ndarray] = None,
    chunk: int = DEFAULT_CHUNK,
) -> Path:
    """Convert an in-memory trace to ``.rtc`` (chunked; metadata preserved).

    The resulting file fingerprints identically to ``trace``, so
    campaign cells memoize across the two representations.
    """
    if not isinstance(trace.mapping, FixedBlockMapping):
        raise ConfigurationError(
            "rtc files support FixedBlockMapping traces only "
            f"(got {type(trace.mapping).__name__})"
        )
    writer = RtcWriter(
        path,
        block_size=trace.mapping.max_block_size,
        metadata=dict(trace.metadata),
        conversion={"source": "in-memory", "generator": "trace_to_rtc"},
        chunk=chunk,
    )
    try:
        items = np.asarray(trace.items)
        for lo in range(0, items.size, writer.chunk):
            seg_writes = None if writes is None else writes[lo : lo + writer.chunk]
            writer.append(items[lo : lo + writer.chunk], seg_writes)
        return writer.finalize(universe=trace.mapping.universe)
    except BaseException:
        if not writer._finalized:
            writer.abort()
        raise

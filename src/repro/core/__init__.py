"""Core model of the Granularity-Change Caching Problem (§2).

* :mod:`repro.core.mapping` — item→block partitions (Definition 1's
  block structure).
* :mod:`repro.core.trace` — request traces with attached mapping and
  metadata, plus (de)serialization.
* :mod:`repro.core.engine` — the referee simulator: drives a policy
  over a trace, validates every action against the model, and
  classifies hits into temporal vs spatial.
* :mod:`repro.core.readwrite` — read/write traces and write-back
  accounting (extension beyond the paper's read-only scope).
* :mod:`repro.core.fast` — validation-free replay kernels behind
  ``simulate(..., fast=True)``.
* :mod:`repro.core.conformance` — the differential harness proving
  the kernels bit-identical to the referee.
"""

from repro.core.mapping import BlockMapping, FixedBlockMapping, ExplicitBlockMapping
from repro.core.trace import Trace
from repro.core.engine import simulate, Engine
from repro.core.readwrite import (
    RWTrace,
    WritebackSimulator,
    WritebackStats,
    make_rw_trace,
)
from repro.core.fast import (
    FAST_POLICY_NAMES,
    CompiledTrace,
    compile_trace,
    fast_fallback_reason,
    fast_simulate,
    multi_capacity_replay,
    multi_capacity_supported,
    multi_policy_replay,
    multi_policy_supported,
)
from repro.core.conformance import (
    ConformanceReport,
    assert_conformant,
    check_conformance,
    conformance_suite,
)

__all__ = [
    "BlockMapping",
    "FixedBlockMapping",
    "ExplicitBlockMapping",
    "Trace",
    "simulate",
    "Engine",
    "CompiledTrace",
    "compile_trace",
    "fast_simulate",
    "fast_fallback_reason",
    "multi_capacity_replay",
    "multi_capacity_supported",
    "multi_policy_replay",
    "multi_policy_supported",
    "FAST_POLICY_NAMES",
    "ConformanceReport",
    "check_conformance",
    "assert_conformant",
    "conformance_suite",
    "RWTrace",
    "WritebackSimulator",
    "WritebackStats",
    "make_rw_trace",
]

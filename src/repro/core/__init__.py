"""Core model of the Granularity-Change Caching Problem (§2).

* :mod:`repro.core.mapping` — item→block partitions (Definition 1's
  block structure).
* :mod:`repro.core.trace` — request traces with attached mapping and
  metadata, plus (de)serialization.
* :mod:`repro.core.engine` — the referee simulator: drives a policy
  over a trace, validates every action against the model, and
  classifies hits into temporal vs spatial.
* :mod:`repro.core.readwrite` — read/write traces and write-back
  accounting (extension beyond the paper's read-only scope).
"""

from repro.core.mapping import BlockMapping, FixedBlockMapping, ExplicitBlockMapping
from repro.core.trace import Trace
from repro.core.engine import simulate, Engine
from repro.core.readwrite import (
    RWTrace,
    WritebackSimulator,
    WritebackStats,
    make_rw_trace,
)

__all__ = [
    "BlockMapping",
    "FixedBlockMapping",
    "ExplicitBlockMapping",
    "Trace",
    "simulate",
    "Engine",
    "RWTrace",
    "WritebackSimulator",
    "WritebackStats",
    "make_rw_trace",
]

"""Item→block partitions (the block structure of Definition 1).

A mapping assigns every item a block id such that no block holds more
than ``B`` items.  Two concrete mappings are provided:

* :class:`FixedBlockMapping` — the common aligned layout
  ``block = item // B`` (e.g. 64-byte lines inside a 4 KB DRAM row).
* :class:`ExplicitBlockMapping` — an arbitrary partition given as an
  array, supporting ragged blocks of size ≤ B (needed by the §3
  NP-completeness reduction, whose blocks have varying *active set*
  sizes).

Mappings are immutable and cheap to share between traces, policies and
adversaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BlockMapping", "FixedBlockMapping", "ExplicitBlockMapping"]


class BlockMapping:
    """Abstract base: a partition of items ``0..universe-1`` into blocks.

    Subclasses must set ``universe`` (number of items), ``num_blocks``
    and ``max_block_size`` (the model's ``B``), and implement
    :meth:`block_of` and :meth:`items_in`.
    """

    universe: int
    num_blocks: int
    max_block_size: int

    def block_of(self, item: int) -> int:
        """Block id of ``item``."""
        raise NotImplementedError

    def items_in(self, block: int) -> Tuple[int, ...]:
        """All items of ``block``, ascending."""
        raise NotImplementedError

    def blocks_of(self, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_of` over an ``int64`` array."""
        return np.fromiter(
            (self.block_of(int(i)) for i in items), dtype=np.int64, count=len(items)
        )

    def block_size(self, block: int) -> int:
        """Number of items in ``block``."""
        return len(self.items_in(block))

    def validate_item(self, item: int) -> None:
        """Raise :class:`ConfigurationError` unless ``item`` is in range."""
        if not 0 <= item < self.universe:
            raise ConfigurationError(
                f"item {item} outside universe [0, {self.universe})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(universe={self.universe}, "
            f"num_blocks={self.num_blocks}, B={self.max_block_size})"
        )


class FixedBlockMapping(BlockMapping):
    """Aligned blocks of exactly ``B`` items: ``block = item // B``.

    The last block may be partial if ``universe`` is not a multiple of
    ``B``.  With ``B == 1`` the model degenerates to traditional
    caching (every item its own block), which the paper notes and
    tests rely on.
    """

    def __init__(self, universe: int, block_size: int) -> None:
        if universe < 1:
            raise ConfigurationError(f"universe must be >= 1, got {universe}")
        if block_size < 1:
            raise ConfigurationError(f"block size must be >= 1, got {block_size}")
        self.universe = universe
        self.max_block_size = block_size
        self.num_blocks = -(-universe // block_size)  # ceil division

    def block_of(self, item: int) -> int:
        self.validate_item(item)
        return item // self.max_block_size

    def items_in(self, block: int) -> Tuple[int, ...]:
        if not 0 <= block < self.num_blocks:
            raise ConfigurationError(
                f"block {block} outside range [0, {self.num_blocks})"
            )
        start = block * self.max_block_size
        stop = min(start + self.max_block_size, self.universe)
        return tuple(range(start, stop))

    def blocks_of(self, items: np.ndarray) -> np.ndarray:
        items = np.asarray(items, dtype=np.int64)
        if items.size and (items.min() < 0 or items.max() >= self.universe):
            raise ConfigurationError("items outside universe")
        return items // self.max_block_size


class ExplicitBlockMapping(BlockMapping):
    """Arbitrary partition given as ``block_ids[item] -> block``.

    Block ids must be dense (``0..num_blocks-1``); every block must be
    non-empty and contain at most ``max_block_size`` items, where
    ``max_block_size`` defaults to the size of the largest block.
    """

    def __init__(
        self,
        block_ids: Sequence[int] | np.ndarray,
        max_block_size: int | None = None,
    ) -> None:
        arr = np.asarray(block_ids, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError("block_ids must be a non-empty 1-D sequence")
        if arr.min() < 0:
            raise ConfigurationError("block ids must be non-negative")
        n_blocks = int(arr.max()) + 1
        counts = np.bincount(arr, minlength=n_blocks)
        if (counts == 0).any():
            missing = int(np.nonzero(counts == 0)[0][0])
            raise ConfigurationError(f"block ids must be dense; block {missing} empty")
        largest = int(counts.max())
        if max_block_size is None:
            max_block_size = largest
        elif largest > max_block_size:
            raise ConfigurationError(
                f"block of size {largest} exceeds max_block_size={max_block_size}"
            )
        self.universe = int(arr.size)
        self.num_blocks = n_blocks
        self.max_block_size = int(max_block_size)
        self._block_ids = arr
        members: List[List[int]] = [[] for _ in range(n_blocks)]
        for item, blk in enumerate(arr.tolist()):
            members[blk].append(item)
        self._members: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(m) for m in members
        )

    @classmethod
    def from_groups(
        cls, groups: Iterable[Iterable[int]], max_block_size: int | None = None
    ) -> "ExplicitBlockMapping":
        """Build from an iterable of item groups (one group per block)."""
        assignment: Dict[int, int] = {}
        for blk, group in enumerate(groups):
            for item in group:
                if item in assignment:
                    raise ConfigurationError(f"item {item} assigned to two blocks")
                assignment[item] = blk
        if not assignment:
            raise ConfigurationError("no items provided")
        universe = max(assignment) + 1
        if set(assignment) != set(range(universe)):
            raise ConfigurationError("items must be dense 0..U-1")
        ids = [assignment[i] for i in range(universe)]
        return cls(ids, max_block_size=max_block_size)

    def block_of(self, item: int) -> int:
        self.validate_item(item)
        return int(self._block_ids[item])

    def items_in(self, block: int) -> Tuple[int, ...]:
        if not 0 <= block < self.num_blocks:
            raise ConfigurationError(
                f"block {block} outside range [0, {self.num_blocks})"
            )
        return self._members[block]

    def blocks_of(self, items: np.ndarray) -> np.ndarray:
        items = np.asarray(items, dtype=np.int64)
        if items.size and (items.min() < 0 or items.max() >= self.universe):
            raise ConfigurationError("items outside universe")
        return self._block_ids[items]

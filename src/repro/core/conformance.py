"""Differential conformance: prove fast kernels bit-identical to the referee.

The replay kernels in :mod:`repro.core.fast` are only admissible
because this harness can show, for any trace, that a kernel and the
validating referee engine produce the *same computation*:

* the complete :class:`~repro.types.SimResult` — every counter, the
  policy name, capacity, and metadata — compared field by field, and
* the full per-access outcome stream (miss / temporal hit / spatial
  hit, one code per access, in trace order), so two runs cannot agree
  on aggregates while disagreeing on individual accesses.

The referee side runs with full validation *and* periodic residency
cross-checks, so a conformance pass simultaneously certifies the
kernel against the referee and the referee against the model.

``tests/test_fastpath_conformance.py`` drives this over randomized and
adversarial traces for every kernel; :func:`conformance_suite` is the
bulk entry point CI uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.engine import simulate
from repro.core.fast import (
    FAST_POLICY_NAMES,
    KIND_MISS,
    KIND_SPATIAL,
    KIND_TEMPORAL,
    MULTI_CAPACITY_POLICIES,
    fast_simulate,
    multi_capacity_replay,
    multi_capacity_supported,
    multi_policy_replay,
    multi_policy_supported,
)
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import make_policy
from repro.types import HitKind, SimResult

__all__ = [
    "KIND_CODE",
    "ConformanceReport",
    "referee_outcomes",
    "fast_outcomes",
    "check_conformance",
    "assert_conformant",
    "check_multi_capacity",
    "assert_multi_capacity_conformant",
    "check_multi_policy",
    "assert_multi_policy_conformant",
    "check_mmap_conformance",
    "assert_mmap_conformant",
    "mmap_conformance_suite",
    "conformance_suite",
]

#: HitKind → compact stream code (must agree with the kernel codes).
KIND_CODE: Dict[HitKind, int] = {
    HitKind.MISS: KIND_MISS,
    HitKind.TEMPORAL_HIT: KIND_TEMPORAL,
    HitKind.SPATIAL_HIT: KIND_SPATIAL,
}

#: Every SimResult field that must match bit-for-bit.
RESULT_FIELDS: Tuple[str, ...] = (
    "accesses",
    "misses",
    "temporal_hits",
    "spatial_hits",
    "loaded_items",
    "evicted_items",
    "policy",
    "capacity",
    "metadata",
)


def referee_outcomes(
    policy, trace: Trace, cross_check_every: int = 16
) -> Tuple[SimResult, List[int]]:
    """Validated referee replay; returns (result, per-access codes)."""
    codes: List[int] = []
    result = simulate(
        policy,
        trace,
        validate=True,
        cross_check_every=cross_check_every,
        on_access=lambda pos, item, kind: codes.append(KIND_CODE[kind]),
    )
    return result, codes


def fast_outcomes(policy, trace: Trace) -> Tuple[Optional[SimResult], List[int]]:
    """Kernel replay; ``(None, [])`` when no kernel applies."""
    codes: List[int] = []
    result = fast_simulate(policy, trace, record=codes)
    return result, codes


@dataclass
class ConformanceReport:
    """Outcome of one differential replay."""

    policy: str
    capacity: int
    accesses: int
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when referee and kernel were bit-identical."""
        return not self.mismatches

    def __str__(self) -> str:
        status = "OK" if self.ok else "DIVERGED"
        head = (
            f"[{status}] {self.policy} k={self.capacity} "
            f"({self.accesses} accesses)"
        )
        return head + "".join(f"\n  - {m}" for m in self.mismatches)


def _diff_streams(ref: Sequence[int], fast: Sequence[int]) -> List[str]:
    names = {KIND_MISS: "miss", KIND_TEMPORAL: "temporal", KIND_SPATIAL: "spatial"}
    if len(ref) != len(fast):
        return [f"outcome stream length: referee={len(ref)} fast={len(fast)}"]
    out = []
    for pos, (r, f) in enumerate(zip(ref, fast)):
        if r != f:
            out.append(
                f"outcome at access {pos}: referee={names[r]} fast={names[f]}"
            )
            if len(out) >= 5:
                out.append("... further stream divergences suppressed")
                break
    return out


def check_conformance(
    name: str,
    capacity: int,
    trace: Trace,
    cross_check_every: int = 16,
    **policy_kwargs,
) -> ConformanceReport:
    """Replay ``name`` through both engines; diff everything.

    Two fresh policy instances are built from the same configuration so
    neither replay can contaminate the other.  Raises
    :class:`ConfigurationError` if the policy has no fast kernel — a
    conformance check that silently tested the referee against itself
    would be vacuous.
    """
    ref_policy = make_policy(name, capacity, trace.mapping, **policy_kwargs)
    fast_policy = make_policy(name, capacity, trace.mapping, **policy_kwargs)
    ref_result, ref_codes = referee_outcomes(
        ref_policy, trace, cross_check_every=cross_check_every
    )
    fast_result, fast_codes = fast_outcomes(fast_policy, trace)
    if fast_result is None:
        raise ConfigurationError(
            f"policy {name!r} has no fast kernel; conformance is undefined "
            f"(supported: {', '.join(FAST_POLICY_NAMES)})"
        )
    report = ConformanceReport(
        policy=ref_result.policy,
        capacity=capacity,
        accesses=ref_result.accesses,
    )
    for fname in RESULT_FIELDS:
        ref_val = getattr(ref_result, fname)
        fast_val = getattr(fast_result, fname)
        if ref_val != fast_val:
            report.mismatches.append(
                f"SimResult.{fname}: referee={ref_val!r} fast={fast_val!r}"
            )
    report.mismatches.extend(_diff_streams(ref_codes, fast_codes))
    return report


def assert_conformant(
    name: str, capacity: int, trace: Trace, **policy_kwargs
) -> ConformanceReport:
    """:func:`check_conformance`, raising ``AssertionError`` on divergence."""
    report = check_conformance(name, capacity, trace, **policy_kwargs)
    assert report.ok, str(report)
    return report


def check_multi_capacity(
    name: str,
    trace: Trace,
    capacities: Sequence[int],
    cross_check_every: int = 16,
) -> List[ConformanceReport]:
    """Diff one batched multi-capacity replay against per-capacity referees.

    One :func:`repro.core.fast.multi_capacity_replay` call produces the
    whole capacity family; every member is then held to the same
    standard as a single-cell conformance check — all
    :data:`RESULT_FIELDS` plus the full per-access outcome stream
    against a fresh validated referee run at that capacity.  Raises
    :class:`ConfigurationError` when the combination has no batched
    kernel (caller should fall back to per-cell checks).
    """
    caps = sorted({int(k) for k in capacities})
    if not multi_capacity_supported(name, trace, caps):
        raise ConfigurationError(
            f"no batched kernel for policy {name!r} over this trace/"
            f"capacities (supported policies: "
            f"{', '.join(MULTI_CAPACITY_POLICIES)})"
        )
    record: Dict[int, List[int]] = {}
    results = multi_capacity_replay(name, trace, caps, record=record)
    reports: List[ConformanceReport] = []
    for capacity in caps:
        ref_policy = make_policy(name, capacity, trace.mapping)
        ref_result, ref_codes = referee_outcomes(
            ref_policy, trace, cross_check_every=cross_check_every
        )
        batch_result = results[capacity]
        report = ConformanceReport(
            policy=ref_result.policy,
            capacity=capacity,
            accesses=ref_result.accesses,
        )
        for fname in RESULT_FIELDS:
            ref_val = getattr(ref_result, fname)
            batch_val = getattr(batch_result, fname)
            if ref_val != batch_val:
                report.mismatches.append(
                    f"SimResult.{fname}: referee={ref_val!r} "
                    f"batched={batch_val!r}"
                )
        report.mismatches.extend(_diff_streams(ref_codes, record[capacity]))
        reports.append(report)
    return reports


def assert_multi_capacity_conformant(
    name: str, trace: Trace, capacities: Sequence[int]
) -> List[ConformanceReport]:
    """:func:`check_multi_capacity`, raising on any divergence."""
    reports = check_multi_capacity(name, trace, capacities)
    bad = [r for r in reports if not r.ok]
    assert not bad, "\n".join(str(r) for r in bad)
    return reports


def _cell_parts(cell) -> Tuple[str, int, Dict[str, object]]:
    if isinstance(cell, dict):
        kwargs = dict(cell)
        return kwargs.pop("policy"), kwargs.pop("capacity"), kwargs
    parts = tuple(cell)
    if len(parts) == 3:
        return parts[0], parts[1], dict(parts[2] or {})
    return parts[0], parts[1], {}


def check_multi_policy(
    cells,
    trace: Trace,
    cross_check_every: int = 16,
) -> List[ConformanceReport]:
    """Diff one single-pass multi-policy replay against per-cell referees.

    One :func:`repro.core.fast.multi_policy_replay` call advances every
    cell over a shared traversal; each returned result is then diffed —
    all :data:`RESULT_FIELDS` plus the full per-access outcome stream —
    against a fresh validated referee run of that cell alone, so
    sharing the pass provably changes nothing.  Raises
    :class:`ConfigurationError` when a cell has no kernel (gate with
    :func:`repro.core.fast.multi_policy_supported`).
    """
    cells = list(cells)
    record: Dict[int, List[int]] = {}
    results = multi_policy_replay(cells, trace, record=record)
    reports: List[ConformanceReport] = []
    for i, cell in enumerate(cells):
        name, capacity, kwargs = _cell_parts(cell)
        ref_policy = make_policy(name, capacity, trace.mapping, **kwargs)
        ref_result, ref_codes = referee_outcomes(
            ref_policy, trace, cross_check_every=cross_check_every
        )
        report = ConformanceReport(
            policy=ref_result.policy,
            capacity=capacity,
            accesses=ref_result.accesses,
        )
        for fname in RESULT_FIELDS:
            ref_val = getattr(ref_result, fname)
            batch_val = getattr(results[i], fname)
            if ref_val != batch_val:
                report.mismatches.append(
                    f"SimResult.{fname}: referee={ref_val!r} "
                    f"multi-policy={batch_val!r}"
                )
        report.mismatches.extend(_diff_streams(ref_codes, record[i]))
        reports.append(report)
    return reports


def assert_multi_policy_conformant(
    cells, trace: Trace
) -> List[ConformanceReport]:
    """:func:`check_multi_policy`, raising on any divergence."""
    reports = check_multi_policy(cells, trace)
    bad = [r for r in reports if not r.ok]
    assert not bad, "\n".join(str(r) for r in bad)
    return reports


def check_mmap_conformance(
    name: str,
    capacity: int,
    trace: Trace,
    mmap_trace: Trace,
    **policy_kwargs,
) -> ConformanceReport:
    """Diff a kernel replay over an mmap-backed trace against in-memory.

    ``mmap_trace`` is the same logical trace opened from an ``.rtc``
    file (:func:`repro.core.rtc.open_rtc`); the kernel then streams the
    memory-mapped columns chunk by chunk instead of walking in-memory
    lists.  The in-memory side is already certified against the referee
    by the ``mode="cell"`` rows, so this check only has to prove the
    mmap traversal computes the *same* replay — every
    :data:`RESULT_FIELDS` member, the fingerprint, and the full
    per-access outcome stream.
    """
    if trace.fingerprint() != mmap_trace.fingerprint():
        raise ConfigurationError(
            "mmap conformance needs the same logical trace on both sides: "
            f"fingerprint {trace.fingerprint()[:12]} != "
            f"{mmap_trace.fingerprint()[:12]}"
        )
    mem_policy = make_policy(name, capacity, trace.mapping, **policy_kwargs)
    mmap_policy = make_policy(
        name, capacity, mmap_trace.mapping, **policy_kwargs
    )
    mem_codes: List[int] = []
    mem_result = fast_simulate(mem_policy, trace, record=mem_codes)
    if mem_result is None:
        raise ConfigurationError(
            f"policy {name!r} has no fast kernel; mmap conformance is "
            f"undefined (supported: {', '.join(FAST_POLICY_NAMES)})"
        )
    mmap_codes: List[int] = []
    mmap_result = fast_simulate(mmap_policy, mmap_trace, record=mmap_codes)
    report = ConformanceReport(
        policy=mem_result.policy,
        capacity=capacity,
        accesses=mem_result.accesses,
    )
    if mmap_result is None:
        report.mismatches.append("mmap replay took no fast kernel")
        return report
    for fname in RESULT_FIELDS:
        mem_val = getattr(mem_result, fname)
        mmap_val = getattr(mmap_result, fname)
        if mem_val != mmap_val:
            report.mismatches.append(
                f"SimResult.{fname}: in-memory={mem_val!r} mmap={mmap_val!r}"
            )
    report.mismatches.extend(_diff_streams(mem_codes, mmap_codes))
    return report


def assert_mmap_conformant(
    name: str, capacity: int, trace: Trace, mmap_trace: Trace, **policy_kwargs
) -> ConformanceReport:
    """:func:`check_mmap_conformance`, raising on divergence."""
    report = check_mmap_conformance(
        name, capacity, trace, mmap_trace, **policy_kwargs
    )
    assert report.ok, str(report)
    return report


def mmap_conformance_suite(
    traces: Dict[str, Trace],
    capacities: Iterable[int],
    workdir,
    policies: Iterable[str] = FAST_POLICY_NAMES,
) -> List[Dict[str, object]]:
    """(trace × policy × capacity) mmap-vs-in-memory differential matrix.

    Each trace is compiled once to ``workdir/<name>.rtc`` and reopened
    memory-mapped; every cell is then replayed through the fast path on
    both representations and diffed (``mode="mmap"`` rows, same shape
    as :func:`conformance_suite` rows so CI can concatenate them).
    """
    from pathlib import Path

    from repro.core.rtc import open_rtc, trace_to_rtc

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    rows: List[Dict[str, object]] = []
    caps = list(capacities)
    for trace_name, trace in traces.items():
        path = trace_to_rtc(trace, workdir / f"{trace_name}.rtc")
        mmap_trace = open_rtc(path)
        for policy in list(policies):
            for capacity in caps:
                report = check_mmap_conformance(
                    policy, capacity, trace, mmap_trace
                )
                rows.append(
                    {
                        "trace": trace_name,
                        "policy": policy,
                        "mode": "mmap",
                        "capacity": capacity,
                        "accesses": report.accesses,
                        "ok": report.ok,
                        "detail": "; ".join(report.mismatches),
                    }
                )
    return rows


def conformance_suite(
    traces: Dict[str, Trace],
    capacities: Iterable[int],
    policies: Iterable[str] = FAST_POLICY_NAMES,
) -> List[Dict[str, object]]:
    """Full (trace × policy × capacity) differential matrix.

    Returns one row per cell with an ``ok`` flag and divergence detail;
    callers (CI, benches) assert ``all(row["ok"] ...)``.  The
    a-threshold family is exercised at ``a ∈ {1, 2}`` per cell and the
    seeded GCM family at ``seed ∈ {0, 7}`` (deeper seed grids live in
    ``tests/test_gcm_determinism.py``).

    Stack policies additionally get ``mode="batched"`` rows: the whole
    capacity family recomputed by one
    :func:`repro.core.fast.multi_capacity_replay` call and diffed
    per-capacity against the referee, so the sweep collapse path is
    certified by the same suite as the per-cell kernels.  Capacities a
    trace cannot batch (Block-LRU below its block size) are dropped
    from the batched rows only.

    Finally, every (policy, capacity) default-kwargs cell of a trace is
    replayed once more through a single
    :func:`repro.core.fast.multi_policy_replay` pass and diffed
    per-cell against the referee (``mode="multi"`` rows), certifying
    the shared-traversal engine over the full policy matrix.
    """
    rows: List[Dict[str, object]] = []
    caps = list(capacities)
    policies = list(policies)
    for trace_name, trace in traces.items():
        for policy in policies:
            variants = [{}]
            if policy == "athreshold-lru":
                variants = [{"a": 1}, {"a": 2}]
            elif policy in ("gcm", "gcm-markall", "gcm-partial"):
                variants = [{}, {"seed": 7}]
            for kwargs in variants:
                for capacity in caps:
                    report = check_conformance(policy, capacity, trace, **kwargs)
                    rows.append(
                        {
                            "trace": trace_name,
                            "policy": policy,
                            "mode": "cell",
                            **{f"arg_{k}": v for k, v in kwargs.items()},
                            "capacity": capacity,
                            "accesses": report.accesses,
                            "ok": report.ok,
                            "detail": "; ".join(report.mismatches),
                        }
                    )
            if policy not in MULTI_CAPACITY_POLICIES:
                continue
            batch_caps = caps
            if not multi_capacity_supported(policy, trace, batch_caps):
                batch_caps = [k for k in caps if k >= trace.block_size]
            if not batch_caps or not multi_capacity_supported(
                policy, trace, batch_caps
            ):
                continue
            for report in check_multi_capacity(policy, trace, batch_caps):
                rows.append(
                    {
                        "trace": trace_name,
                        "policy": policy,
                        "mode": "batched",
                        "capacity": report.capacity,
                        "accesses": report.accesses,
                        "ok": report.ok,
                        "detail": "; ".join(report.mismatches),
                    }
                )
        multi_cells = [(p, k) for p in policies for k in caps]
        if multi_cells and multi_policy_supported(multi_cells, trace):
            for cell, report in zip(
                multi_cells, check_multi_policy(multi_cells, trace)
            ):
                rows.append(
                    {
                        "trace": trace_name,
                        "policy": cell[0],
                        "mode": "multi",
                        "capacity": report.capacity,
                        "accesses": report.accesses,
                        "ok": report.ok,
                        "detail": "; ".join(report.mismatches),
                    }
                )
    return rows

"""Request traces: an item-id array plus its block mapping.

A :class:`Trace` couples the access sequence with the block partition
it was generated against, because the GC caching problem is only
defined relative to a partition (Definition 1).  Traces carry free-form
metadata (generator name, parameters, seed) so experiment outputs are
self-describing, and serialize to ``.npz`` for reuse across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

import numpy as np

from repro.core.mapping import BlockMapping, ExplicitBlockMapping, FixedBlockMapping
from repro.errors import TraceFormatError

__all__ = ["Trace"]


@dataclass
class Trace:
    """An access trace over a block-partitioned item universe.

    Attributes
    ----------
    items:
        ``int64`` array of requested item ids, in order.
    mapping:
        The item→block partition.
    metadata:
        Provenance: generator, parameters, seed.
    """

    items: np.ndarray
    mapping: BlockMapping
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.items = np.asarray(self.items, dtype=np.int64)
        self._fp: Optional[str] = None
        if self.items.ndim != 1:
            raise TraceFormatError("trace items must be one-dimensional")
        if self.items.size:
            lo, hi = int(self.items.min()), int(self.items.max())
            if lo < 0 or hi >= self.mapping.universe:
                raise TraceFormatError(
                    f"trace references item range [{lo}, {hi}] outside "
                    f"universe [0, {self.mapping.universe})"
                )

    # -- basic introspection -------------------------------------------------
    def __len__(self) -> int:
        return int(self.items.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self.items.tolist())

    @property
    def universe(self) -> int:
        """Number of items in the address space."""
        return self.mapping.universe

    @property
    def block_size(self) -> int:
        """The model parameter ``B`` (maximum items per block)."""
        return self.mapping.max_block_size

    def block_trace(self) -> np.ndarray:
        """The trace projected to block ids (used by g(n) profiling)."""
        return self.mapping.blocks_of(self.items)

    def distinct_items(self) -> int:
        """Number of distinct items referenced."""
        return int(np.unique(self.items).size) if self.items.size else 0

    def distinct_blocks(self) -> int:
        """Number of distinct blocks referenced."""
        return int(np.unique(self.block_trace()).size) if self.items.size else 0

    def fingerprint(self) -> str:
        """Stable content hash of the trace (items + block partition).

        Two traces with the same access sequence over the same
        partition hash identically regardless of how they were built
        (generator, file import, ``.npz`` round-trip); metadata is
        deliberately excluded.  Used by :mod:`repro.campaign` as the
        trace component of a cell's content address, and by
        :mod:`repro.core.fast` / :mod:`repro.core.arena` as the compile
        memo and arena identity.

        The digest is cached on the instance (traces are treated as
        immutable throughout the codebase), so repeated lookups — one
        per sweep cell — cost a dict read, not a re-hash.
        """
        cached = getattr(self, "_fp", None)
        if cached is not None:
            return cached
        h = hashlib.sha256()
        h.update(b"trace-v1\x00")
        h.update(np.ascontiguousarray(self.items, dtype=np.int64).tobytes())
        h.update(b"\x00mapping\x00")
        if isinstance(self.mapping, FixedBlockMapping):
            h.update(
                f"fixed:{self.mapping.universe}:{self.mapping.max_block_size}".encode()
            )
        else:
            block_ids = self.mapping.blocks_of(
                np.arange(self.mapping.universe, dtype=np.int64)
            )
            h.update(f"explicit:{self.mapping.max_block_size}:".encode())
            h.update(np.ascontiguousarray(block_ids, dtype=np.int64).tobytes())
        self._fp = h.hexdigest()
        return self._fp

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces over the same universe/mapping."""
        if (
            self.mapping.universe != other.mapping.universe
            or self.mapping.max_block_size != other.mapping.max_block_size
        ):
            raise TraceFormatError("cannot concatenate traces over different mappings")
        return Trace(
            np.concatenate([self.items, other.items]),
            self.mapping,
            {**self.metadata, "concatenated": True},
        )

    # -- serialization ---------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist to ``.npz`` (items, mapping kind + parameters, metadata)."""
        path = Path(path)
        payload: Dict[str, np.ndarray] = {"items": self.items}
        if isinstance(self.mapping, FixedBlockMapping):
            payload["mapping_kind"] = np.array(["fixed"])
            payload["mapping_params"] = np.array(
                [self.mapping.universe, self.mapping.max_block_size], dtype=np.int64
            )
        elif isinstance(self.mapping, ExplicitBlockMapping):
            payload["mapping_kind"] = np.array(["explicit"])
            payload["mapping_block_ids"] = self.mapping.blocks_of(
                np.arange(self.mapping.universe, dtype=np.int64)
            )
            payload["mapping_params"] = np.array(
                [self.mapping.max_block_size], dtype=np.int64
            )
        else:
            raise TraceFormatError(
                f"cannot serialize mapping type {type(self.mapping).__name__}"
            )
        payload["metadata_json"] = np.array([json.dumps(self.metadata, default=str)])
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            try:
                items = data["items"]
                kind = str(data["mapping_kind"][0])
                meta = json.loads(str(data["metadata_json"][0]))
            except KeyError as exc:  # pragma: no cover - corrupt file
                raise TraceFormatError(f"missing field in trace file: {exc}") from exc
            if kind == "fixed":
                universe, bsize = (int(x) for x in data["mapping_params"])
                mapping: BlockMapping = FixedBlockMapping(universe, bsize)
            elif kind == "explicit":
                mapping = ExplicitBlockMapping(
                    data["mapping_block_ids"],
                    max_block_size=int(data["mapping_params"][0]),
                )
            else:
                raise TraceFormatError(f"unknown mapping kind {kind!r}")
        return cls(items, mapping, meta)

    # -- convenience constructors ----------------------------------------------
    @classmethod
    def from_list(
        cls,
        items,
        block_size: int,
        universe: Optional[int] = None,
        metadata: Optional[Dict] = None,
    ) -> "Trace":
        """Build a trace with an aligned fixed-``B`` mapping.

        ``universe`` defaults to one past the largest referenced item,
        rounded up to a whole block.
        """
        arr = np.asarray(items, dtype=np.int64)
        if universe is None:
            top = int(arr.max()) + 1 if arr.size else 1
            universe = -(-top // block_size) * block_size
        return cls(arr, FixedBlockMapping(universe, block_size), metadata or {})

"""Read/write traces and write-back accounting (beyond the paper).

Footnote 1 of the paper: "there can be different granularities for
reads and writes … We focus on reads in this work."  This module adds
the write side as a library extension, reusing the read-path policies
unchanged:

* :class:`RWTrace` pairs an access trace with a per-access write flag.
* :class:`WritebackSimulator` drives any policy under the referee
  while tracking **dirty** items.  When dirty items leave the cache,
  the backing store absorbs them at *its* granularity: all dirty items
  of one block evicted in the same action coalesce into one
  **writeback**; a writeback of a partially-dirty block additionally
  needs a **read-modify-write** (the device must fetch the rest of the
  block before writing it back whole).

The resulting :attr:`WritebackStats.write_amplification` — device items
written per host item written — is the quantity flash/DRAM systems care
about, and gives the GC trade-off a write-side mirror: block-granular
policies coalesce writebacks but dirty whole blocks; item-granular
policies scatter single-item RMWs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

import numpy as np

from repro.core.engine import Engine
from repro.core.trace import Trace
from repro.errors import ConfigurationError, TraceFormatError
from repro.policies.base import Policy
from repro.types import HitKind

__all__ = ["RWTrace", "WritebackStats", "WritebackSimulator", "make_rw_trace"]


@dataclass
class RWTrace:
    """An access trace with a write flag per access."""

    trace: Trace
    is_write: np.ndarray

    def __post_init__(self) -> None:
        self.is_write = np.asarray(self.is_write, dtype=bool)
        if self.is_write.shape != self.trace.items.shape:
            raise TraceFormatError(
                "is_write must align with the trace "
                f"({self.is_write.shape} vs {self.trace.items.shape})"
            )

    def __len__(self) -> int:
        return len(self.trace)

    @property
    def write_fraction(self) -> float:
        return float(self.is_write.mean()) if len(self) else 0.0


def make_rw_trace(trace: Trace, write_fraction: float, seed: int = 0) -> RWTrace:
    """Mark a random ``write_fraction`` of accesses as writes."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    rng = np.random.default_rng(seed)
    flags = rng.random(len(trace)) < write_fraction
    return RWTrace(trace=trace, is_write=flags)


@dataclass
class WritebackStats:
    """Write-side counters for one run (read stats live in ``read``)."""

    accesses: int = 0
    writes: int = 0
    misses: int = 0
    writebacks: int = 0
    rmw_writebacks: int = 0
    device_items_written: int = 0
    dirty_items_flushed: int = 0
    per_policy: Dict = field(default_factory=dict)

    @property
    def write_amplification(self) -> float:
        """Device items written per host write (1.0 is ideal)."""
        return (
            self.device_items_written / self.writes if self.writes else 0.0
        )

    @property
    def rmw_fraction(self) -> float:
        """Fraction of writebacks needing a read-modify-write."""
        return (
            self.rmw_writebacks / self.writebacks if self.writebacks else 0.0
        )

    def as_row(self) -> Dict:
        return {
            "accesses": self.accesses,
            "writes": self.writes,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "rmw_writebacks": self.rmw_writebacks,
            "write_amplification": self.write_amplification,
            "rmw_fraction": self.rmw_fraction,
            **self.per_policy,
        }


class WritebackSimulator:
    """Run a (read-path) policy over an RW trace with dirty tracking.

    The policy is oblivious to writes — replacement decisions are
    unchanged, exactly as in write-back caches where dirtiness affects
    traffic, not placement.  The simulator referees the run, marks
    written items dirty, and charges writebacks on dirty evictions
    (coalescing per block within one eviction action) plus a final
    flush at end of trace.
    """

    def __init__(self, policy: Policy) -> None:
        self.policy = policy

    def run(self, rw: RWTrace) -> WritebackStats:
        trace = rw.trace
        if self.policy.is_offline:
            self.policy.prepare(trace)
        engine = Engine(self.policy, trace.mapping)
        mapping = trace.mapping
        dirty: Set[int] = set()
        stats = WritebackStats(
            per_policy={"policy": getattr(self.policy, "name", "policy")}
        )
        flags = rw.is_write.tolist()
        for item, is_write in zip(trace.items.tolist(), flags):
            # Evictions are detected via the engine's residency delta;
            # the O(k) snapshot is only taken while dirty data exists.
            resident_before = engine.resident.copy() if dirty else None
            kind = engine.access(item)
            stats.accesses += 1
            if kind is HitKind.MISS:
                stats.misses += 1
            if dirty and resident_before is not None:
                evicted = resident_before - engine.resident
                flushed = dirty & evicted
                if flushed:
                    self._charge(flushed, mapping, stats)
                    dirty -= flushed
            if is_write:
                stats.writes += 1
                dirty.add(item)
        if dirty:
            self._charge(dirty, mapping, stats)
        return stats

    @staticmethod
    def _charge(flushed: Set[int], mapping, stats: WritebackStats) -> None:
        by_block: Dict[int, int] = {}
        for it in flushed:
            blk = mapping.block_of(it)
            by_block[blk] = by_block.get(blk, 0) + 1
        for blk, n_dirty in by_block.items():
            size = mapping.block_size(blk)
            stats.writebacks += 1
            stats.device_items_written += size
            stats.dirty_items_flushed += n_dirty
            if n_dirty < size:
                stats.rmw_writebacks += 1

"""Validation-free replay kernels for the hot policies.

The referee engine (:mod:`repro.core.engine`) validates every policy
action with Python sets — correct, but a large constant factor on the
per-access path.  For every *online* registered policy the entire
replay is a pure function of ``(trace, capacity, parameters, seed)``,
so this module provides *replay kernels*: slotted, array-backed
re-implementations that produce the exact same
:class:`~repro.types.SimResult` (temporal/spatial hit taxonomy and
load-set statistics included) without constructing
:class:`~repro.types.AccessOutcome` records, frozensets, or shadow
validation state.  Randomized policies (GCM family, ``item-random``)
consume the *same* :class:`numpy.random.Generator` method sequence as
the referee, so seeded runs are bit-identical, not just statistically
equivalent.

Correctness is not assumed — it is *proven* by the differential
conformance harness (:mod:`repro.core.conformance` and
``tests/test_fastpath_conformance.py``), which replays randomized and
adversarial traces through both engines and asserts the complete
result, per-access outcome stream included, is bit-identical.  A kernel
that drifts from the referee fails CI, so the fast path can never
silently diverge from the validated model.

Entry points
------------
* :func:`compile_trace` — integer-encode a :class:`Trace` once
  (item → dense id, per-access block ids, block membership tables);
  memoized per trace fingerprint.
* :func:`fast_simulate` — replay a supported policy over a trace;
  returns ``None`` when no kernel applies (the caller falls back to
  the referee).  ``simulate(..., fast=True)`` does exactly that.
* :func:`fast_fallback_reason` — why :func:`fast_simulate` would
  return ``None`` for a policy/trace pair (``None`` when it wouldn't);
  surfaced as ``SimResult.fallback_reason`` telemetry by the engine.
* :func:`multi_policy_replay` — compile the trace once and advance
  many policy kernels over one chunked traversal (decode, block
  mapping, and load-set tables shared the way
  :func:`multi_capacity_replay` shares the Mattson pass).
* :func:`supports` / :data:`FAST_POLICY_NAMES` — kernel coverage.

Fallback rules (any of these routes the access back to the referee):

* the policy type has no kernel (subclasses do not inherit kernels:
  dispatch is on the *exact* class, so an overridden hook cannot be
  silently replayed with the parent's semantics);
* the policy is not cold (kernels replay from an empty cache);
* the policy's mapping is not the trace's mapping (or an equivalent
  aligned :class:`FixedBlockMapping`) — the referee cross-validates
  the two mappings at runtime, the kernels cannot;
* the caller asked for observation (``on_access``, ``recorder``) or
  reconciliation (``cross_check_every``) — referee-only features.

Kernels never mutate the policy object they dispatch on; they read its
configuration (capacity, layer split, threshold, seed) and replay a
replica.

Kernel architecture
-------------------
Each kernel is a *stepper factory* ``f(compiled, policy, record) ->
(run, finish)``: all replay state lives in the factory's closure,
``run(items, blocks, dense)`` advances the policy over one contiguous
chunk of accesses (the full trace is just one big chunk), and
``finish()`` returns the final counters.  :func:`fast_simulate` calls
``run`` once over the whole compiled trace — the loop body is
identical to a monolithic kernel, so single-policy replay pays nothing
for the factoring — while :func:`multi_policy_replay` interleaves many
``run`` calls over cache-sized chunks of the same compiled arrays,
which is what makes the single-pass multi-policy traversal possible
without per-access dispatch overhead.
"""

from __future__ import annotations

import heapq
import os
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry import spans
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.adaptive_iblp import AdaptiveIBLP
from repro.policies.athreshold import AThresholdLRU
from repro.policies.base import make_policy, policy_class
from repro.policies.block_cache import BlockFIFO, BlockLRU
from repro.policies.iblp import IBLP, BlockFirstIBLP
from repro.policies.item_lru import ItemFIFO, ItemLRU, ItemMRU
from repro.policies.item_other import ItemClock, ItemLFU, ItemRandom
from repro.policies.item_twoq import ItemTwoQ
from repro.policies.marking import GCM, MarkAllGCM, MarkingLRU, PartialGCM
from repro.types import SimResult

__all__ = [
    "CompiledTrace",
    "compile_trace",
    "fast_simulate",
    "fast_fallback_reason",
    "supports",
    "FAST_POLICY_NAMES",
    "KIND_MISS",
    "KIND_TEMPORAL",
    "KIND_SPATIAL",
    "stack_distances",
    "MULTI_CAPACITY_POLICIES",
    "multi_capacity_supported",
    "multi_capacity_replay",
    "MULTI_POLICY_CHUNK",
    "multi_policy_supported",
    "multi_policy_replay",
]

#: Integer codes for the per-access outcome stream (the compact form of
#: :class:`~repro.types.HitKind` used by kernels and the conformance
#: harness; see :data:`repro.core.conformance.KIND_CODE`).
KIND_MISS, KIND_TEMPORAL, KIND_SPATIAL = 0, 1, 2


class CompiledTrace:
    """A trace lowered to plain-int arrays for kernel replay.

    Attributes
    ----------
    n:
        Number of accesses.
    items:
        Requested item ids as a Python ``list`` (C-int iteration is
        ~3× faster than pulling ``numpy`` scalars in a Python loop).
    blocks:
        Block id of each access, same length as ``items``.
    dense:
        Per-access item ids re-encoded densely as ``0..n_distinct-1``
        (index into ``unique_items``); item-granularity kernels use
        these to replace hash lookups with array indexing.
    unique_items:
        ``int64`` array decoding dense id → original item id.
    block_members:
        ``block id → tuple of member items`` (in ``mapping.items_in``
        order) for every block the trace references — what the referee
        obtains from ``mapping.items_in`` per miss, computed once here.
    item_block:
        ``item id → block id`` for every member of every referenced
        block (covers side-loaded items that never appear in ``items``).
    """

    __slots__ = (
        "n",
        "items",
        "blocks",
        "dense",
        "n_distinct",
        "unique_items",
        "block_members",
        "item_block",
    )

    def __init__(self, trace: Trace) -> None:
        arr = trace.items
        self.n = int(arr.size)
        self.items: List[int] = arr.tolist()
        blocks_arr = trace.mapping.blocks_of(arr)
        self.blocks: List[int] = blocks_arr.tolist()
        if self.n:
            unique, inverse = np.unique(arr, return_inverse=True)
        else:
            unique = np.empty(0, dtype=np.int64)
            inverse = np.empty(0, dtype=np.int64)
        self.unique_items = unique
        self.n_distinct = int(unique.size)
        self.dense: List[int] = inverse.tolist()
        self.block_members: Dict[int, Tuple[int, ...]] = {}
        self.item_block: Dict[int, int] = {}
        for blk in np.unique(blocks_arr).tolist():
            members = tuple(trace.mapping.items_in(blk))
            self.block_members[blk] = members
            for member in members:
                self.item_block[member] = blk

    def iter_chunks(
        self, chunk: Optional[int] = None
    ) -> Iterator[Tuple[List[int], List[int], List[int]]]:
        """Yield ``(items, blocks, dense)`` list slices for kernel ``run()``.

        The single traversal API both replay entry points use: kernels
        are resumable steppers, so feeding them the trace in any
        contiguous chunking is equivalent.  The in-memory compilation
        yields its whole lists in one chunk when ``chunk`` is ``None``
        or covers ``n`` (no slicing cost); the mmap subclass always
        chunks so only a bounded window is ever materialized as Python
        ints.
        """
        if chunk is None or self.n <= chunk:
            yield self.items, self.blocks, self.dense
            return
        for lo in range(0, self.n, chunk):
            hi = lo + chunk
            yield self.items[lo:hi], self.blocks[lo:hi], self.dense[lo:hi]


class MmapCompiledTrace(CompiledTrace):
    """A compiled view over an ``.rtc`` file's memory-mapped columns.

    The ``items``/``blocks``/``dense`` attributes hold the file's
    ``np.memmap`` columns instead of Python lists — zero bytes are
    copied at compile time, and :meth:`iter_chunks` materializes one
    bounded window of Python ints at a time, so kernels replay a
    multi-gigabyte trace in O(chunk + distinct) memory.  Only the
    distinct-id tables (``unique_items``, ``block_members``,
    ``item_block``) are built eagerly, exactly as the in-memory
    compilation does.
    """

    __slots__ = ()

    #: Accesses per traversal window (shared with MULTI_POLICY_CHUNK's
    #: rationale: large enough to amortize slice overhead, small enough
    #: to stay cache- and memory-friendly).
    DEFAULT_CHUNK = 65536

    def __init__(self, trace: Trace) -> None:  # trace: rtc.MmapTrace
        rtc = trace._rtc  # type: ignore[attr-defined]
        self.n = int(rtc.n)
        self.items = rtc.items
        self.blocks = rtc.blocks
        self.dense = rtc.dense
        self.unique_items = np.asarray(rtc.unique_items)
        self.n_distinct = int(self.unique_items.size)
        self.block_members = {}
        self.item_block = {}
        for blk in np.asarray(rtc.unique_blocks).tolist():
            members = tuple(trace.mapping.items_in(blk))
            self.block_members[blk] = members
            for member in members:
                self.item_block[member] = blk

    def iter_chunks(
        self, chunk: Optional[int] = None
    ) -> Iterator[Tuple[List[int], List[int], List[int]]]:
        step = chunk or self.DEFAULT_CHUNK
        for lo in range(0, self.n, step):
            hi = lo + step
            yield (
                self.items[lo:hi].tolist(),
                self.blocks[lo:hi].tolist(),
                self.dense[lo:hi].tolist(),
            )


# Memoized by content fingerprint, not object identity: a sweep worker
# that receives the same trace unpickled (or arena-attached) per cell
# still reuses one compilation.  The LRU cap bounds memory — compiled
# traces hold Python-int lists, so a handful of large ones is already
# tens of MB; typical workers touch one or two distinct traces.
_COMPILE_MEMO_CAP = 4
_COMPILED: "OrderedDict[str, CompiledTrace]" = OrderedDict()


def _compile(trace: Trace) -> CompiledTrace:
    """Pick the compilation strategy: mmap view for rtc-backed traces."""
    if getattr(trace, "_rtc", None) is not None:
        return MmapCompiledTrace(trace)
    return CompiledTrace(trace)


def compile_trace(trace: Trace) -> CompiledTrace:
    """Compile (or fetch the memoized compilation of) ``trace``.

    The memo key is :meth:`Trace.fingerprint`, so equal-content traces
    share one compilation regardless of how they reached this process —
    except mmap-backed traces, which key on ``trace._memo_key`` (file
    header digest + mtime + size, see
    :func:`repro.core.rtc.file_memo_key`): their header fingerprint is
    trusted rather than recomputed, so an edited ``.rtc`` file must
    never collide with the stale compilation of its previous contents.
    ``REPRO_NO_COMPILE_MEMO=1`` disables the memo (benchmarking and
    memory-constrained runs); the fingerprint itself is cached on the
    trace instance, so keying is cheap after the first call.
    """
    with spans.span("fast.compile") as sp:
        if os.environ.get("REPRO_NO_COMPILE_MEMO"):
            compiled = _compile(trace)
            if sp is not None:
                sp.set("memo", "off")
                sp.set("accesses", compiled.n)
            return compiled
        key = getattr(trace, "_memo_key", None) or trace.fingerprint()
        cached = _COMPILED.get(key)
        if cached is not None:
            _COMPILED.move_to_end(key)
            if sp is not None:
                sp.set("memo", "hit")
                sp.set("accesses", cached.n)
            return cached
        compiled = _compile(trace)
        _COMPILED[key] = compiled
        while len(_COMPILED) > _COMPILE_MEMO_CAP:
            _COMPILED.popitem(last=False)
        if sp is not None:
            sp.set("memo", "miss")
            sp.set("accesses", compiled.n)
        return compiled


#: counts = (misses, temporal_hits, spatial_hits, loaded_items, evicted_items)
_Counts = Tuple[int, int, int, int, int]
_Record = Optional[List[int]]
#: ``run(items_chunk, blocks_chunk, dense_chunk)`` advances the kernel
#: over one contiguous slice of the compiled trace.
_RunFn = Callable[[List[int], List[int], List[int]], None]
#: A kernel factory: closure state + (run, finish) steppers.
_Kernel = Callable[["CompiledTrace", "object", _Record], Tuple[_RunFn, Callable[[], _Counts]]]


# -- item-granularity kernels (no spatial hits possible) --------------------
def _kernel_item_recency(
    ct: CompiledTrace, capacity: int, touch_on_hit: bool, record: _Record
):
    """LRU (``touch_on_hit``) / FIFO item cache over dense ids.

    Recency is a doubly-linked list over slot arrays: ``nxt``/``prv``
    of size ``n_distinct + 1`` with slot ``S`` as the head/tail
    sentinel (MRU at ``nxt[S]``, LRU at ``prv[S]``).
    """
    m = ct.n_distinct
    S = m  # sentinel slot
    nxt = [S] * (m + 1)
    prv = [S] * (m + 1)
    resident = bytearray(m)
    st = [0, 0, 0, 0]  # size, misses, temporal, evicted

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        size, misses, temporal, evicted = st
        _nxt, _prv, _res = nxt, prv, resident
        for it in dense:
            if _res[it]:
                temporal += 1
                if touch_on_hit:
                    p = _prv[it]
                    nx = _nxt[it]
                    _nxt[p] = nx
                    _prv[nx] = p
                    f = _nxt[S]
                    _nxt[S] = it
                    _prv[it] = S
                    _nxt[it] = f
                    _prv[f] = it
                if record is not None:
                    record.append(KIND_TEMPORAL)
            else:
                misses += 1
                if size >= capacity:
                    lru = _prv[S]
                    p = _prv[lru]
                    _nxt[p] = S
                    _prv[S] = p
                    _res[lru] = 0
                    evicted += 1
                else:
                    size += 1
                _res[it] = 1
                f = _nxt[S]
                _nxt[S] = it
                _prv[it] = S
                _nxt[it] = f
                _prv[f] = it
                if record is not None:
                    record.append(KIND_MISS)
        st[0], st[1], st[2], st[3] = size, misses, temporal, evicted

    def finish() -> _Counts:
        return st[1], st[2], 0, st[1], st[3]

    return run, finish


def _kernel_item_mru(ct: CompiledTrace, capacity: int, record: _Record):
    """MRU item cache: insertion-ordered dict, victim = last key.

    :class:`~repro.policies.item_lru.ItemMRU` touches on hits and
    evicts ``pop_mru()`` — with eviction *before* insertion, the victim
    is the previous MRU, which is exactly ``dict.popitem()`` on an
    insertion-ordered dict where touch = pop + reinsert.
    """
    order: Dict[int, None] = {}
    st = [0, 0, 0]  # misses, temporal, evicted

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, evicted = st
        d = order
        for it in dense:
            if it in d:
                d[it] = d.pop(it)
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            else:
                misses += 1
                if len(d) >= capacity:
                    d.popitem()
                    evicted += 1
                d[it] = None
                if record is not None:
                    record.append(KIND_MISS)
        st[0], st[1], st[2] = misses, temporal, evicted

    def finish() -> _Counts:
        return st[0], st[1], 0, st[0], st[2]

    return run, finish


def _kernel_item_clock(ct: CompiledTrace, capacity: int, record: _Record):
    """CLOCK item cache on flat ring arrays, bit-exact to
    :class:`repro.structs.clock_hand.ClockHand`.

    ClockHand's ``evict()`` + ``insert()`` pair pops the victim and
    re-inserts at the hand (rotating the backing list when the victim
    sits at the end); relative to the hand that is circularly identical
    to replacing the victim's slot in place and advancing the hand by
    one, which is what this kernel does — O(1) per miss instead of the
    structure's O(n) reindex.  During warmup (no evictions yet) the
    hand rests on the first-inserted key at the end of the ring and
    each insert lands just behind it, displacing only that one entry.
    """
    m = ct.n_distinct
    pos = [0] * m  # dense id -> ring slot (valid iff resident)
    resident = bytearray(m)
    ring = [0] * capacity  # ring slot -> dense id
    ref = bytearray(capacity)  # ring slot -> reference bit
    st = [0, 0, 0, 0, 0]  # hand, size, misses, temporal, evicted

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        hand, size, misses, temporal, evicted = st
        _pos, _res, _ring, _ref = pos, resident, ring, ref
        for it in dense:
            if _res[it]:
                _ref[_pos[it]] = 1
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
                continue
            misses += 1
            if record is not None:
                record.append(KIND_MISS)
            if size >= capacity:
                h = hand
                if h >= capacity:
                    h = 0
                while _ref[h]:  # second-chance sweep
                    _ref[h] = 0
                    h += 1
                    if h >= capacity:
                        h = 0
                _res[_ring[h]] = 0
                evicted += 1
                _ring[h] = it
                _ref[h] = 1
                _pos[it] = h
                _res[it] = 1
                hand = h + 1
            elif size == 0:
                _ring[0] = it
                _ref[0] = 1
                _pos[it] = 0
                _res[it] = 1
                size = 1
                # hand stays 0: it rests on this first key until full.
            else:
                # Insert just behind the hand at slot size-1; the first
                # key shifts to slot size, its reference bit with it.
                last = _ring[size - 1]
                _ring[size] = last
                _ref[size] = _ref[size - 1]
                _pos[last] = size
                _ring[size - 1] = it
                _ref[size - 1] = 1
                _pos[it] = size - 1
                _res[it] = 1
                size += 1
                hand = size - 1
        st[0], st[1], st[2], st[3], st[4] = hand, size, misses, temporal, evicted

    def finish() -> _Counts:
        return st[2], st[3], 0, st[2], st[4]

    return run, finish


def _kernel_item_lfu(ct: CompiledTrace, capacity: int, record: _Record):
    """In-cache LFU with LRU tie-breaking via a lazy heap.

    The referee (:class:`~repro.policies.item_other.ItemLFU`) picks
    ``min`` over ``(freq, last_use)``; ``last_use`` ticks are unique
    and strictly increasing, so the key is unique per entry and a heap
    with stale-entry skipping pops the exact same victim in O(log k)
    instead of the referee's O(k) scan.
    """
    freq: Dict[int, int] = {}
    last: Dict[int, int] = {}
    heap: List[Tuple[int, int, int]] = []  # (freq, last_use, dense id)
    st = [0, 0, 0, 0]  # tick, misses, temporal, evicted

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        tick, misses, temporal, evicted = st
        push, pop = heapq.heappush, heapq.heappop
        _freq, _last, _heap = freq, last, heap
        for it in dense:
            f = _freq.get(it)
            if f is not None:
                tick += 1
                f += 1
                _freq[it] = f
                _last[it] = tick
                push(_heap, (f, tick, it))
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            else:
                misses += 1
                if len(_freq) >= capacity:
                    while True:
                        vf, vt, v = pop(_heap)
                        if _last.get(v) == vt:
                            break
                    del _freq[v]
                    del _last[v]
                    evicted += 1
                tick += 1
                _freq[it] = 1
                _last[it] = tick
                push(_heap, (1, tick, it))
                if record is not None:
                    record.append(KIND_MISS)
        st[0], st[1], st[2], st[3] = tick, misses, temporal, evicted

    def finish() -> _Counts:
        return st[1], st[2], 0, st[1], st[3]

    return run, finish


def _kernel_item_random(ct: CompiledTrace, capacity: int, seed: int, record: _Record):
    """Seeded random replacement, RNG-identical to
    :class:`~repro.policies.item_other.ItemRandom`.

    One ``rng.integers(len(slots))`` draw per eviction — the same
    method on the same :func:`numpy.random.default_rng` stream the
    referee consumes, so any fixed seed replays bit-identically.  The
    swap-with-last slot compaction mirrors the referee's.
    """
    rng = np.random.default_rng(seed)
    slots: List[int] = []
    resident = bytearray(ct.n_distinct)
    st = [0, 0, 0]  # misses, temporal, evicted

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, evicted = st
        integers = rng.integers
        _slots, _res = slots, resident
        for it in dense:
            if _res[it]:
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            else:
                misses += 1
                if len(_slots) >= capacity:
                    idx = int(integers(len(_slots)))
                    victim = _slots[idx]
                    last = _slots.pop()
                    if last != victim:
                        _slots[idx] = last
                    _res[victim] = 0
                    evicted += 1
                _slots.append(it)
                _res[it] = 1
                if record is not None:
                    record.append(KIND_MISS)
        st[0], st[1], st[2] = misses, temporal, evicted

    def finish() -> _Counts:
        return st[0], st[1], 0, st[0], st[2]

    return run, finish


def _kernel_item_twoq(
    ct: CompiledTrace,
    capacity: int,
    probation_fraction: float,
    ghost_fraction: float,
    record: _Record,
):
    """2Q (A1in/Am/A1out) over insertion-ordered dicts, mirroring
    :class:`~repro.policies.item_twoq.ItemTwoQ` exactly: FIFO probation
    untouched on hits, ghosts only remember probation victims, ghost
    hits promote straight into the protected LRU."""
    a1in_cap = max(1, int(capacity * probation_fraction))
    ghost_cap = max(1, int(capacity * ghost_fraction))
    a1in: Dict[int, None] = {}
    am: Dict[int, None] = {}
    ghosts: Dict[int, None] = {}
    st = [0, 0, 0]  # misses, temporal, evicted

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, evicted = st
        _a1in, _am, _ghosts = a1in, am, ghosts
        for it in dense:
            if it in _am:
                _am[it] = _am.pop(it)
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            elif it in _a1in:
                # 2Q leaves probation order untouched on hits (FIFO).
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            else:
                misses += 1
                if len(_a1in) + len(_am) >= capacity:
                    # Prefer draining probation past its cap, else the
                    # protected LRU, else probation anyway (Am empty).
                    if len(_a1in) > a1in_cap or not _am:
                        victim = next(iter(_a1in))
                        del _a1in[victim]
                        if victim in _ghosts:
                            _ghosts[victim] = _ghosts.pop(victim)
                        else:
                            _ghosts[victim] = None
                            if len(_ghosts) > ghost_cap:
                                del _ghosts[next(iter(_ghosts))]
                    else:
                        victim = next(iter(_am))
                        del _am[victim]
                    evicted += 1
                if it in _ghosts:
                    # Recently evicted from probation: straight to Am.
                    del _ghosts[it]
                    _am[it] = None
                else:
                    _a1in[it] = None
                if record is not None:
                    record.append(KIND_MISS)
        st[0], st[1], st[2] = misses, temporal, evicted

    def finish() -> _Counts:
        return st[0], st[1], 0, st[0], st[2]

    return run, finish


def _kernel_marking_lru(ct: CompiledTrace, capacity: int, record: _Record):
    """Traditional marking (LRU victim among unmarked), loads only the
    requested item — mirrors
    :class:`~repro.policies.marking.MarkingLRU` including the phase
    reset (clear marks when every resident is marked, checked only when
    an eviction is needed)."""
    order: Dict[int, None] = {}  # insertion order = LRU→MRU
    marked: set = set()
    st = [0, 0, 0]  # misses, temporal, evicted

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, evicted = st
        d, mk = order, marked
        for it in dense:
            if it in d:
                d[it] = d.pop(it)
                mk.add(it)
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            else:
                misses += 1
                if len(d) >= capacity:
                    if len(mk) >= len(d):
                        mk.clear()  # new phase
                    victim = next(k for k in d if k not in mk)
                    del d[victim]
                    evicted += 1
                d[it] = None
                mk.add(it)
                if record is not None:
                    record.append(KIND_MISS)
        st[0], st[1], st[2] = misses, temporal, evicted

    def finish() -> _Counts:
        return st[0], st[1], 0, st[0], st[2]

    return run, finish


# -- block-granularity kernels (referee hit-taxonomy replicated) ------------
def _kernel_gcm(
    ct: CompiledTrace,
    capacity: int,
    seed: int,
    mark_side_loads: bool,
    max_load: Optional[int],
    record: _Record,
):
    """Granularity-Change Marking family (§6.1), RNG bit-identical.

    Replays :class:`~repro.policies.marking._GCMBase` verbatim on
    original item ids: the same ``sorted()`` candidate orderings, the
    same ``rng.integers``/``rng.shuffle`` call sequence on the same
    seeded generator, the same churn algebra (a same-block step-1
    victim can be re-loaded as a neighbour) and the engine's
    spatial-pending classification.  ``mark_side_loads`` selects
    gcm vs gcm-markall; ``max_load`` is gcm-partial's dial.

    The referee materialises and sorts the candidate set per eviction
    (``sorted(res - mk)[rng.integers(n)]`` — O(k log k) per miss).
    The kernel answers the same query as a *rank selection*: the draw
    ``idx = rng.integers(n)`` picks the ``(idx+1)``-th smallest
    candidate id, which two Fenwick trees over original item ids
    (resident / unmarked-resident membership) select in O(log U).
    The RNG argument is the candidate *count* and the selected id is
    the same order statistic, so the draw sequence and every victim
    are bit-identical to the referee — only the cost changes.
    """
    rng = np.random.default_rng(seed)
    resident: set = set()
    marked: set = set()
    pending: set = set()  # side-loaded residents not yet hit
    members_of = ct.block_members
    # Fenwick (binary-indexed) membership trees over original item ids;
    # ``item_block`` covers every id a GCM replay can ever load.
    n_ids = (max(ct.item_block) + 1) if ct.item_block else 1
    rtree = [0] * (n_ids + 1)  # all residents
    utree = [0] * (n_ids + 1)  # unmarked residents (phase candidates)
    top = 1
    while (top << 1) <= n_ids:
        top <<= 1
    fw = [0, 0]  # (resident count, unmarked count) across chunks

    def fw_add(tree: List[int], i: int, d: int) -> None:
        i += 1
        while i <= n_ids:
            tree[i] += d
            i += i & -i

    def fw_select(tree: List[int], k: int) -> int:
        """The item id holding rank ``k`` (1-based k-th smallest)."""
        pos = 0
        bit = top
        while bit:
            nxt = pos + bit
            if nxt <= n_ids and tree[nxt] < k:
                pos = nxt
                k -= tree[nxt]
            bit >>= 1
        return pos

    st = [0, 0, 0, 0, 0]  # misses, temporal, spatial, loaded_n, evicted_n

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, spatial, loaded_n, evicted_n = st
        rcount, ucount = fw
        integers, shuffle = rng.integers, rng.shuffle
        res, mk, pend = resident, marked, pending
        for it, blk in zip(items, blocks):
            if it in res:
                if it not in mk:
                    mk.add(it)
                    fw_add(utree, it, -1)
                    ucount -= 1
                if it in pend:
                    pend.discard(it)
                    spatial += 1
                    if record is not None:
                        record.append(KIND_SPATIAL)
                else:
                    temporal += 1
                    if record is not None:
                        record.append(KIND_TEMPORAL)
                continue
            loaded: set = set()
            evicted: set = set()
            # 1. Load and mark the requested item.  The victim is the
            # referee's ``sorted(res - mk)[idx]`` selected by rank.
            if rcount >= capacity:
                if ucount == 0:
                    mk.clear()  # phase ends: all residents candidates
                    utree[:] = rtree
                    ucount = rcount
                victim = fw_select(utree, int(integers(ucount)) + 1)
                fw_add(utree, victim, -1)
                ucount -= 1
                fw_add(rtree, victim, -1)
                rcount -= 1
                res.discard(victim)
                evicted.add(victim)
            res.add(it)
            mk.add(it)
            loaded.add(it)
            fw_add(rtree, it, 1)
            rcount += 1
            # 2. Bring in the rest of the block, replacing unmarked
            # items (never this access's own loads).
            neighbours = [x for x in members_of[blk] if x not in res]
            if neighbours:
                shuffle(neighbours)
            if max_load is not None:
                neighbours = neighbours[: max_load - 1]
            side_loaded: List[int] = []
            for nb in neighbours:
                if rcount >= capacity:
                    # Referee candidates = res - mk - loaded.  This
                    # access's unmarked side loads enter ``utree`` only
                    # after the loop, so the tree holds exactly that
                    # set and ``ucount`` is the referee's count.
                    if ucount == 0:
                        break
                    victim = fw_select(utree, int(integers(ucount)) + 1)
                    fw_add(utree, victim, -1)
                    ucount -= 1
                    fw_add(rtree, victim, -1)
                    rcount -= 1
                    res.discard(victim)
                    evicted.add(victim)
                res.add(nb)
                loaded.add(nb)
                fw_add(rtree, nb, 1)
                rcount += 1
                if mark_side_loads:
                    mk.add(nb)
                else:
                    side_loaded.append(nb)
            # Deferred: this access's unmarked side loads become
            # eviction candidates for later accesses only.
            for nb in side_loaded:
                fw_add(utree, nb, 1)
            ucount += len(side_loaded)
            # (The referee's ``marked &= resident`` is a no-op: victims
            # are always unmarked at eviction time.)
            churn = loaded & evicted
            eff_loaded = loaded - churn
            eff_evicted = evicted - churn
            misses += 1
            loaded_n += len(eff_loaded)
            evicted_n += len(eff_evicted)
            pend -= eff_evicted
            for member in eff_loaded:
                if member != it:
                    pend.add(member)
                else:
                    pend.discard(member)
            if record is not None:
                record.append(KIND_MISS)
        st[0], st[1], st[2], st[3], st[4] = (
            misses,
            temporal,
            spatial,
            loaded_n,
            evicted_n,
        )
        fw[0], fw[1] = rcount, ucount

    def finish() -> _Counts:
        return st[0], st[1], st[2], st[3], st[4]

    return run, finish


def _kernel_block(
    ct: CompiledTrace, capacity: int, touch_on_hit: bool, record: _Record
):
    """Whole-block LRU/FIFO mirroring ``_BlockPolicyBase`` + the
    referee's spatial-pending classification."""
    blocks_d: Dict[int, Tuple[int, ...]] = {}  # insertion order = LRU→MRU
    resident: set = set()
    pending: set = set()  # side-loaded residents not yet hit
    members_of = ct.block_members
    st = [0, 0, 0, 0, 0]  # misses, temporal, spatial, loaded_n, evicted_n

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, spatial, loaded_n, evicted_n = st
        bd, res, pend = blocks_d, resident, pending
        for it, blk in zip(items, blocks):
            if blk in bd:
                if it in res:
                    if touch_on_hit:
                        bd[blk] = bd.pop(blk)
                    if it in pend:
                        pend.discard(it)
                        spatial += 1
                        if record is not None:
                            record.append(KIND_SPATIAL)
                    else:
                        temporal += 1
                        if record is not None:
                            record.append(KIND_TEMPORAL)
                    continue
                # Trimmed residue (k < |block|): replace the stale entry.
                stale = bd.pop(blk)
                res.difference_update(stale)
                evicted = set(stale)
            else:
                evicted = set()
            members = members_of[blk]
            load = members
            if len(members) > capacity:
                keep = [it]
                for m in members:
                    if m != it and len(keep) < capacity:
                        keep.append(m)
                load = tuple(sorted(keep))
            while len(res) + len(load) > capacity:
                victim_block = next(iter(bd))
                victim_items = bd.pop(victim_block)
                evicted.update(victim_items)
                res.difference_update(victim_items)
            bd[blk] = load
            res.update(load)
            load_set = set(load)
            churn = load_set & evicted
            eff_loaded = load_set - churn
            eff_evicted = evicted - churn
            misses += 1
            loaded_n += len(eff_loaded)
            evicted_n += len(eff_evicted)
            pend -= eff_evicted
            for member in eff_loaded:
                if member != it:
                    pend.add(member)
                else:
                    pend.discard(member)
            if record is not None:
                record.append(KIND_MISS)
        st[0], st[1], st[2], st[3], st[4] = (
            misses,
            temporal,
            spatial,
            loaded_n,
            evicted_n,
        )

    def finish() -> _Counts:
        return st[0], st[1], st[2], st[3], st[4]

    return run, finish


def _kernel_iblp(
    ct: CompiledTrace,
    capacity: int,
    item_layer_size: int,
    block_first: bool,
    record: _Record,
):
    """IBLP (canonical and block-first ablation) with union refcounting.

    ``block_first`` reproduces
    :class:`~repro.policies.iblp.BlockFirstIBLP`: the block layer's
    recency is refreshed on *every* access to a resident block — §5.1's
    pollution hazard — before the item layer is consulted.
    """
    ils = item_layer_size
    bls = capacity - ils
    items_d: Dict[int, None] = {}  # item layer, insertion order = LRU→MRU
    blocks_d: Dict[int, Tuple[int, ...]] = {}  # block layer
    refcount: Dict[int, int] = {}  # item -> number of layers holding it
    occupancy_cell = [0]  # item slots used by the block layer
    pending: set = set()
    members_of = ct.block_members
    st = [0, 0, 0, 0, 0]  # misses, temporal, spatial, loaded_n, evicted_n

    def acquire(x: int, loaded: set) -> None:
        n = refcount.get(x, 0)
        refcount[x] = n + 1
        if n == 0:
            loaded.add(x)

    def release(x: int, evicted: set) -> None:
        n = refcount[x] - 1
        if n:
            refcount[x] = n
        else:
            del refcount[x]
            evicted.add(x)

    def item_insert(x: int, loaded: set, evicted: set) -> None:
        if ils == 0:
            return
        if x in items_d:
            items_d[x] = items_d.pop(x)
            return
        if len(items_d) >= ils:
            victim = next(iter(items_d))
            del items_d[victim]
            release(victim, evicted)
        items_d[x] = None
        acquire(x, loaded)

    def block_insert(blk: int, x: int, loaded: set, evicted: set) -> None:
        if bls == 0:
            return
        if blk in blocks_d:
            stale = blocks_d.pop(blk)
            occupancy_cell[0] -= len(stale)
            for s in stale:
                release(s, evicted)
        members = members_of[blk]
        load = members
        if len(members) > bls:
            keep = [x] + [m for m in members if m != x]
            load = tuple(keep[:bls])
        while occupancy_cell[0] + len(load) > bls:
            victim_block = next(iter(blocks_d))
            victim_items = blocks_d.pop(victim_block)
            occupancy_cell[0] -= len(victim_items)
            for v in victim_items:
                release(v, evicted)
        blocks_d[blk] = load
        occupancy_cell[0] += len(load)
        for member in load:
            acquire(member, loaded)

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, spatial, loaded_n, evicted_n = st
        pend = pending
        for it, blk in zip(items, blocks):
            if block_first:
                block_hit = blk in blocks_d
                if block_hit:
                    blocks_d[blk] = blocks_d.pop(blk)  # harmful reordering
            if it in items_d:
                items_d[it] = items_d.pop(it)  # pure item-layer hit
                if it in pend:
                    pend.discard(it)
                    spatial += 1
                    if record is not None:
                        record.append(KIND_SPATIAL)
                else:
                    temporal += 1
                    if record is not None:
                        record.append(KIND_TEMPORAL)
                continue
            if not block_first:
                block_hit = blk in blocks_d
            loaded: set = set()
            evicted: set = set()
            if block_hit and it in refcount:
                # Block-layer hit: refresh recency, promote the item.
                if not block_first:
                    blocks_d[blk] = blocks_d.pop(blk)
                item_insert(it, loaded, evicted)
                loaded.discard(it)  # promoting a resident is not a load
                eff_evicted = evicted - (loaded & evicted)
                evicted_n += len(eff_evicted)
                pend -= eff_evicted
                if it in pend:
                    pend.discard(it)
                    spatial += 1
                    if record is not None:
                        record.append(KIND_SPATIAL)
                else:
                    temporal += 1
                    if record is not None:
                        record.append(KIND_TEMPORAL)
                continue
            # Full miss: both layers load.
            item_insert(it, loaded, evicted)
            block_insert(blk, it, loaded, evicted)
            churn = loaded & evicted
            eff_loaded = loaded - churn
            eff_evicted = evicted - churn
            misses += 1
            loaded_n += len(eff_loaded)
            evicted_n += len(eff_evicted)
            pend -= eff_evicted
            for member in eff_loaded:
                if member != it:
                    pend.add(member)
                else:
                    pend.discard(member)
            if record is not None:
                record.append(KIND_MISS)
        st[0], st[1], st[2], st[3], st[4] = (
            misses,
            temporal,
            spatial,
            loaded_n,
            evicted_n,
        )

    def finish() -> _Counts:
        return st[0], st[1], st[2], st[3], st[4]

    return run, finish


def _kernel_iblp_adaptive(
    ct: CompiledTrace,
    capacity: int,
    initial_item_fraction: float,
    ghost_factor: float,
    max_block_size: int,
    record: _Record,
):
    """Adaptive-split IBLP mirroring
    :class:`~repro.policies.adaptive_iblp.AdaptiveIBLP`: ARC-style
    ghost lists move the float layer boundary (+1 per item-ghost hit,
    -B per block-ghost hit), layers shed lazily, and all victims are
    remembered in bounded ghosts — exactly the referee's order of
    operations, so the boundary trajectory is identical.
    """
    items_d: Dict[int, None] = {}
    blocks_d: Dict[int, Tuple[int, ...]] = {}
    refcount: Dict[int, int] = {}
    ghost_items: Dict[int, None] = {}
    ghost_blocks: Dict[int, None] = {}
    ghost_item_cap = max(1, int(capacity * ghost_factor))
    ghost_block_cap = max(1, int(capacity * ghost_factor) // max_block_size)
    pending: set = set()
    members_of = ct.block_members
    # target_i (float) and block occupancy live in cells: the helpers
    # below mutate them across chunk boundaries.
    target = [capacity * initial_item_fraction]
    occ = [0]
    st = [0, 0, 0, 0, 0]  # misses, temporal, spatial, loaded_n, evicted_n

    def acquire(x: int, loaded: set) -> None:
        n = refcount.get(x, 0)
        refcount[x] = n + 1
        if n == 0:
            loaded.add(x)

    def release(x: int, evicted: set) -> None:
        n = refcount[x] - 1
        if n:
            refcount[x] = n
        else:
            del refcount[x]
            evicted.add(x)

    def remember_item(x: int) -> None:
        if x in ghost_items:
            ghost_items[x] = ghost_items.pop(x)
        else:
            ghost_items[x] = None
            if len(ghost_items) > ghost_item_cap:
                del ghost_items[next(iter(ghost_items))]

    def remember_block(b: int) -> None:
        if b in ghost_blocks:
            ghost_blocks[b] = ghost_blocks.pop(b)
        else:
            ghost_blocks[b] = None
            if len(ghost_blocks) > ghost_block_cap:
                del ghost_blocks[next(iter(ghost_blocks))]

    def shrink_layers(loaded: set, evicted: set) -> None:
        i_cap = int(target[0])
        b_cap = capacity - i_cap
        while len(items_d) > i_cap:
            victim = next(iter(items_d))
            del items_d[victim]
            remember_item(victim)
            release(victim, evicted)
        while occ[0] > b_cap and blocks_d:
            blk = next(iter(blocks_d))
            members = blocks_d.pop(blk)
            occ[0] -= len(members)
            remember_block(blk)
            for x in members:
                release(x, evicted)

    def promote(x: int, loaded: set, evicted: set) -> None:
        i_cap = int(target[0])
        if i_cap == 0:
            return
        if x in items_d:
            items_d[x] = items_d.pop(x)
            return
        while len(items_d) >= i_cap and items_d:
            victim = next(iter(items_d))
            del items_d[victim]
            remember_item(victim)
            release(victim, evicted)
        items_d[x] = None
        acquire(x, loaded)

    def promote_forced(x: int, loaded: set, evicted: set) -> None:
        if len(items_d) >= max(1, int(target[0])):
            victim = next(iter(items_d))
            del items_d[victim]
            remember_item(victim)
            release(victim, evicted)
        items_d[x] = None
        acquire(x, loaded)

    def insert_block(blk: int, x: int, loaded: set, evicted: set) -> None:
        b_cap = capacity - int(target[0])
        if b_cap == 0:
            # No block layer: ensure the item itself is resident.
            if x not in refcount:
                promote_forced(x, loaded, evicted)
            return
        if blk in blocks_d:
            stale = blocks_d.pop(blk)
            occ[0] -= len(stale)
            for s in stale:
                release(s, evicted)
        members = members_of[blk]
        load = members
        if len(members) > b_cap:
            keep = [x] + [m for m in members if m != x]
            load = tuple(keep[:b_cap])
        while occ[0] + len(load) > b_cap and blocks_d:
            victim_block = next(iter(blocks_d))
            victim_items = blocks_d.pop(victim_block)
            occ[0] -= len(victim_items)
            remember_block(victim_block)
            for v in victim_items:
                release(v, evicted)
        blocks_d[blk] = load
        occ[0] += len(load)
        for member in load:
            acquire(member, loaded)

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, spatial, loaded_n, evicted_n = st
        pend = pending
        for it, blk in zip(items, blocks):
            if it in items_d:
                items_d[it] = items_d.pop(it)
                if it in pend:
                    pend.discard(it)
                    spatial += 1
                    if record is not None:
                        record.append(KIND_SPATIAL)
                else:
                    temporal += 1
                    if record is not None:
                        record.append(KIND_TEMPORAL)
                continue
            loaded: set = set()
            evicted: set = set()
            if blk in blocks_d and it in refcount:
                blocks_d[blk] = blocks_d.pop(blk)
                promote(it, loaded, evicted)
                loaded.discard(it)
                eff_evicted = evicted - (loaded & evicted)
                evicted_n += len(eff_evicted)
                pend -= eff_evicted
                if it in pend:
                    pend.discard(it)
                    spatial += 1
                    if record is not None:
                        record.append(KIND_SPATIAL)
                else:
                    temporal += 1
                    if record is not None:
                        record.append(KIND_TEMPORAL)
                continue
            # Miss: consult the ghosts to move the boundary first.
            if it in ghost_items:
                del ghost_items[it]
                target[0] = min(float(capacity), target[0] + 1.0)
            elif blk in ghost_blocks:
                del ghost_blocks[blk]
                target[0] = max(0.0, target[0] - float(max_block_size))
            shrink_layers(loaded, evicted)
            promote(it, loaded, evicted)
            insert_block(blk, it, loaded, evicted)
            churn = loaded & evicted
            eff_loaded = loaded - churn
            eff_evicted = evicted - churn
            misses += 1
            loaded_n += len(eff_loaded)
            evicted_n += len(eff_evicted)
            pend -= eff_evicted
            for member in eff_loaded:
                if member != it:
                    pend.add(member)
                else:
                    pend.discard(member)
            if record is not None:
                record.append(KIND_MISS)
        st[0], st[1], st[2], st[3], st[4] = (
            misses,
            temporal,
            spatial,
            loaded_n,
            evicted_n,
        )

    def finish() -> _Counts:
        return st[0], st[1], st[2], st[3], st[4]

    return run, finish


def _kernel_athreshold(ct: CompiledTrace, capacity: int, a: int, record: _Record):
    """LRU item eviction; whole-block load on the ``a``-th distinct miss."""
    order: Dict[int, None] = {}  # insertion order = LRU→MRU
    resident: set = set()
    block_miss_count: Dict[int, int] = {}
    block_resident_count: Dict[int, int] = {}
    pending: set = set()
    members_of = ct.block_members
    block_of = ct.item_block
    st = [0, 0, 0, 0, 0]  # misses, temporal, spatial, loaded_n, evicted_n

    def run(items: List[int], blocks: List[int], dense: List[int]) -> None:
        misses, temporal, spatial, loaded_n, evicted_n = st
        res, pend = resident, pending
        for it, blk in zip(items, blocks):
            if it in res:
                order[it] = order.pop(it)
                if it in pend:
                    pend.discard(it)
                    spatial += 1
                    if record is not None:
                        record.append(KIND_SPATIAL)
                else:
                    temporal += 1
                    if record is not None:
                        record.append(KIND_TEMPORAL)
                continue
            misses_so_far = block_miss_count.get(blk, 0) + 1
            block_miss_count[blk] = misses_so_far
            if misses_so_far >= a:
                want = [m for m in members_of[blk] if m not in res]
                if len(want) > capacity:
                    want = [it] + [w for w in want if w != it]
                    want = want[:capacity]
            else:
                want = [it]
            protect = set(want)
            loaded: set = set()
            evicted: set = set()
            for w in want:
                if len(res) >= capacity:
                    victim = -1
                    for key in order:
                        if key not in protect:
                            victim = key
                            break
                    if victim < 0:  # pragma: no cover - mirrors referee guard
                        raise ConfigurationError(
                            "cannot evict: every resident item is protected"
                        )
                    del order[victim]
                    res.discard(victim)
                    vblk = block_of[victim]
                    n = block_resident_count[vblk] - 1
                    if n:
                        block_resident_count[vblk] = n
                    else:
                        del block_resident_count[vblk]
                        block_miss_count.pop(vblk, None)
                    evicted.add(victim)
                res.add(w)
                order[w] = None
                wblk = block_of[w]
                block_resident_count[wblk] = block_resident_count.get(wblk, 0) + 1
                loaded.add(w)
            misses += 1
            loaded_n += len(loaded)
            evicted_n += len(evicted)
            pend -= evicted
            for member in loaded:
                if member != it:
                    pend.add(member)
                else:
                    pend.discard(member)
            if record is not None:
                record.append(KIND_MISS)
        st[0], st[1], st[2], st[3], st[4] = (
            misses,
            temporal,
            spatial,
            loaded_n,
            evicted_n,
        )

    def finish() -> _Counts:
        return st[0], st[1], st[2], st[3], st[4]

    return run, finish


# -- dispatch ----------------------------------------------------------------
_DISPATCH: Dict[type, _Kernel] = {
    ItemLRU: lambda ct, p, rec: _kernel_item_recency(ct, p.capacity, True, rec),
    ItemFIFO: lambda ct, p, rec: _kernel_item_recency(ct, p.capacity, False, rec),
    ItemMRU: lambda ct, p, rec: _kernel_item_mru(ct, p.capacity, rec),
    ItemClock: lambda ct, p, rec: _kernel_item_clock(ct, p.capacity, rec),
    ItemLFU: lambda ct, p, rec: _kernel_item_lfu(ct, p.capacity, rec),
    ItemRandom: lambda ct, p, rec: _kernel_item_random(ct, p.capacity, p.seed, rec),
    ItemTwoQ: lambda ct, p, rec: _kernel_item_twoq(
        ct, p.capacity, p.probation_fraction, p.ghost_fraction, rec
    ),
    MarkingLRU: lambda ct, p, rec: _kernel_marking_lru(ct, p.capacity, rec),
    GCM: lambda ct, p, rec: _kernel_gcm(ct, p.capacity, p.seed, False, None, rec),
    MarkAllGCM: lambda ct, p, rec: _kernel_gcm(
        ct, p.capacity, p.seed, True, None, rec
    ),
    PartialGCM: lambda ct, p, rec: _kernel_gcm(
        ct, p.capacity, p.seed, False, p.max_load, rec
    ),
    BlockLRU: lambda ct, p, rec: _kernel_block(ct, p.capacity, True, rec),
    BlockFIFO: lambda ct, p, rec: _kernel_block(ct, p.capacity, False, rec),
    IBLP: lambda ct, p, rec: _kernel_iblp(
        ct, p.capacity, p.item_layer_size, False, rec
    ),
    BlockFirstIBLP: lambda ct, p, rec: _kernel_iblp(
        ct, p.capacity, p.item_layer_size, True, rec
    ),
    AdaptiveIBLP: lambda ct, p, rec: _kernel_iblp_adaptive(
        ct,
        p.capacity,
        p.initial_item_fraction,
        p.ghost_factor,
        p.mapping.max_block_size,
        rec,
    ),
    AThresholdLRU: lambda ct, p, rec: _kernel_athreshold(ct, p.capacity, p.a, rec),
}

#: Registry names with a replay kernel — every *online* registered
#: policy (parameterized families count once: every ``a`` shares the
#: ``athreshold-lru`` kernel, every seed its policy's kernel).  Only
#: the offline Belady policies replay referee-side.
FAST_POLICY_NAMES: Tuple[str, ...] = tuple(
    sorted(cls.name for cls in _DISPATCH)
)


def _mappings_equivalent(policy, trace: Trace) -> bool:
    """Whether kernels may use the trace's mapping for both roles.

    The referee runs the policy against ``policy.mapping`` while
    shadow-validating against ``trace.mapping``; kernels collapse the
    two, which is only sound when they denote the same partition.
    """
    pm, tm = policy.mapping, trace.mapping
    if pm is tm:
        return True
    return (
        isinstance(pm, FixedBlockMapping)
        and isinstance(tm, FixedBlockMapping)
        and pm.universe == tm.universe
        and pm.max_block_size == tm.max_block_size
    )


def supports(policy) -> bool:
    """Whether ``policy`` (by exact type) has a replay kernel."""
    return type(policy) in _DISPATCH


def fast_fallback_reason(policy, trace: Trace) -> Optional[str]:
    """Why :func:`fast_simulate` would fall back for this pair, if so.

    Returns one of ``"unsupported-policy"``, ``"mapping-mismatch"``,
    ``"warm-policy"``, or ``None`` when a kernel applies.  The engine
    surfaces this as :attr:`SimResult.fallback_reason` telemetry and a
    ``fast.fallback`` span whenever ``simulate(fast=True)`` ends up on
    the referee path (observation requests are reported there as
    ``"observed"`` — they gate the fast attempt before this check).
    """
    if type(policy) not in _DISPATCH:
        return "unsupported-policy"
    if not _mappings_equivalent(policy, trace):
        return "mapping-mismatch"
    if policy.resident_items():
        return "warm-policy"
    return None


def fast_simulate(policy, trace: Trace, record: _Record = None) -> Optional[SimResult]:
    """Replay ``policy`` over ``trace`` with a kernel, if one applies.

    Returns the referee-identical :class:`SimResult`, or ``None`` when
    the policy has no kernel, is already warm, or its mapping cannot be
    collapsed with the trace's (see the module docstring's fallback
    rules).  ``record``, if given, receives one
    :data:`KIND_MISS`/:data:`KIND_TEMPORAL`/:data:`KIND_SPATIAL` code
    per access — the stream the conformance harness diffs against the
    referee's ``on_access`` observations.  The policy object is never
    mutated.
    """
    make = _DISPATCH.get(type(policy))
    if make is None:
        return None
    if not _mappings_equivalent(policy, trace):
        return None
    if policy.resident_items():
        return None  # warm policy: replay state only the referee tracks
    with spans.span(
        "fast.replay",
        policy=getattr(policy, "name", type(policy).__name__),
        capacity=policy.capacity,
    ) as sp:
        compiled = compile_trace(trace)
        if sp is not None:
            sp.set("accesses", compiled.n)
        run, finish = make(compiled, policy, record)
        for items_c, blocks_c, dense_c in compiled.iter_chunks():
            run(items_c, blocks_c, dense_c)
        misses, temporal, spatial, loaded, evicted = finish()
    result = SimResult(
        policy=getattr(policy, "name", type(policy).__name__),
        capacity=policy.capacity,
    )
    result.metadata.update(
        {k: v for k, v in trace.metadata.items() if isinstance(v, (str, int, float))}
    )
    result.accesses = compiled.n
    result.misses = misses
    result.temporal_hits = temporal
    result.spatial_hits = spatial
    result.loaded_items = loaded
    result.evicted_items = evicted
    return result


# -- vectorized stack distances [Mattson et al. 1970] ------------------------
#
# The batched multi-capacity kernels below rest on reuse (stack)
# distances: dist[t] = number of distinct ids referenced since the
# previous access to ids[t] (cold accesses get -1).  An LRU cache of
# capacity k hits access t iff 0 <= dist[t] < k, so one pass prices
# every capacity simultaneously.
#
# Let prev[t] be the position of the previous access to ids[t] (-1 when
# cold).  Positions s in the window (prev[t], t) contribute one distinct
# id each unless they are themselves repeats *within* the window, i.e.
# prev[s] > prev[t] (prev values >= 0 are distinct positions, so for
# s in the window, prev[s] > prev[t] puts prev[s] strictly inside it;
# for s <= prev[t], prev[s] < s <= prev[t] never counts).  Hence
#
#     dist[t] = (t - prev[t] - 1) - #{s < t : prev[s] > prev[t]}
#
# and the problem reduces to counting, per element, earlier elements
# with a greater value — a dominance count done here with a bottom-up
# mergesort sweep in numpy (log T levels of whole-array sorts and
# searchsorteds) instead of a per-access Fenwick loop.


def _count_earlier_greater(values: np.ndarray) -> np.ndarray:
    """``counts[t] = #{s < t : values[s] > values[t]}``, vectorized.

    Bottom-up mergesort scheme: at the level of half-width ``w`` each
    element in the right half of a ``2w`` block counts the strictly
    greater elements in its left sibling; every pair ``s < t`` meets at
    exactly one level, so the per-level counts sum to the dominance
    count.  Each level is one whole-array ``np.sort`` plus one flat
    ``np.searchsorted`` (rows separated by disjoint key offsets), so
    the total is O(T log^2 T) spread over ~log T numpy passes.
    """
    n = int(values.size)
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    v = np.ascontiguousarray(values, dtype=np.int64)
    lo = int(v.min())
    hi = int(v.max())
    span_key = hi - lo + 2  # per-block key offset stride (no collisions)

    # Width-1 level: plain pairwise compares.
    m2 = (n // 2) * 2
    counts[1:m2:2] = v[0:m2:2] > v[1:m2:2]

    # Width-2 level: blocks of 4, left pair vs right pair.
    m4 = (n // 4) * 4
    blk = v[:m4].reshape(-1, 4)
    counts[2:m4:4] += (blk[:, 0] > blk[:, 2]).astype(np.int64) + (
        blk[:, 1] > blk[:, 2]
    )
    counts[3:m4:4] += (blk[:, 0] > blk[:, 3]).astype(np.int64) + (
        blk[:, 1] > blk[:, 3]
    )
    # Width-2 ragged tail: a lone third element in a partial block of 4
    # still has a full left sibling pair.  (Width 1 has no ragged case:
    # every odd index < 2*(n//2) is covered by the slice above.)
    if n - m4 == 3:
        counts[m4 + 2] += int(v[m4] > v[m4 + 2]) + int(v[m4 + 1] > v[m4 + 2])

    width = 4
    while width < n:
        span = 2 * width
        nblocks = -(-n // span)
        pad_n = nblocks * span
        if pad_n == n:
            padded = v
        else:
            # Suffix padding is safe: a left half containing padding
            # implies its right half lies entirely past the real data.
            padded = np.empty(pad_n, dtype=np.int64)
            padded[:n] = v
            padded[n:] = lo
        blocks = padded.reshape(nblocks, span)
        left_sorted = np.sort(blocks[:, :width], axis=1)
        base = np.arange(nblocks, dtype=np.int64) * span_key
        flat_sorted = (left_sorted + base[:, None]).ravel()
        queries = (blocks[:, width:] + base[:, None]).ravel()
        le = np.searchsorted(flat_sorted, queries, side="right")
        le -= np.repeat(np.arange(nblocks, dtype=np.int64) * width, width)
        # Global positions of right-half elements (block-major, so the
        # sequence is increasing: real entries form a prefix).
        pos = (np.arange(pad_n, dtype=np.int64).reshape(nblocks, span))[
            :, width:
        ].ravel()
        nreal = int(np.searchsorted(pos, n))
        counts[pos[:nreal]] += width - le[:nreal]
        width = span
    return counts


def _prev_occurrence(arr: np.ndarray) -> np.ndarray:
    """Index of the previous access to each id (-1 when cold)."""
    n = int(arr.size)
    prev = np.full(n, -1, dtype=np.int64)
    if n:
        order = np.argsort(arr, kind="stable")
        srt = arr[order]
        same = srt[1:] == srt[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def stack_distances(ids: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU reuse (stack) distance of each access; cold accesses get -1.

    ``distance[t]`` is the number of distinct ids seen since the
    previous access to ``ids[t]``; an LRU cache of capacity ``k`` hits
    access ``t`` iff ``0 <= distance[t] < k``.  Fully vectorized — see
    the derivation above :func:`_count_earlier_greater`.
    """
    arr = np.asarray(ids, dtype=np.int64)
    n = int(arr.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    with spans.span("fast.mattson", accesses=n):
        prev = _prev_occurrence(arr)
        out = (
            np.arange(n, dtype=np.int64) - prev - 1 - _count_earlier_greater(prev)
        )
        out[prev < 0] = -1
    return out


# -- batched multi-capacity replay -------------------------------------------

#: Stack (inclusion) policies with a batched multi-capacity kernel.
MULTI_CAPACITY_POLICIES: Tuple[str, ...] = ("block-lru", "item-lru")


def _uniform_block_size(trace: Trace) -> Optional[int]:
    """Common size of every *referenced* block, or ``None`` if ragged."""
    bt = trace.block_trace()
    if bt.size == 0:
        return int(trace.mapping.max_block_size)
    blocks = np.unique(bt)
    mapping = trace.mapping
    if isinstance(mapping, FixedBlockMapping):
        B = mapping.max_block_size
        sizes = np.minimum(B, mapping.universe - blocks * B)
    else:
        sizes = np.asarray(
            [len(mapping.items_in(int(b))) for b in blocks], dtype=np.int64
        )
    first = int(sizes[0])
    return first if bool((sizes == first).all()) else None


def _valid_capacities(capacities: Sequence[int]) -> bool:
    if not len(list(capacities)):
        return False
    return all(
        isinstance(k, int) and not isinstance(k, bool) and k >= 1
        for k in capacities
    )


def multi_capacity_supported(
    policy_name: str, trace: Trace, capacities: Sequence[int]
) -> bool:
    """Whether :func:`multi_capacity_replay` covers this configuration.

    Item-LRU is a stack policy outright.  Block-LRU reduces to a stack
    policy over the block projection only when every referenced block
    has one common size ``S`` and every capacity is at least ``S`` (so
    no block load is ever trimmed and a capacity-``k`` cache holds
    exactly ``k // S`` blocks); ragged partitions or sub-block
    capacities fall back to per-capacity replay.
    """
    if policy_name not in MULTI_CAPACITY_POLICIES:
        return False
    if not _valid_capacities(capacities):
        return False
    if policy_name == "block-lru":
        size = _uniform_block_size(trace)
        if size is None or min(capacities) < size:
            return False
    return True


def _batch_result(
    policy_name: str,
    capacity: int,
    trace: Trace,
    accesses: int,
    misses: int,
    temporal: int,
    spatial: int,
    loaded: int,
    evicted: int,
) -> SimResult:
    """Assemble one batched result exactly as :func:`fast_simulate`."""
    result = SimResult(policy=policy_name, capacity=capacity)
    result.metadata.update(
        {k: v for k, v in trace.metadata.items() if isinstance(v, (str, int, float))}
    )
    result.accesses = accesses
    result.misses = misses
    result.temporal_hits = temporal
    result.spatial_hits = spatial
    result.loaded_items = loaded
    result.evicted_items = evicted
    return result


def _multi_capacity_item_lru(
    trace: Trace, caps: List[int], record: Optional[Dict[int, List[int]]]
) -> Dict[int, SimResult]:
    n = int(trace.items.size)
    dist = stack_distances(trace.items)
    n_distinct = int((dist < 0).sum())  # one cold access per distinct item
    finite = dist[dist >= 0]
    top = max(caps)
    hist = np.bincount(np.minimum(finite, top), minlength=top + 1)
    cum_hits = np.cumsum(hist)  # cum_hits[j] = #{0 <= dist <= j}
    out: Dict[int, SimResult] = {}
    for k in caps:
        hits = int(cum_hits[k - 1])  # k <= top, so k-1 always indexes
        misses = n - hits
        out[k] = _batch_result(
            "item-lru",
            k,
            trace,
            accesses=n,
            misses=misses,
            temporal=hits,  # item caches never side-load: no spatial hits
            spatial=0,
            loaded=misses,
            evicted=misses - min(n_distinct, k),
        )
        if record is not None:
            record[k] = np.where((dist < 0) | (dist >= k), KIND_MISS, KIND_TEMPORAL).tolist()
    return out


def _multi_capacity_block_lru(
    trace: Trace, caps: List[int], record: Optional[Dict[int, List[int]]]
) -> Dict[int, SimResult]:
    n = int(trace.items.size)
    size = _uniform_block_size(trace)
    assert size is not None and (not caps or min(caps) >= size)
    bt = trace.block_trace()
    bdist = stack_distances(bt)
    p_item = _prev_occurrence(trace.items)
    distinct_blocks = int((bdist < 0).sum())
    # Accesses grouped by block, time-ascending within each group; the
    # per-capacity "last reload before t" scan runs in this layout.
    order = np.argsort(bt, kind="stable")
    grp_start = np.empty(n, dtype=bool)
    if n:
        grp_start[0] = True
        grp_start[1:] = bt[order][1:] != bt[order][:-1]
    rank = np.cumsum(grp_start) - 1
    base = rank * (n + 1)  # disjoint per-group key ranges
    p_item_sorted = p_item[order]
    out: Dict[int, SimResult] = {}
    for k in caps:
        slots = k // size
        miss = (bdist < 0) | (bdist >= slots)
        misses = int(miss.sum())
        # L[t] = position of the latest same-block miss (block reload)
        # strictly before t; every hit has one, since a resident block
        # was necessarily loaded by an earlier miss.  Segmented running
        # max over the grouped layout, shifted by one slot so each
        # access sees only strictly-earlier reloads.
        key = np.where(miss[order], order, -1) + base
        shifted = np.empty(n, dtype=np.int64)
        if n:
            shifted[0] = base[0] - 1
            shifted[1:] = key[:-1]
            shifted[grp_start] = base[grp_start] - 1
        last_reload = np.maximum.accumulate(shifted) - base
        # Spatial hit iff the item's own previous access predates the
        # block's latest reload: the item rode in as a side-load and
        # this is its first touch since (the referee's pending set).
        hit_sorted = ~miss[order]
        spatial_sorted = hit_sorted & (p_item_sorted < last_reload)
        spatial = int(spatial_sorted.sum())
        temporal = n - misses - spatial
        loaded = misses * size
        evicted = loaded - size * min(distinct_blocks, slots)
        out[k] = _batch_result(
            "block-lru",
            k,
            trace,
            accesses=n,
            misses=misses,
            temporal=temporal,
            spatial=spatial,
            loaded=loaded,
            evicted=evicted,
        )
        if record is not None:
            codes_sorted = np.where(
                ~hit_sorted,
                KIND_MISS,
                np.where(spatial_sorted, KIND_SPATIAL, KIND_TEMPORAL),
            )
            codes = np.empty(n, dtype=np.int64)
            codes[order] = codes_sorted
            record[k] = codes.tolist()
    return out


def multi_capacity_replay(
    policy_name: str,
    trace: Trace,
    capacities: Sequence[int],
    record: Optional[Dict[int, List[int]]] = None,
) -> Dict[int, SimResult]:
    """One-pass replay of a stack policy at every capacity at once.

    Computes stack distances once (item granularity for Item-LRU, block
    granularity for Block-LRU) and derives, per capacity, the complete
    :class:`SimResult` — including the temporal/spatial hit taxonomy —
    bit-identical to :func:`fast_simulate` per cell (proven by
    :mod:`repro.core.conformance` and the golden fixtures).  ``record``,
    if given, is filled with ``capacity -> per-access outcome codes``
    streams for the conformance harness.

    Raises :class:`ConfigurationError` when the configuration is not
    supported — gate calls with :func:`multi_capacity_supported`.
    """
    if not multi_capacity_supported(policy_name, trace, capacities):
        raise ConfigurationError(
            f"multi-capacity replay does not cover policy={policy_name!r} "
            f"capacities={list(capacities)!r} on this trace "
            f"(supported policies: {', '.join(MULTI_CAPACITY_POLICIES)}; "
            "block-lru additionally needs a uniform referenced-block "
            "size <= every capacity)"
        )
    caps = sorted(set(int(k) for k in capacities))
    with spans.span(
        "fast.multi_capacity", policy=policy_name, capacities=len(caps)
    ):
        if policy_name == "item-lru":
            return _multi_capacity_item_lru(trace, caps, record)
        return _multi_capacity_block_lru(trace, caps, record)


# -- single-pass multi-policy replay -----------------------------------------

#: Accesses advanced per kernel per slice in :func:`multi_policy_replay`
#: — small enough that one slice's items/blocks/dense lists stay
#: cache-warm while every kernel sweeps them, large enough that the
#: per-slice Python overhead vanishes.
MULTI_POLICY_CHUNK = 65536

#: A cell is ``(policy_name, capacity)`` or
#: ``(policy_name, capacity, policy_kwargs)``.
_Cell = Tuple[str, int, Dict[str, object]]


def _normalize_cells(cells) -> List[_Cell]:
    norm: List[_Cell] = []
    for cell in cells:
        if isinstance(cell, dict):
            kwargs = dict(cell)
            try:
                name = kwargs.pop("policy")
                cap = kwargs.pop("capacity")
            except KeyError as exc:
                raise ConfigurationError(
                    f"multi-policy cell {cell!r} lacks {exc.args[0]!r}"
                ) from None
        else:
            parts = tuple(cell)
            if len(parts) == 2:
                name, cap = parts
                kwargs = {}
            elif len(parts) == 3:
                name, cap, kwargs = parts
                kwargs = dict(kwargs or {})
            else:
                raise ConfigurationError(
                    "multi-policy cells are (policy, capacity) or "
                    f"(policy, capacity, kwargs); got {cell!r}"
                )
        norm.append((name, cap, kwargs))
    return norm


def multi_policy_supported(cells, trace: Trace) -> bool:
    """Whether :func:`multi_policy_replay` covers every cell.

    True when each cell names a registered policy whose exact class has
    a kernel (see :data:`FAST_POLICY_NAMES`) with a valid integer
    capacity.  Policy kwargs are not validated here — a bad kwarg
    raises the same :class:`ConfigurationError` the per-cell path
    would, at replay time.
    """
    try:
        norm = _normalize_cells(cells)
    except (ConfigurationError, TypeError):
        return False
    for name, cap, _kwargs in norm:
        cls = policy_class(name)
        if cls is None or cls not in _DISPATCH:
            return False
        if not isinstance(cap, int) or isinstance(cap, bool) or cap < 1:
            return False
    return True


def _copy_result(res: SimResult) -> SimResult:
    dup = SimResult(policy=res.policy, capacity=res.capacity)
    dup.metadata.update(res.metadata)
    dup.accesses = res.accesses
    dup.misses = res.misses
    dup.temporal_hits = res.temporal_hits
    dup.spatial_hits = res.spatial_hits
    dup.loaded_items = res.loaded_items
    dup.evicted_items = res.evicted_items
    return dup


def multi_policy_replay(
    cells,
    trace: Trace,
    record: Optional[Dict[int, List[int]]] = None,
    chunk: int = MULTI_POLICY_CHUNK,
) -> List[SimResult]:
    """Replay many policies over ``trace`` in one shared traversal.

    ``cells`` is a sequence of ``(policy_name, capacity)`` or
    ``(policy_name, capacity, policy_kwargs)``; the returned list holds
    one :class:`SimResult` per cell, in input order, each bit-identical
    to ``simulate(make_policy(...), trace, fast=True)`` (proven by
    :func:`repro.core.conformance.check_multi_policy` and the golden
    fixtures).  Policy replicas are built from ``trace.mapping``, so
    every kernel applies by construction.

    The trace is compiled once; kwarg-free ``item-lru``/``block-lru``
    groups of two or more cells collapse into one Mattson pass
    (:func:`multi_capacity_replay`) when eligible, and every remaining
    cell becomes a kernel stepper.  The steppers then advance in
    lockstep over ``chunk``-sized slices of the compiled arrays — the
    decode, block-mapping, and load-set tables are shared and each
    slice stays cache-warm across all kernels, which is what makes a
    20-policy matrix cost one traversal instead of twenty.

    ``record``, if given, is filled with ``cell index -> per-access
    outcome codes`` for the conformance harness.  Randomized policies
    keep their generators in kernel closures, so results do not depend
    on ``chunk``.

    Raises :class:`ConfigurationError` when a cell is not covered —
    gate with :func:`multi_policy_supported`.
    """
    norm = _normalize_cells(cells)
    if not multi_policy_supported(norm, trace):
        bad = [
            name
            for name, _c, _k in norm
            if policy_class(name) is None or policy_class(name) not in _DISPATCH
        ]
        raise ConfigurationError(
            f"multi-policy replay does not cover cells={norm!r} "
            f"(policies without kernels: {sorted(set(bad))!r}; "
            f"kernel coverage: {', '.join(FAST_POLICY_NAMES)})"
        )
    results: List[Optional[SimResult]] = [None] * len(norm)
    with spans.span("fast.multi_policy", cells=len(norm)) as sp:
        compiled = compile_trace(trace)
        if sp is not None:
            sp.set("accesses", compiled.n)
        # Kwarg-free stack-policy groups of >= 2 cells share one
        # Mattson pass (a single cell is cheaper on its stepper).
        groups: Dict[str, List[int]] = {}
        for i, (name, _cap, kwargs) in enumerate(norm):
            if not kwargs and name in MULTI_CAPACITY_POLICIES:
                groups.setdefault(name, []).append(i)
        for name, idxs in groups.items():
            caps = [norm[i][1] for i in idxs]
            if len(idxs) < 2 or not multi_capacity_supported(name, trace, caps):
                continue
            rec: Optional[Dict[int, List[int]]] = (
                {} if record is not None else None
            )
            batch = multi_capacity_replay(name, trace, caps, record=rec)
            seen: set = set()
            for i in idxs:
                cap = norm[i][1]
                res = batch[cap]
                # Duplicate-capacity cells get independent copies so no
                # two rows alias one mutable result.
                results[i] = _copy_result(res) if cap in seen else res
                seen.add(cap)
                if record is not None:
                    record[i] = rec[cap]
        remaining = [i for i in range(len(norm)) if results[i] is None]
        if sp is not None:
            sp.set("mattson_cells", len(norm) - len(remaining))
        # Every remaining cell becomes a stepper over the shared arrays.
        steppers = []
        for i in remaining:
            name, cap, kwargs = norm[i]
            policy = make_policy(name, cap, trace.mapping, **kwargs)
            cell_rec: _Record = [] if record is not None else None
            if cell_rec is not None:
                record[i] = cell_rec
            run, finish = _DISPATCH[type(policy)](compiled, policy, cell_rec)
            steppers.append((i, run, finish))
        if steppers:
            for ic, bc, dc in compiled.iter_chunks(chunk):
                for _i, run, _f in steppers:
                    run(ic, bc, dc)
        for i, _run, finish in steppers:
            misses, temporal, spatial, loaded, evicted = finish()
            results[i] = _batch_result(
                norm[i][0],
                norm[i][1],
                trace,
                accesses=compiled.n,
                misses=misses,
                temporal=temporal,
                spatial=spatial,
                loaded=loaded,
                evicted=evicted,
            )
    return results  # type: ignore[return-value]

"""Validation-free replay kernels for the hot policies.

The referee engine (:mod:`repro.core.engine`) validates every policy
action with Python sets — correct, but a large constant factor on the
per-access path.  For the classic deterministic policies the entire
replay is a pure function of ``(trace, capacity, parameters)``, so this
module provides *replay kernels*: slotted, array-backed re-implementa-
tions that produce the exact same :class:`~repro.types.SimResult`
(temporal/spatial hit taxonomy and load-set statistics included)
without constructing :class:`~repro.types.AccessOutcome` records,
frozensets, or shadow validation state.

Correctness is not assumed — it is *proven* by the differential
conformance harness (:mod:`repro.core.conformance` and
``tests/test_fastpath_conformance.py``), which replays randomized and
adversarial traces through both engines and asserts the complete
result, per-access outcome stream included, is bit-identical.  A kernel
that drifts from the referee fails CI, so the fast path can never
silently diverge from the validated model.

Entry points
------------
* :func:`compile_trace` — integer-encode a :class:`Trace` once
  (item → dense id, per-access block ids, block membership tables);
  memoized per trace object.
* :func:`fast_simulate` — replay a supported policy over a trace;
  returns ``None`` when no kernel applies (the caller falls back to
  the referee).  ``simulate(..., fast=True)`` does exactly that.
* :func:`supports` / :data:`FAST_POLICY_NAMES` — kernel coverage.

Fallback rules (any of these routes the access back to the referee):

* the policy type has no kernel (subclasses do not inherit kernels:
  dispatch is on the *exact* class, so an overridden hook cannot be
  silently replayed with the parent's semantics);
* the policy is not cold (kernels replay from an empty cache);
* the policy's mapping is not the trace's mapping (or an equivalent
  aligned :class:`FixedBlockMapping`) — the referee cross-validates
  the two mappings at runtime, the kernels cannot;
* the caller asked for observation (``on_access``, ``recorder``) or
  reconciliation (``cross_check_every``) — referee-only features.

Kernels never mutate the policy object they dispatch on; they read its
configuration (capacity, layer split, threshold) and replay a replica.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry import spans
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.athreshold import AThresholdLRU
from repro.policies.block_cache import BlockFIFO, BlockLRU
from repro.policies.iblp import IBLP
from repro.policies.item_lru import ItemFIFO, ItemLRU
from repro.policies.item_other import ItemClock
from repro.types import SimResult

__all__ = [
    "CompiledTrace",
    "compile_trace",
    "fast_simulate",
    "supports",
    "FAST_POLICY_NAMES",
    "KIND_MISS",
    "KIND_TEMPORAL",
    "KIND_SPATIAL",
    "stack_distances",
    "MULTI_CAPACITY_POLICIES",
    "multi_capacity_supported",
    "multi_capacity_replay",
]

#: Integer codes for the per-access outcome stream (the compact form of
#: :class:`~repro.types.HitKind` used by kernels and the conformance
#: harness; see :data:`repro.core.conformance.KIND_CODE`).
KIND_MISS, KIND_TEMPORAL, KIND_SPATIAL = 0, 1, 2


class CompiledTrace:
    """A trace lowered to plain-int arrays for kernel replay.

    Attributes
    ----------
    n:
        Number of accesses.
    items:
        Requested item ids as a Python ``list`` (C-int iteration is
        ~3× faster than pulling ``numpy`` scalars in a Python loop).
    blocks:
        Block id of each access, same length as ``items``.
    dense:
        Per-access item ids re-encoded densely as ``0..n_distinct-1``
        (index into ``unique_items``); item-granularity kernels use
        these to replace hash lookups with array indexing.
    unique_items:
        ``int64`` array decoding dense id → original item id.
    block_members:
        ``block id → ascending tuple of member items`` for every block
        the trace references (what the referee obtains from
        ``mapping.items_in`` per miss, computed once here).
    item_block:
        ``item id → block id`` for every member of every referenced
        block (covers side-loaded items that never appear in ``items``).
    """

    __slots__ = (
        "n",
        "items",
        "blocks",
        "dense",
        "n_distinct",
        "unique_items",
        "block_members",
        "item_block",
    )

    def __init__(self, trace: Trace) -> None:
        arr = trace.items
        self.n = int(arr.size)
        self.items: List[int] = arr.tolist()
        blocks_arr = trace.mapping.blocks_of(arr)
        self.blocks: List[int] = blocks_arr.tolist()
        if self.n:
            unique, inverse = np.unique(arr, return_inverse=True)
        else:
            unique = np.empty(0, dtype=np.int64)
            inverse = np.empty(0, dtype=np.int64)
        self.unique_items = unique
        self.n_distinct = int(unique.size)
        self.dense: List[int] = inverse.tolist()
        self.block_members: Dict[int, Tuple[int, ...]] = {}
        self.item_block: Dict[int, int] = {}
        for blk in np.unique(blocks_arr).tolist():
            members = tuple(trace.mapping.items_in(blk))
            self.block_members[blk] = members
            for member in members:
                self.item_block[member] = blk


# Memoized by content fingerprint, not object identity: a sweep worker
# that receives the same trace unpickled (or arena-attached) per cell
# still reuses one compilation.  The LRU cap bounds memory — compiled
# traces hold Python-int lists, so a handful of large ones is already
# tens of MB; typical workers touch one or two distinct traces.
_COMPILE_MEMO_CAP = 4
_COMPILED: "OrderedDict[str, CompiledTrace]" = OrderedDict()


def compile_trace(trace: Trace) -> CompiledTrace:
    """Compile (or fetch the memoized compilation of) ``trace``.

    The memo key is :meth:`Trace.fingerprint`, so equal-content traces
    share one compilation regardless of how they reached this process.
    ``REPRO_NO_COMPILE_MEMO=1`` disables the memo (benchmarking and
    memory-constrained runs); the fingerprint itself is cached on the
    trace instance, so keying is cheap after the first call.
    """
    with spans.span("fast.compile") as sp:
        if os.environ.get("REPRO_NO_COMPILE_MEMO"):
            compiled = CompiledTrace(trace)
            if sp is not None:
                sp.set("memo", "off")
                sp.set("accesses", compiled.n)
            return compiled
        key = trace.fingerprint()
        cached = _COMPILED.get(key)
        if cached is not None:
            _COMPILED.move_to_end(key)
            if sp is not None:
                sp.set("memo", "hit")
                sp.set("accesses", cached.n)
            return cached
        compiled = CompiledTrace(trace)
        _COMPILED[key] = compiled
        while len(_COMPILED) > _COMPILE_MEMO_CAP:
            _COMPILED.popitem(last=False)
        if sp is not None:
            sp.set("memo", "miss")
            sp.set("accesses", compiled.n)
        return compiled


#: counts = (misses, temporal_hits, spatial_hits, loaded_items, evicted_items)
_Counts = Tuple[int, int, int, int, int]
_Record = Optional[List[int]]


# -- item-granularity kernels (no spatial hits possible) --------------------
def _replay_item_recency(
    ct: CompiledTrace, capacity: int, touch_on_hit: bool, record: _Record
) -> _Counts:
    """LRU (``touch_on_hit``) / FIFO item cache over dense ids.

    Recency is a doubly-linked list over slot arrays: ``nxt``/``prv``
    of size ``n_distinct + 1`` with slot ``S`` as the head/tail
    sentinel (MRU at ``nxt[S]``, LRU at ``prv[S]``).
    """
    m = ct.n_distinct
    S = m  # sentinel slot
    nxt = [S] * (m + 1)
    prv = [S] * (m + 1)
    resident = bytearray(m)
    size = 0
    misses = temporal = evicted = 0
    for it in ct.dense:
        if resident[it]:
            temporal += 1
            if touch_on_hit:
                p = prv[it]
                nx = nxt[it]
                nxt[p] = nx
                prv[nx] = p
                f = nxt[S]
                nxt[S] = it
                prv[it] = S
                nxt[it] = f
                prv[f] = it
            if record is not None:
                record.append(KIND_TEMPORAL)
        else:
            misses += 1
            if size >= capacity:
                lru = prv[S]
                p = prv[lru]
                nxt[p] = S
                prv[S] = p
                resident[lru] = 0
                evicted += 1
            else:
                size += 1
            resident[it] = 1
            f = nxt[S]
            nxt[S] = it
            prv[it] = S
            nxt[it] = f
            prv[f] = it
            if record is not None:
                record.append(KIND_MISS)
    return misses, temporal, 0, misses, evicted


def _replay_item_clock(ct: CompiledTrace, capacity: int, record: _Record) -> _Counts:
    """CLOCK item cache on flat ring arrays, bit-exact to
    :class:`repro.structs.clock_hand.ClockHand`.

    ClockHand's ``evict()`` + ``insert()`` pair pops the victim and
    re-inserts at the hand (rotating the backing list when the victim
    sits at the end); relative to the hand that is circularly identical
    to replacing the victim's slot in place and advancing the hand by
    one, which is what this kernel does — O(1) per miss instead of the
    structure's O(n) reindex.  During warmup (no evictions yet) the
    hand rests on the first-inserted key at the end of the ring and
    each insert lands just behind it, displacing only that one entry.
    """
    m = ct.n_distinct
    pos = [0] * m  # dense id -> ring slot (valid iff resident)
    resident = bytearray(m)
    ring = [0] * capacity  # ring slot -> dense id
    ref = bytearray(capacity)  # ring slot -> reference bit
    hand = 0
    size = 0
    misses = temporal = evicted = 0
    for it in ct.dense:
        if resident[it]:
            ref[pos[it]] = 1
            temporal += 1
            if record is not None:
                record.append(KIND_TEMPORAL)
            continue
        misses += 1
        if record is not None:
            record.append(KIND_MISS)
        if size >= capacity:
            h = hand
            if h >= capacity:
                h = 0
            while ref[h]:  # second-chance sweep
                ref[h] = 0
                h += 1
                if h >= capacity:
                    h = 0
            resident[ring[h]] = 0
            evicted += 1
            ring[h] = it
            ref[h] = 1
            pos[it] = h
            resident[it] = 1
            hand = h + 1
        elif size == 0:
            ring[0] = it
            ref[0] = 1
            pos[it] = 0
            resident[it] = 1
            size = 1
            # hand stays 0: it rests on this first key until full.
        else:
            # Insert just behind the hand at slot size-1; the first key
            # shifts to slot size and its reference bit moves with it.
            last = ring[size - 1]
            ring[size] = last
            ref[size] = ref[size - 1]
            pos[last] = size
            ring[size - 1] = it
            ref[size - 1] = 1
            pos[it] = size - 1
            resident[it] = 1
            size += 1
            hand = size - 1
    return misses, temporal, 0, misses, evicted


# -- block-granularity kernels (referee hit-taxonomy replicated) ------------
def _replay_block(
    ct: CompiledTrace, capacity: int, touch_on_hit: bool, record: _Record
) -> _Counts:
    """Whole-block LRU/FIFO mirroring ``_BlockPolicyBase`` + the
    referee's spatial-pending classification."""
    blocks_d: Dict[int, Tuple[int, ...]] = {}  # insertion order = LRU→MRU
    resident: set = set()
    pending: set = set()  # side-loaded residents not yet hit
    members_of = ct.block_members
    misses = temporal = spatial = loaded_n = evicted_n = 0
    for it, blk in zip(ct.items, ct.blocks):
        if blk in blocks_d:
            if it in resident:
                if touch_on_hit:
                    blocks_d[blk] = blocks_d.pop(blk)
                if it in pending:
                    pending.discard(it)
                    spatial += 1
                    if record is not None:
                        record.append(KIND_SPATIAL)
                else:
                    temporal += 1
                    if record is not None:
                        record.append(KIND_TEMPORAL)
                continue
            # Trimmed residue (k < |block|): replace the stale entry.
            stale = blocks_d.pop(blk)
            resident.difference_update(stale)
            evicted = set(stale)
        else:
            evicted = set()
        members = members_of[blk]
        load = members
        if len(members) > capacity:
            keep = [it]
            for m in members:
                if m != it and len(keep) < capacity:
                    keep.append(m)
            load = tuple(sorted(keep))
        while len(resident) + len(load) > capacity:
            victim_block = next(iter(blocks_d))
            victim_items = blocks_d.pop(victim_block)
            evicted.update(victim_items)
            resident.difference_update(victim_items)
        blocks_d[blk] = load
        resident.update(load)
        load_set = set(load)
        churn = load_set & evicted
        eff_loaded = load_set - churn
        eff_evicted = evicted - churn
        misses += 1
        loaded_n += len(eff_loaded)
        evicted_n += len(eff_evicted)
        pending -= eff_evicted
        for member in eff_loaded:
            if member != it:
                pending.add(member)
            else:
                pending.discard(member)
        if record is not None:
            record.append(KIND_MISS)
    return misses, temporal, spatial, loaded_n, evicted_n


def _replay_iblp(
    ct: CompiledTrace, capacity: int, item_layer_size: int, record: _Record
) -> _Counts:
    """Canonical IBLP (item layer in front) with union refcounting."""
    ils = item_layer_size
    bls = capacity - ils
    items_d: Dict[int, None] = {}  # item layer, insertion order = LRU→MRU
    blocks_d: Dict[int, Tuple[int, ...]] = {}  # block layer
    refcount: Dict[int, int] = {}  # item -> number of layers holding it
    occupancy = 0  # item slots used by the block layer
    pending: set = set()
    members_of = ct.block_members
    misses = temporal = spatial = loaded_n = evicted_n = 0

    def acquire(x: int, loaded: set) -> None:
        n = refcount.get(x, 0)
        refcount[x] = n + 1
        if n == 0:
            loaded.add(x)

    def release(x: int, evicted: set) -> None:
        n = refcount[x] - 1
        if n:
            refcount[x] = n
        else:
            del refcount[x]
            evicted.add(x)

    def item_insert(x: int, loaded: set, evicted: set) -> None:
        if ils == 0:
            return
        if x in items_d:
            items_d[x] = items_d.pop(x)
            return
        if len(items_d) >= ils:
            victim = next(iter(items_d))
            del items_d[victim]
            release(victim, evicted)
        items_d[x] = None
        acquire(x, loaded)

    def block_insert(blk: int, x: int, loaded: set, evicted: set) -> None:
        nonlocal occupancy
        if bls == 0:
            return
        if blk in blocks_d:
            stale = blocks_d.pop(blk)
            occupancy -= len(stale)
            for s in stale:
                release(s, evicted)
        members = members_of[blk]
        load = members
        if len(members) > bls:
            keep = [x] + [m for m in members if m != x]
            load = tuple(keep[:bls])
        while occupancy + len(load) > bls:
            victim_block = next(iter(blocks_d))
            victim_items = blocks_d.pop(victim_block)
            occupancy -= len(victim_items)
            for v in victim_items:
                release(v, evicted)
        blocks_d[blk] = load
        occupancy += len(load)
        for member in load:
            acquire(member, loaded)

    for it, blk in zip(ct.items, ct.blocks):
        if it in items_d:
            items_d[it] = items_d.pop(it)  # pure item-layer hit
            if it in pending:
                pending.discard(it)
                spatial += 1
                if record is not None:
                    record.append(KIND_SPATIAL)
            else:
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            continue
        loaded: set = set()
        evicted: set = set()
        if blk in blocks_d and it in refcount:
            # Block-layer hit: refresh block recency, promote the item.
            blocks_d[blk] = blocks_d.pop(blk)
            item_insert(it, loaded, evicted)
            loaded.discard(it)  # promotion of a resident is not a load
            eff_evicted = evicted - (loaded & evicted)
            evicted_n += len(eff_evicted)
            pending -= eff_evicted
            if it in pending:
                pending.discard(it)
                spatial += 1
                if record is not None:
                    record.append(KIND_SPATIAL)
            else:
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            continue
        # Full miss: both layers load.
        item_insert(it, loaded, evicted)
        block_insert(blk, it, loaded, evicted)
        churn = loaded & evicted
        eff_loaded = loaded - churn
        eff_evicted = evicted - churn
        misses += 1
        loaded_n += len(eff_loaded)
        evicted_n += len(eff_evicted)
        pending -= eff_evicted
        for member in eff_loaded:
            if member != it:
                pending.add(member)
            else:
                pending.discard(member)
        if record is not None:
            record.append(KIND_MISS)
    return misses, temporal, spatial, loaded_n, evicted_n


def _replay_athreshold(
    ct: CompiledTrace, capacity: int, a: int, record: _Record
) -> _Counts:
    """LRU item eviction; whole-block load on the ``a``-th distinct miss."""
    order: Dict[int, None] = {}  # insertion order = LRU→MRU
    resident: set = set()
    block_miss_count: Dict[int, int] = {}
    block_resident_count: Dict[int, int] = {}
    pending: set = set()
    members_of = ct.block_members
    block_of = ct.item_block
    misses = temporal = spatial = loaded_n = evicted_n = 0
    for it, blk in zip(ct.items, ct.blocks):
        if it in resident:
            order[it] = order.pop(it)
            if it in pending:
                pending.discard(it)
                spatial += 1
                if record is not None:
                    record.append(KIND_SPATIAL)
            else:
                temporal += 1
                if record is not None:
                    record.append(KIND_TEMPORAL)
            continue
        misses_so_far = block_miss_count.get(blk, 0) + 1
        block_miss_count[blk] = misses_so_far
        if misses_so_far >= a:
            want = [m for m in members_of[blk] if m not in resident]
            if len(want) > capacity:
                want = [it] + [w for w in want if w != it]
                want = want[:capacity]
        else:
            want = [it]
        protect = set(want)
        loaded: set = set()
        evicted: set = set()
        for w in want:
            if len(resident) >= capacity:
                victim = -1
                for key in order:
                    if key not in protect:
                        victim = key
                        break
                if victim < 0:  # pragma: no cover - mirrors referee guard
                    raise ConfigurationError(
                        "cannot evict: every resident item is protected"
                    )
                del order[victim]
                resident.discard(victim)
                vblk = block_of[victim]
                n = block_resident_count[vblk] - 1
                if n:
                    block_resident_count[vblk] = n
                else:
                    del block_resident_count[vblk]
                    block_miss_count.pop(vblk, None)
                evicted.add(victim)
            resident.add(w)
            order[w] = None
            wblk = block_of[w]
            block_resident_count[wblk] = block_resident_count.get(wblk, 0) + 1
            loaded.add(w)
        misses += 1
        loaded_n += len(loaded)
        evicted_n += len(evicted)
        pending -= evicted
        for member in loaded:
            if member != it:
                pending.add(member)
            else:
                pending.discard(member)
        if record is not None:
            record.append(KIND_MISS)
    return misses, temporal, spatial, loaded_n, evicted_n


# -- dispatch ----------------------------------------------------------------
_Kernel = Callable[[CompiledTrace, "object", _Record], _Counts]

_DISPATCH: Dict[type, _Kernel] = {
    ItemLRU: lambda ct, p, rec: _replay_item_recency(ct, p.capacity, True, rec),
    ItemFIFO: lambda ct, p, rec: _replay_item_recency(ct, p.capacity, False, rec),
    ItemClock: lambda ct, p, rec: _replay_item_clock(ct, p.capacity, rec),
    BlockLRU: lambda ct, p, rec: _replay_block(ct, p.capacity, True, rec),
    BlockFIFO: lambda ct, p, rec: _replay_block(ct, p.capacity, False, rec),
    IBLP: lambda ct, p, rec: _replay_iblp(ct, p.capacity, p.item_layer_size, rec),
    AThresholdLRU: lambda ct, p, rec: _replay_athreshold(ct, p.capacity, p.a, rec),
}

#: Registry names with a replay kernel (the a-threshold family counts
#: once: every ``a`` shares the ``athreshold-lru`` kernel).
FAST_POLICY_NAMES: Tuple[str, ...] = tuple(
    sorted(cls.name for cls in _DISPATCH)
)


def _mappings_equivalent(policy, trace: Trace) -> bool:
    """Whether kernels may use the trace's mapping for both roles.

    The referee runs the policy against ``policy.mapping`` while
    shadow-validating against ``trace.mapping``; kernels collapse the
    two, which is only sound when they denote the same partition.
    """
    pm, tm = policy.mapping, trace.mapping
    if pm is tm:
        return True
    return (
        isinstance(pm, FixedBlockMapping)
        and isinstance(tm, FixedBlockMapping)
        and pm.universe == tm.universe
        and pm.max_block_size == tm.max_block_size
    )


def supports(policy) -> bool:
    """Whether ``policy`` (by exact type) has a replay kernel."""
    return type(policy) in _DISPATCH


def fast_simulate(policy, trace: Trace, record: _Record = None) -> Optional[SimResult]:
    """Replay ``policy`` over ``trace`` with a kernel, if one applies.

    Returns the referee-identical :class:`SimResult`, or ``None`` when
    the policy has no kernel, is already warm, or its mapping cannot be
    collapsed with the trace's (see the module docstring's fallback
    rules).  ``record``, if given, receives one
    :data:`KIND_MISS`/:data:`KIND_TEMPORAL`/:data:`KIND_SPATIAL` code
    per access — the stream the conformance harness diffs against the
    referee's ``on_access`` observations.  The policy object is never
    mutated.
    """
    kernel = _DISPATCH.get(type(policy))
    if kernel is None:
        return None
    if not _mappings_equivalent(policy, trace):
        return None
    if policy.resident_items():
        return None  # warm policy: replay state only the referee tracks
    with spans.span(
        "fast.replay",
        policy=getattr(policy, "name", type(policy).__name__),
        capacity=policy.capacity,
    ) as sp:
        compiled = compile_trace(trace)
        if sp is not None:
            sp.set("accesses", compiled.n)
        misses, temporal, spatial, loaded, evicted = kernel(
            compiled, policy, record
        )
    result = SimResult(
        policy=getattr(policy, "name", type(policy).__name__),
        capacity=policy.capacity,
    )
    result.metadata.update(
        {k: v for k, v in trace.metadata.items() if isinstance(v, (str, int, float))}
    )
    result.accesses = compiled.n
    result.misses = misses
    result.temporal_hits = temporal
    result.spatial_hits = spatial
    result.loaded_items = loaded
    result.evicted_items = evicted
    return result


# -- vectorized stack distances [Mattson et al. 1970] ------------------------
#
# The batched multi-capacity kernels below rest on reuse (stack)
# distances: dist[t] = number of distinct ids referenced since the
# previous access to ids[t] (cold accesses get -1).  An LRU cache of
# capacity k hits access t iff 0 <= dist[t] < k, so one pass prices
# every capacity simultaneously.
#
# Let prev[t] be the position of the previous access to ids[t] (-1 when
# cold).  Positions s in the window (prev[t], t) contribute one distinct
# id each unless they are themselves repeats *within* the window, i.e.
# prev[s] > prev[t] (prev values >= 0 are distinct positions, so for
# s in the window, prev[s] > prev[t] puts prev[s] strictly inside it;
# for s <= prev[t], prev[s] < s <= prev[t] never counts).  Hence
#
#     dist[t] = (t - prev[t] - 1) - #{s < t : prev[s] > prev[t]}
#
# and the problem reduces to counting, per element, earlier elements
# with a greater value — a dominance count done here with a bottom-up
# mergesort sweep in numpy (log T levels of whole-array sorts and
# searchsorteds) instead of a per-access Fenwick loop.


def _count_earlier_greater(values: np.ndarray) -> np.ndarray:
    """``counts[t] = #{s < t : values[s] > values[t]}``, vectorized.

    Bottom-up mergesort scheme: at the level of half-width ``w`` each
    element in the right half of a ``2w`` block counts the strictly
    greater elements in its left sibling; every pair ``s < t`` meets at
    exactly one level, so the per-level counts sum to the dominance
    count.  Each level is one whole-array ``np.sort`` plus one flat
    ``np.searchsorted`` (rows separated by disjoint key offsets), so
    the total is O(T log^2 T) spread over ~log T numpy passes.
    """
    n = int(values.size)
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    v = np.ascontiguousarray(values, dtype=np.int64)
    lo = int(v.min())
    hi = int(v.max())
    span_key = hi - lo + 2  # per-block key offset stride (no collisions)

    # Width-1 level: plain pairwise compares.
    m2 = (n // 2) * 2
    counts[1:m2:2] = v[0:m2:2] > v[1:m2:2]

    # Width-2 level: blocks of 4, left pair vs right pair.
    m4 = (n // 4) * 4
    blk = v[:m4].reshape(-1, 4)
    counts[2:m4:4] += (blk[:, 0] > blk[:, 2]).astype(np.int64) + (
        blk[:, 1] > blk[:, 2]
    )
    counts[3:m4:4] += (blk[:, 0] > blk[:, 3]).astype(np.int64) + (
        blk[:, 1] > blk[:, 3]
    )
    # Width-2 ragged tail: a lone third element in a partial block of 4
    # still has a full left sibling pair.  (Width 1 has no ragged case:
    # every odd index < 2*(n//2) is covered by the slice above.)
    if n - m4 == 3:
        counts[m4 + 2] += int(v[m4] > v[m4 + 2]) + int(v[m4 + 1] > v[m4 + 2])

    width = 4
    while width < n:
        span = 2 * width
        nblocks = -(-n // span)
        pad_n = nblocks * span
        if pad_n == n:
            padded = v
        else:
            # Suffix padding is safe: a left half containing padding
            # implies its right half lies entirely past the real data.
            padded = np.empty(pad_n, dtype=np.int64)
            padded[:n] = v
            padded[n:] = lo
        blocks = padded.reshape(nblocks, span)
        left_sorted = np.sort(blocks[:, :width], axis=1)
        base = np.arange(nblocks, dtype=np.int64) * span_key
        flat_sorted = (left_sorted + base[:, None]).ravel()
        queries = (blocks[:, width:] + base[:, None]).ravel()
        le = np.searchsorted(flat_sorted, queries, side="right")
        le -= np.repeat(np.arange(nblocks, dtype=np.int64) * width, width)
        # Global positions of right-half elements (block-major, so the
        # sequence is increasing: real entries form a prefix).
        pos = (np.arange(pad_n, dtype=np.int64).reshape(nblocks, span))[
            :, width:
        ].ravel()
        nreal = int(np.searchsorted(pos, n))
        counts[pos[:nreal]] += width - le[:nreal]
        width = span
    return counts


def _prev_occurrence(arr: np.ndarray) -> np.ndarray:
    """Index of the previous access to each id (-1 when cold)."""
    n = int(arr.size)
    prev = np.full(n, -1, dtype=np.int64)
    if n:
        order = np.argsort(arr, kind="stable")
        srt = arr[order]
        same = srt[1:] == srt[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def stack_distances(ids: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU reuse (stack) distance of each access; cold accesses get -1.

    ``distance[t]`` is the number of distinct ids seen since the
    previous access to ``ids[t]``; an LRU cache of capacity ``k`` hits
    access ``t`` iff ``0 <= distance[t] < k``.  Fully vectorized — see
    the derivation above :func:`_count_earlier_greater`.
    """
    arr = np.asarray(ids, dtype=np.int64)
    n = int(arr.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    with spans.span("fast.mattson", accesses=n):
        prev = _prev_occurrence(arr)
        out = (
            np.arange(n, dtype=np.int64) - prev - 1 - _count_earlier_greater(prev)
        )
        out[prev < 0] = -1
    return out


# -- batched multi-capacity replay -------------------------------------------

#: Stack (inclusion) policies with a batched multi-capacity kernel.
MULTI_CAPACITY_POLICIES: Tuple[str, ...] = ("block-lru", "item-lru")


def _uniform_block_size(trace: Trace) -> Optional[int]:
    """Common size of every *referenced* block, or ``None`` if ragged."""
    bt = trace.block_trace()
    if bt.size == 0:
        return int(trace.mapping.max_block_size)
    blocks = np.unique(bt)
    mapping = trace.mapping
    if isinstance(mapping, FixedBlockMapping):
        B = mapping.max_block_size
        sizes = np.minimum(B, mapping.universe - blocks * B)
    else:
        sizes = np.asarray(
            [len(mapping.items_in(int(b))) for b in blocks], dtype=np.int64
        )
    first = int(sizes[0])
    return first if bool((sizes == first).all()) else None


def _valid_capacities(capacities: Sequence[int]) -> bool:
    if not len(list(capacities)):
        return False
    return all(
        isinstance(k, int) and not isinstance(k, bool) and k >= 1
        for k in capacities
    )


def multi_capacity_supported(
    policy_name: str, trace: Trace, capacities: Sequence[int]
) -> bool:
    """Whether :func:`multi_capacity_replay` covers this configuration.

    Item-LRU is a stack policy outright.  Block-LRU reduces to a stack
    policy over the block projection only when every referenced block
    has one common size ``S`` and every capacity is at least ``S`` (so
    no block load is ever trimmed and a capacity-``k`` cache holds
    exactly ``k // S`` blocks); ragged partitions or sub-block
    capacities fall back to per-capacity replay.
    """
    if policy_name not in MULTI_CAPACITY_POLICIES:
        return False
    if not _valid_capacities(capacities):
        return False
    if policy_name == "block-lru":
        size = _uniform_block_size(trace)
        if size is None or min(capacities) < size:
            return False
    return True


def _batch_result(
    policy_name: str,
    capacity: int,
    trace: Trace,
    accesses: int,
    misses: int,
    temporal: int,
    spatial: int,
    loaded: int,
    evicted: int,
) -> SimResult:
    """Assemble one per-capacity result exactly as :func:`fast_simulate`."""
    result = SimResult(policy=policy_name, capacity=capacity)
    result.metadata.update(
        {k: v for k, v in trace.metadata.items() if isinstance(v, (str, int, float))}
    )
    result.accesses = accesses
    result.misses = misses
    result.temporal_hits = temporal
    result.spatial_hits = spatial
    result.loaded_items = loaded
    result.evicted_items = evicted
    return result


def _multi_capacity_item_lru(
    trace: Trace, caps: List[int], record: Optional[Dict[int, List[int]]]
) -> Dict[int, SimResult]:
    n = int(trace.items.size)
    dist = stack_distances(trace.items)
    n_distinct = int((dist < 0).sum())  # one cold access per distinct item
    finite = dist[dist >= 0]
    top = max(caps)
    hist = np.bincount(np.minimum(finite, top), minlength=top + 1)
    cum_hits = np.cumsum(hist)  # cum_hits[j] = #{0 <= dist <= j}
    out: Dict[int, SimResult] = {}
    for k in caps:
        hits = int(cum_hits[k - 1])  # k <= top, so k-1 always indexes
        misses = n - hits
        out[k] = _batch_result(
            "item-lru",
            k,
            trace,
            accesses=n,
            misses=misses,
            temporal=hits,  # item caches never side-load: no spatial hits
            spatial=0,
            loaded=misses,
            evicted=misses - min(n_distinct, k),
        )
        if record is not None:
            record[k] = np.where((dist < 0) | (dist >= k), KIND_MISS, KIND_TEMPORAL).tolist()
    return out


def _multi_capacity_block_lru(
    trace: Trace, caps: List[int], record: Optional[Dict[int, List[int]]]
) -> Dict[int, SimResult]:
    n = int(trace.items.size)
    size = _uniform_block_size(trace)
    assert size is not None and (not caps or min(caps) >= size)
    bt = trace.block_trace()
    bdist = stack_distances(bt)
    p_item = _prev_occurrence(trace.items)
    distinct_blocks = int((bdist < 0).sum())
    # Accesses grouped by block, time-ascending within each group; the
    # per-capacity "last reload before t" scan runs in this layout.
    order = np.argsort(bt, kind="stable")
    grp_start = np.empty(n, dtype=bool)
    if n:
        grp_start[0] = True
        grp_start[1:] = bt[order][1:] != bt[order][:-1]
    rank = np.cumsum(grp_start) - 1
    base = rank * (n + 1)  # disjoint per-group key ranges
    p_item_sorted = p_item[order]
    out: Dict[int, SimResult] = {}
    for k in caps:
        slots = k // size
        miss = (bdist < 0) | (bdist >= slots)
        misses = int(miss.sum())
        # L[t] = position of the latest same-block miss (block reload)
        # strictly before t; every hit has one, since a resident block
        # was necessarily loaded by an earlier miss.  Segmented running
        # max over the grouped layout, shifted by one slot so each
        # access sees only strictly-earlier reloads.
        key = np.where(miss[order], order, -1) + base
        shifted = np.empty(n, dtype=np.int64)
        if n:
            shifted[0] = base[0] - 1
            shifted[1:] = key[:-1]
            shifted[grp_start] = base[grp_start] - 1
        last_reload = np.maximum.accumulate(shifted) - base
        # Spatial hit iff the item's own previous access predates the
        # block's latest reload: the item rode in as a side-load and
        # this is its first touch since (the referee's pending set).
        hit_sorted = ~miss[order]
        spatial_sorted = hit_sorted & (p_item_sorted < last_reload)
        spatial = int(spatial_sorted.sum())
        temporal = n - misses - spatial
        loaded = misses * size
        evicted = loaded - size * min(distinct_blocks, slots)
        out[k] = _batch_result(
            "block-lru",
            k,
            trace,
            accesses=n,
            misses=misses,
            temporal=temporal,
            spatial=spatial,
            loaded=loaded,
            evicted=evicted,
        )
        if record is not None:
            codes_sorted = np.where(
                ~hit_sorted,
                KIND_MISS,
                np.where(spatial_sorted, KIND_SPATIAL, KIND_TEMPORAL),
            )
            codes = np.empty(n, dtype=np.int64)
            codes[order] = codes_sorted
            record[k] = codes.tolist()
    return out


def multi_capacity_replay(
    policy_name: str,
    trace: Trace,
    capacities: Sequence[int],
    record: Optional[Dict[int, List[int]]] = None,
) -> Dict[int, SimResult]:
    """One-pass replay of a stack policy at every capacity at once.

    Computes stack distances once (item granularity for Item-LRU, block
    granularity for Block-LRU) and derives, per capacity, the complete
    :class:`SimResult` — including the temporal/spatial hit taxonomy —
    bit-identical to :func:`fast_simulate` per cell (proven by
    :mod:`repro.core.conformance` and the golden fixtures).  ``record``,
    if given, is filled with ``capacity -> per-access outcome codes``
    streams for the conformance harness.

    Raises :class:`ConfigurationError` when the configuration is not
    supported — gate calls with :func:`multi_capacity_supported`.
    """
    if not multi_capacity_supported(policy_name, trace, capacities):
        raise ConfigurationError(
            f"multi-capacity replay does not cover policy={policy_name!r} "
            f"capacities={list(capacities)!r} on this trace "
            f"(supported policies: {', '.join(MULTI_CAPACITY_POLICIES)}; "
            "block-lru additionally needs a uniform referenced-block "
            "size <= every capacity)"
        )
    caps = sorted(set(int(k) for k in capacities))
    with spans.span(
        "fast.multi_capacity", policy=policy_name, capacities=len(caps)
    ):
        if policy_name == "item-lru":
            return _multi_capacity_item_lru(trace, caps, record)
        return _multi_capacity_block_lru(trace, caps, record)

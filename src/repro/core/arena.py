"""Shared-memory trace arenas: publish a :class:`Trace` once, attach zero-copy.

Parallel sweeps and campaigns fan cells out over worker processes, and
before this module existed every cell shipped its trace by pickle — an
8 MB serialize/deserialize per cell for a 10^6-access trace, repeated
for every capacity point.  An arena lowers the trace's arrays into one
``multiprocessing.shared_memory`` segment in the parent; workers attach
by segment name and rebuild a fully functional :class:`Trace` whose
``items`` (and explicit block-id table, if any) are read-only views of
the shared pages — no copy, no pickle, identical fingerprint.

Ownership protocol
------------------
* The **publisher** (:func:`publish` → :class:`TraceArena`) owns the
  segment and is the only side that unlinks it; ``close()`` is
  idempotent and safe to call while workers still hold attachments
  (POSIX keeps the pages alive until the last map drops).  A publisher
  that dies without closing is covered by the interpreter's resource
  tracker, which unlinks leaked segments at shutdown.
* **Workers** attach via :func:`attach` (usually through
  :func:`resolve`, which passes plain traces straight through).
  Attachments are cached per process in :data:`_ATTACHED` so a worker
  re-serving the same trace across cells attaches once; they never
  take resource-tracker ownership (see :func:`_open_untracked`), so a
  worker killed mid-cell (crash injection, OOM) cannot cause the
  segment the publisher still owns to be unlinked.

Fallback
--------
:func:`shared_memory_available` probes the platform once (and honors
``REPRO_NO_SHM=1``); when it reports ``False`` — or a mapping type has
no arena encoding — :func:`publish` returns ``None`` and callers fall
back to pickling the trace, so the arena is purely an optimization and
never a functional requirement.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.telemetry import spans
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError

__all__ = [
    "ArenaHandle",
    "TraceArena",
    "mmap_handle",
    "publish",
    "attach",
    "resolve",
    "detach_all",
    "shared_memory_available",
]

#: Set to any non-empty value to force the pickle fallback (tests, or
#: platforms where /dev/shm is unreliable).
DISABLE_ENV = "REPRO_NO_SHM"

_PROBE: Optional[bool] = None


def _shm_module():
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stripped-down builds
        return None
    return shared_memory


def shared_memory_available() -> bool:
    """Whether shared-memory arenas work here (cached probe + env gate)."""
    global _PROBE
    if os.environ.get(DISABLE_ENV):
        return False
    if _PROBE is None:
        shm_mod = _shm_module()
        if shm_mod is None:
            _PROBE = False
        else:
            try:
                seg = shm_mod.SharedMemory(create=True, size=8)
                seg.close()
                seg.unlink()
                _PROBE = True
            except Exception:
                _PROBE = False
    return _PROBE


@dataclass
class ArenaHandle:
    """Small picklable descriptor workers use to attach a published trace.

    Identity is the shared-memory segment ``name`` plus the trace
    ``fingerprint`` (attached traces inherit it, so content-addressed
    consumers — the campaign store, the compile memo — behave exactly
    as if the original object had been shipped).
    """

    name: str
    fingerprint: str
    n: int
    mapping_kind: str  # "fixed" | "explicit"
    universe: int
    max_block_size: int
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: ``"shm"`` for shared-memory segments, ``"rtc"`` for mmap-backed
    #: ``.rtc`` files — where the mmap *is* the arena and workers attach
    #: by mapping ``path`` themselves (no publisher-owned segment).
    kind: str = "shm"
    path: Optional[str] = None


class TraceArena:
    """Publisher-side owner of one shared-memory trace segment.

    Layout: ``items`` (``n`` int64 words) followed, for explicit
    mappings, by the dense ``block_ids`` table (``universe`` words).
    """

    def __init__(self, trace: Trace, shm_mod) -> None:
        # Marked closed until fully constructed so __del__ on a
        # half-built instance (unsupported mapping) is a no-op.
        self._closed = True
        items = np.ascontiguousarray(trace.items, dtype=np.int64)
        mapping = trace.mapping
        if isinstance(mapping, FixedBlockMapping):
            kind = "fixed"
            extra = np.empty(0, dtype=np.int64)
        elif isinstance(mapping, ExplicitBlockMapping):
            kind = "explicit"
            extra = np.ascontiguousarray(
                mapping.blocks_of(np.arange(mapping.universe, dtype=np.int64))
            )
        else:
            raise ConfigurationError(
                f"no arena encoding for mapping type {type(mapping).__name__}"
            )
        total = int(items.size + extra.size)
        self._shm = shm_mod.SharedMemory(create=True, size=max(total * 8, 8))
        buf = np.ndarray(total, dtype=np.int64, buffer=self._shm.buf)
        buf[: items.size] = items
        buf[items.size:] = extra
        del buf  # drop the exported view so close() cannot hit BufferError
        self.handle = ArenaHandle(
            name=self._shm.name,
            fingerprint=trace.fingerprint(),
            n=int(items.size),
            mapping_kind=kind,
            universe=int(mapping.universe),
            max_block_size=int(mapping.max_block_size),
            metadata=dict(trace.metadata),
        )
        self._closed = False

    def close(self) -> None:
        """Release and unlink the segment (idempotent, never raises)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except Exception:
            pass  # already unlinked (e.g. by the resource tracker)

    def __enter__(self) -> "TraceArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        self.close()


def mmap_handle(trace: Trace) -> Optional[ArenaHandle]:
    """A path-only handle for an ``.rtc``-backed trace, else ``None``.

    mmap traces need no shared-memory publication: the on-disk file
    already is the arena, so the handle ships just the path plus the
    identity fields and every worker attaches by mapping the same file.
    Checked before :func:`publish` by parallel planners.
    """
    rtc = getattr(trace, "_rtc", None)
    if rtc is None:
        return None
    return ArenaHandle(
        name=f"rtc:{rtc.path}",
        fingerprint=trace.fingerprint(),
        n=len(trace),
        mapping_kind="fixed",
        universe=int(trace.mapping.universe),
        max_block_size=int(trace.mapping.max_block_size),
        metadata=dict(trace.metadata),
        kind="rtc",
        path=str(rtc.path),
    )


def publish(trace: Trace) -> Optional[TraceArena]:
    """Publish ``trace`` into shared memory, or ``None`` to fall back.

    ``None`` means "ship the trace by pickle instead": shared memory is
    unavailable/disabled, the mapping type has no arena encoding, or
    segment creation failed (e.g. /dev/shm full).  Callers own the
    returned arena and must :meth:`TraceArena.close` it after the last
    worker is done.
    """
    if not shared_memory_available():
        return None
    shm_mod = _shm_module()
    try:
        return TraceArena(trace, shm_mod)
    except Exception:
        return None


# -- worker side -------------------------------------------------------------

#: Per-process attachment registry: segment name -> (SharedMemory, Trace).
_ATTACHED: Dict[str, Tuple[Any, Trace]] = {}
_ATEXIT_REGISTERED = False


def _open_untracked(shm_mod, name: str):
    """Attach to an existing segment without taking tracker ownership.

    3.13+ exposes ``track=False`` for exactly this.  On earlier
    versions *every* ``SharedMemory`` registers with the resource
    tracker, attachments included — but workers here are always
    children of the publisher and so share its tracker process, where
    registration is an idempotent set-add; the double-registration is
    harmless.  Do NOT "fix" it by unregistering in the worker: the
    shared tracker would drop the publisher's own registration and its
    later ``unlink()`` then KeyErrors inside the tracker.
    """
    try:
        return shm_mod.SharedMemory(name=name, track=False)
    except TypeError:
        return shm_mod.SharedMemory(name=name)


def attach(handle: ArenaHandle) -> Trace:
    """Rebuild the published trace from ``handle`` (cached per process).

    The returned trace's arrays are read-only views of the shared
    segment; its fingerprint is inherited from the handle, so compile
    memos and content-addressed stores treat it as the original.
    Raises :class:`ConfigurationError` if the segment cannot be opened
    (e.g. the publisher already closed it).
    """
    global _ATEXIT_REGISTERED
    with spans.span("arena.attach", segment=handle.name) as sp:
        cached = _ATTACHED.get(handle.name)
        if cached is not None:
            if sp is not None:
                sp.set("cached", True)
            return cached[1]
        if sp is not None:
            sp.set("cached", False)
        if handle.kind == "rtc":
            from repro.core.rtc import open_rtc

            try:
                trace = open_rtc(handle.path)
            except Exception as exc:
                raise ConfigurationError(
                    f"cannot attach rtc trace {handle.path!r}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if trace.fingerprint() != handle.fingerprint:
                raise ConfigurationError(
                    f"rtc trace {handle.path!r} changed since it was planned: "
                    f"fingerprint {trace.fingerprint()[:12]} != "
                    f"{handle.fingerprint[:12]}"
                )
            _ATTACHED[handle.name] = (None, trace)
            if not _ATEXIT_REGISTERED:
                atexit.register(detach_all)
                _ATEXIT_REGISTERED = True
            return trace
        shm_mod = _shm_module()
        if shm_mod is None:  # pragma: no cover - stripped-down builds
            raise ConfigurationError("shared memory unavailable; cannot attach")
        try:
            shm = _open_untracked(shm_mod, handle.name)
        except Exception as exc:
            raise ConfigurationError(
                f"cannot attach trace arena {handle.name!r}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        extra = handle.universe if handle.mapping_kind == "explicit" else 0
        buf = np.ndarray(handle.n + extra, dtype=np.int64, buffer=shm.buf)
        items = buf[: handle.n]
        items.flags.writeable = False
        if handle.mapping_kind == "fixed":
            mapping: Any = FixedBlockMapping(
                handle.universe, handle.max_block_size
            )
        else:
            block_ids = buf[handle.n:]
            block_ids.flags.writeable = False
            mapping = ExplicitBlockMapping(
                block_ids, max_block_size=handle.max_block_size
            )
        trace = Trace(items, mapping, dict(handle.metadata))
        trace._fp = handle.fingerprint
        _ATTACHED[handle.name] = (shm, trace)
        if not _ATEXIT_REGISTERED:
            atexit.register(detach_all)
            _ATEXIT_REGISTERED = True
        return trace


def resolve(obj: Any) -> Any:
    """:func:`attach` arena handles; pass everything else through."""
    if isinstance(obj, ArenaHandle):
        return attach(obj)
    return obj


def detach_all() -> None:
    """Drop every cached attachment in this process (never raises).

    Note the numpy views handed out by :func:`attach` may still be
    referenced; closing then raises ``BufferError`` and the mapping
    simply stays alive until the process exits, which is harmless —
    attachments never own the segment.
    """
    while _ATTACHED:
        _, (shm, _trace) = _ATTACHED.popitem()
        if shm is None:
            continue  # rtc attachment: the memmap needs no explicit close
        try:
            shm.close()
        except Exception:
            pass

"""Facebook-ETC-style key popularity and value-size distributions.

Atikoglu et al., *Workload Analysis of a Large-Scale Key-Value Store*
(SIGMETRICS 2012), characterized Facebook's memcached **ETC** pool —
the general-purpose, most-cited cache workload: key popularity is
Zipf-like (exponent ≈ 1 over most of the range), and value sizes
follow a Generalized Pareto distribution (their fitted tail:
scale ≈ 214.48 bytes, shape ≈ 0.3482), i.e. most values are tiny but
the size tail is heavy.

Two pieces here:

* :func:`etc_item_sizes` — a deterministic per-item size table drawn
  from that Generalized Pareto fit.  :class:`repro.serving.ServiceModel`
  consumes it (``size_dist="etc"``) to make the per-item transfer cost
  ``t_item`` *variable*: a miss that side-loads a heavy-tailed value
  pays proportionally more backing-store transfer time.
* :func:`etc_kv_workload` — a key-request trace with the ETC Zipf-like
  popularity over a block-partitioned universe (hot keys scattered
  across blocks, as hashes scatter them in a real store).

Both are pure functions of their seeds — same arguments, same arrays —
which is what lets serving cells using them stay content-addressable.
"""

from __future__ import annotations

import numpy as np

from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.workloads.synthetic import _mapping, zipf_items

__all__ = ["etc_item_sizes", "etc_kv_workload", "ETC_SCALE", "ETC_SHAPE"]

#: Generalized Pareto fit of ETC value sizes (Atikoglu et al., Table 5).
ETC_SCALE = 214.476
ETC_SHAPE = 0.348238


def etc_item_sizes(
    universe: int,
    seed: int = 0,
    scale: float = ETC_SCALE,
    shape: float = ETC_SHAPE,
    min_size: float = 1.0,
) -> np.ndarray:
    """Deterministic per-item value sizes (bytes), Generalized Pareto.

    Inverse-CDF sampling: ``size = min_size + (scale/shape) *
    ((1-u)^(-shape) - 1)`` for uniform ``u`` — heavy-tailed for
    ``shape > 0``.  The RNG is derived from ``seed`` alone, so item
    ``i`` always gets the same size for a given seed (the property the
    seeded-determinism test pins): sizes are an attribute of the item,
    not of the trace that happens to reference it.
    """
    if universe < 1:
        raise ConfigurationError(f"universe must be >= 1, got {universe}")
    if scale <= 0 or shape <= 0:
        raise ConfigurationError("scale and shape must be > 0")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x45544353]))
    u = rng.random(universe)
    return min_size + (scale / shape) * ((1.0 - u) ** (-shape) - 1.0)


def etc_kv_workload(
    length: int,
    universe: int = 16384,
    block_size: int = 8,
    alpha: float = 0.99,
    seed: int = 0,
) -> Trace:
    """ETC-style key-request trace: Zipf-like popularity, hashed layout.

    Popularity follows the ETC Zipf fit (``alpha ≈ 0.99``); ranks are
    shuffled across the universe so hot keys land in unrelated blocks —
    the layout a hashed key space gives a block-granular backing store.
    The block partition models the store's fetch granularity (e.g. one
    SSTable/page region holding ``block_size`` adjacent keys).
    """
    base = zipf_items(
        length,
        universe,
        alpha=alpha,
        block_size=block_size,
        seed=seed,
        shuffle_ranks=True,
    )
    return Trace(
        base.items,
        _mapping(universe, block_size),
        {
            "generator": "etc_kv_workload",
            "alpha": alpha,
            "universe": universe,
            "seed": seed,
        },
    )

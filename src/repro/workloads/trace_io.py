"""Plain-text trace import/export for external workloads.

Real cache studies consume traces from other tools; this module reads
and writes a minimal, diff-friendly text format so external traces can
be replayed through the simulator (and library traces exported for
other simulators):

* comment/header lines start with ``#``; two directives are honoured:
  ``# universe: <int>`` and ``# block_size: <int>``.  A ``#`` line
  shaped like a directive (``# key: value``) with any other key is a
  :class:`~repro.errors.TraceFormatError` — silent typos
  (``# blocksize: 8``) must not change simulation results; plain
  comments without a colon are ignored;
* each remaining line is one access: a non-negative item id,
  optionally followed by whitespace and an ``r``/``w`` flag (default
  read).  Extra fields, negative ids, and files with no accesses are
  format errors.

Every malformed input raises :class:`~repro.errors.TraceFormatError`
with the file and line number — never a bare ``ValueError`` or
``IndexError``.

Unknown ids are densified optionally (``densify=True``) so sparse
address traces (e.g. raw memory addresses) map onto the library's
dense universe while preserving block co-location: addresses are
grouped by ``address // block_size`` before renaming, so items that
shared a block still do.

Parsing is delegated to the chunked reader in
:mod:`repro.workloads.stream`, so gzip-compressed files work
transparently (sniffed by magic bytes) and ``offset``/``limit``
windows read only as much of the file as needed; this module keeps the
convenience "whole trace in memory" return type.  For traces too large
to materialize, convert to ``.rtc`` instead
(:func:`repro.workloads.stream.convert_to_rtc`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.readwrite import RWTrace
from repro.core.trace import Trace
from repro.errors import TraceFormatError

__all__ = ["read_text_trace", "write_text_trace", "densify_addresses"]


def densify_addresses(
    addresses: np.ndarray, block_size: int
) -> Tuple[np.ndarray, int]:
    """Rename sparse addresses to a dense universe, preserving blocks.

    Blocks (``address // block_size``) are numbered in first-appearance
    order; within a block, items keep their intra-block offset.
    Returns ``(dense_items, universe)``.
    """
    if block_size < 1:
        raise TraceFormatError(f"block_size must be >= 1, got {block_size}")
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size and addresses.min() < 0:
        raise TraceFormatError("addresses must be non-negative")
    block_rename: Dict[int, int] = {}
    out = np.empty_like(addresses)
    for idx, addr in enumerate(addresses.tolist()):
        blk, off = divmod(addr, block_size)
        new_blk = block_rename.setdefault(blk, len(block_rename))
        out[idx] = new_blk * block_size + off
    universe = max(1, len(block_rename)) * block_size
    return out, universe


def read_text_trace(
    path: str | Path,
    block_size: Optional[int] = None,
    densify: bool = False,
    limit: Optional[int] = None,
    offset: int = 0,
) -> RWTrace:
    """Parse a text trace file into an :class:`RWTrace`.

    ``block_size`` overrides the file's ``# block_size:`` directive
    (default 1 if neither is given — traditional caching).  Gzip
    content is decompressed transparently (sniffed by magic bytes, not
    extension).  ``offset``/``limit`` select an access window: the
    first ``offset`` accesses are skipped (still validated) and at most
    ``limit`` accesses are returned; parsing stops once the window is
    full.  Parsing is chunked via
    :class:`repro.workloads.stream.TextTraceStream`, so error line
    numbers stay correct across chunk boundaries.
    """
    from repro.workloads.stream import TextTraceStream

    path = Path(path)
    stream = TextTraceStream(path, limit=limit, offset=offset)
    chunks = list(stream)
    if not chunks:
        if stream.accesses_seen:
            raise TraceFormatError(
                f"{path}: no accesses in window (offset={offset}, limit={limit})"
            )
        raise TraceFormatError(f"{path}: no accesses found")
    header_universe = stream.header_universe
    bsize = block_size or stream.header_block or 1
    arr = np.concatenate([c.items for c in chunks])
    writes = np.concatenate([c.writes for c in chunks])
    if densify:
        arr, universe = densify_addresses(arr, bsize)
    else:
        top = int(arr.max()) + 1
        universe = header_universe or (-(-top // bsize) * bsize)
        if universe < top:
            raise TraceFormatError(
                f"{path}: universe {universe} smaller than max item {top - 1}"
            )
        universe = -(-universe // bsize) * bsize
    trace = Trace(
        arr,
        FixedBlockMapping(universe=universe, block_size=bsize),
        {"generator": "read_text_trace", "source": str(path)},
    )
    return RWTrace(trace=trace, is_write=writes)


def write_text_trace(rw: RWTrace, path: str | Path) -> Path:
    """Write an :class:`RWTrace` in the text format; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        f"# universe: {rw.trace.universe}",
        f"# block_size: {rw.trace.block_size}",
    ]
    for item, is_write in zip(rw.trace.items.tolist(), rw.is_write.tolist()):
        lines.append(f"{item} {'w' if is_write else 'r'}")
    path.write_text("\n".join(lines) + "\n")
    return path

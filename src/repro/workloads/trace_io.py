"""Plain-text trace import/export for external workloads.

Real cache studies consume traces from other tools; this module reads
and writes a minimal, diff-friendly text format so external traces can
be replayed through the simulator (and library traces exported for
other simulators):

* comment/header lines start with ``#``; two directives are honoured:
  ``# universe: <int>`` and ``# block_size: <int>``.  A ``#`` line
  shaped like a directive (``# key: value``) with any other key is a
  :class:`~repro.errors.TraceFormatError` — silent typos
  (``# blocksize: 8``) must not change simulation results; plain
  comments without a colon are ignored;
* each remaining line is one access: a non-negative item id,
  optionally followed by whitespace and an ``r``/``w`` flag (default
  read).  Extra fields, negative ids, and files with no accesses are
  format errors.

Every malformed input raises :class:`~repro.errors.TraceFormatError`
with the file and line number — never a bare ``ValueError`` or
``IndexError``.

Unknown ids are densified optionally (``densify=True``) so sparse
address traces (e.g. raw memory addresses) map onto the library's
dense universe while preserving block co-location: addresses are
grouped by ``address // block_size`` before renaming, so items that
shared a block still do.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.readwrite import RWTrace
from repro.core.trace import Trace
from repro.errors import TraceFormatError

__all__ = ["read_text_trace", "write_text_trace", "densify_addresses"]


def densify_addresses(
    addresses: np.ndarray, block_size: int
) -> Tuple[np.ndarray, int]:
    """Rename sparse addresses to a dense universe, preserving blocks.

    Blocks (``address // block_size``) are numbered in first-appearance
    order; within a block, items keep their intra-block offset.
    Returns ``(dense_items, universe)``.
    """
    if block_size < 1:
        raise TraceFormatError(f"block_size must be >= 1, got {block_size}")
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size and addresses.min() < 0:
        raise TraceFormatError("addresses must be non-negative")
    block_rename: Dict[int, int] = {}
    out = np.empty_like(addresses)
    for idx, addr in enumerate(addresses.tolist()):
        blk, off = divmod(addr, block_size)
        new_blk = block_rename.setdefault(blk, len(block_rename))
        out[idx] = new_blk * block_size + off
    universe = max(1, len(block_rename)) * block_size
    return out, universe


def read_text_trace(
    path: str | Path,
    block_size: Optional[int] = None,
    densify: bool = False,
) -> RWTrace:
    """Parse a text trace file into an :class:`RWTrace`.

    ``block_size`` overrides the file's ``# block_size:`` directive
    (default 1 if neither is given — traditional caching).
    """
    path = Path(path)
    items: List[int] = []
    writes: List[bool] = []
    header_universe: Optional[int] = None
    header_block: Optional[int] = None
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip().lower()
            key, sep, value = body.partition(":")
            if not sep:
                continue  # plain comment
            key = key.strip()
            if key not in ("universe", "block_size"):
                raise TraceFormatError(
                    f"{path}:{lineno}: unknown directive {key!r} "
                    "(known: universe, block_size)"
                )
            try:
                parsed = int(value)
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: directive {key!r} needs an integer, "
                    f"got {value.strip()!r}"
                ) from exc
            if parsed < 1:
                raise TraceFormatError(
                    f"{path}:{lineno}: directive {key!r} must be >= 1, "
                    f"got {parsed}"
                )
            if key == "universe":
                header_universe = parsed
            else:
                header_block = parsed
            continue
        parts = line.split()
        if len(parts) > 2:
            raise TraceFormatError(
                f"{path}:{lineno}: expected 'item [r|w]', "
                f"got {len(parts)} fields: {line!r}"
            )
        try:
            item = int(parts[0], 0)
        except ValueError as exc:
            raise TraceFormatError(
                f"{path}:{lineno}: bad item id {parts[0]!r}"
            ) from exc
        if item < 0:
            raise TraceFormatError(
                f"{path}:{lineno}: item ids must be non-negative, got {item}"
            )
        items.append(item)
        if len(parts) > 1:
            flag = parts[1].lower()
            if flag not in ("r", "w"):
                raise TraceFormatError(
                    f"{path}:{lineno}: flag must be r or w, got {parts[1]!r}"
                )
            writes.append(flag == "w")
        else:
            writes.append(False)
    if not items:
        raise TraceFormatError(f"{path}: no accesses found")
    bsize = block_size or header_block or 1
    arr = np.asarray(items, dtype=np.int64)
    if densify:
        arr, universe = densify_addresses(arr, bsize)
    else:
        top = int(arr.max()) + 1
        universe = header_universe or (-(-top // bsize) * bsize)
        if universe < top:
            raise TraceFormatError(
                f"{path}: universe {universe} smaller than max item {top - 1}"
            )
        universe = -(-universe // bsize) * bsize
    trace = Trace(
        arr,
        FixedBlockMapping(universe=universe, block_size=bsize),
        {"generator": "read_text_trace", "source": str(path)},
    )
    return RWTrace(trace=trace, is_write=np.asarray(writes, dtype=bool))


def write_text_trace(rw: RWTrace, path: str | Path) -> Path:
    """Write an :class:`RWTrace` in the text format; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        f"# universe: {rw.trace.universe}",
        f"# block_size: {rw.trace.block_size}",
    ]
    for item, is_write in zip(rw.trace.items.tolist(), rw.is_write.tolist()):
        lines.append(f"{item} {'w' if is_write else 'r'}")
    path.write_text("\n".join(lines) + "\n")
    return path

"""Classic single-granularity workloads.

These exhibit temporal locality only (any spatial locality is
accidental), so Item Caches should match or beat Block Caches on all
of them — the first half of the paper's baseline story.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError

__all__ = [
    "uniform_random",
    "zipf_items",
    "sequential_scan",
    "cyclic_scan",
    "strided",
]


def _mapping(universe: int, block_size: int) -> FixedBlockMapping:
    rounded = -(-universe // block_size) * block_size
    return FixedBlockMapping(universe=rounded, block_size=block_size)


def uniform_random(
    length: int, universe: int, block_size: int = 8, seed: int = 0
) -> Trace:
    """Independent uniform requests over the universe."""
    if length < 1 or universe < 1:
        raise ConfigurationError("length and universe must be >= 1")
    rng = np.random.default_rng(seed)
    items = rng.integers(0, universe, size=length, dtype=np.int64)
    return Trace(
        items,
        _mapping(universe, block_size),
        {"generator": "uniform_random", "universe": universe, "seed": seed},
    )


def zipf_items(
    length: int,
    universe: int,
    alpha: float = 1.0,
    block_size: int = 8,
    seed: int = 0,
    shuffle_ranks: bool = True,
) -> Trace:
    """Zipf-popular items (rank-``r`` item has weight ``r^{-alpha}``).

    ``shuffle_ranks`` scatters popular items across blocks (default),
    which removes incidental spatial locality; disable it to co-locate
    hot items inside blocks.
    """
    if alpha < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=float)
    weights = ranks**-alpha
    weights /= weights.sum()
    ids = np.arange(universe, dtype=np.int64)
    if shuffle_ranks:
        rng.shuffle(ids)
    draws = rng.choice(ids, size=length, p=weights)
    return Trace(
        draws.astype(np.int64),
        _mapping(universe, block_size),
        {
            "generator": "zipf_items",
            "alpha": alpha,
            "universe": universe,
            "seed": seed,
        },
    )


def sequential_scan(
    universe: int, block_size: int = 8, repeats: int = 1
) -> Trace:
    """``repeats`` front-to-back passes over the universe.

    Maximal spatial locality: every block is consumed item by item.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    items = np.tile(np.arange(universe, dtype=np.int64), repeats)
    return Trace(
        items,
        _mapping(universe, block_size),
        {"generator": "sequential_scan", "repeats": repeats},
    )


def cyclic_scan(
    length: int, working_set: int, block_size: int = 8
) -> Trace:
    """Round-robin over ``working_set`` items (LRU's classic nemesis)."""
    if working_set < 1:
        raise ConfigurationError("working_set must be >= 1")
    items = (np.arange(length, dtype=np.int64)) % working_set
    return Trace(
        items,
        _mapping(working_set, block_size),
        {"generator": "cyclic_scan", "working_set": working_set},
    )


def strided(
    length: int, universe: int, stride: int, block_size: int = 8
) -> Trace:
    """Fixed-stride sweep (``stride >= block_size`` defeats blocks)."""
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")
    items = (np.arange(length, dtype=np.int64) * stride) % universe
    return Trace(
        items,
        _mapping(universe, block_size),
        {"generator": "strided", "stride": stride},
    )

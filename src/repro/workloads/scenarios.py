"""System-flavoured workload scenarios.

The paper's introduction motivates GC caching with real hierarchies:
SRAM lines (64 B) inside DRAM rows (2–4 KB), and pages (4 KB) on
flash/disk.  These generators translate that into item/block terms:

* :func:`dram_cache_workload` — a die-stacked DRAM cache holding 64 B
  lines fetched from 4 KB rows (B = 64): row-buffer-friendly bursts of
  co-located lines, hot rows by Zipf, plus pointer-chase noise with no
  spatial structure.
* :func:`page_cache_workload` — a page cache reading files: whole-file
  sequential reads (spatial) mixed with random hot-page lookups
  (temporal), mimicking a file-server scan+index mix.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError

__all__ = ["dram_cache_workload", "page_cache_workload"]


def dram_cache_workload(
    length: int = 100_000,
    rows: int = 512,
    lines_per_row: int = 64,
    hot_row_fraction: float = 0.1,
    burst_mean: float = 8.0,
    noise_fraction: float = 0.2,
    seed: int = 0,
) -> Trace:
    """SRAM/DRAM granularity boundary: 64-line rows, bursty row reuse.

    Accesses arrive as bursts of geometrically-distributed length
    within a Zipf-hot row (row-buffer locality), except a
    ``noise_fraction`` of isolated single-line touches to uniformly
    random rows (pointer chasing).
    """
    if rows < 2 or lines_per_row < 1:
        raise ConfigurationError("need >= 2 rows and >= 1 line per row")
    if not 0 < burst_mean:
        raise ConfigurationError("burst_mean must be positive")
    if not 0 <= noise_fraction <= 1:
        raise ConfigurationError("noise_fraction must be in [0, 1]")
    mapping = FixedBlockMapping(
        universe=rows * lines_per_row, block_size=lines_per_row
    )
    rng = np.random.default_rng(seed)
    n_hot = max(1, int(rows * hot_row_fraction))
    ranks = np.arange(1, n_hot + 1, dtype=float)
    weights = ranks**-1.0
    weights /= weights.sum()
    hot_rows = rng.permutation(rows)[:n_hot]
    accesses: list[int] = []
    p_end = min(1.0, 1.0 / burst_mean)
    while len(accesses) < length:
        if rng.random() < noise_fraction:
            row = int(rng.integers(rows))
            accesses.append(row * lines_per_row + int(rng.integers(lines_per_row)))
            continue
        row = int(rng.choice(hot_rows, p=weights))
        start = int(rng.integers(lines_per_row))
        offset = 0
        while True:
            line = (start + offset) % lines_per_row
            accesses.append(row * lines_per_row + line)
            offset += 1
            if rng.random() < p_end or offset >= lines_per_row:
                break
    return Trace(
        np.asarray(accesses[:length], dtype=np.int64),
        mapping,
        {
            "generator": "dram_cache_workload",
            "rows": rows,
            "lines_per_row": lines_per_row,
            "seed": seed,
        },
    )


def page_cache_workload(
    length: int = 100_000,
    files: int = 64,
    pages_per_file: int = 32,
    scan_fraction: float = 0.5,
    hot_pages: int = 128,
    seed: int = 0,
) -> Trace:
    """File-server mix: whole-file scans plus hot random page lookups.

    Files are blocks (a readahead unit fetches neighbours for free);
    scans read every page of a uniformly chosen file in order, lookups
    hit a Zipf-hot page set scattered across files.
    """
    if files < 1 or pages_per_file < 1:
        raise ConfigurationError("need >= 1 file and >= 1 page per file")
    if not 0 <= scan_fraction <= 1:
        raise ConfigurationError("scan_fraction must be in [0, 1]")
    universe = files * pages_per_file
    hot_pages = min(hot_pages, universe)
    mapping = FixedBlockMapping(universe=universe, block_size=pages_per_file)
    rng = np.random.default_rng(seed)
    hot_ids = rng.permutation(universe)[:hot_pages]
    ranks = np.arange(1, hot_pages + 1, dtype=float)
    weights = ranks**-0.9
    weights /= weights.sum()
    accesses: list[int] = []
    while len(accesses) < length:
        if rng.random() < scan_fraction:
            f = int(rng.integers(files))
            base = f * pages_per_file
            accesses.extend(range(base, base + pages_per_file))
        else:
            accesses.append(int(rng.choice(hot_ids, p=weights)))
    return Trace(
        np.asarray(accesses[:length], dtype=np.int64),
        mapping,
        {
            "generator": "page_cache_workload",
            "files": files,
            "pages_per_file": pages_per_file,
            "seed": seed,
        },
    )

"""Streaming trace ingestion: chunked parsers and SHARDS sampling.

`repro.workloads.trace_io` materializes whole traces in RAM, which caps
experiments at toy scales.  This module reads traces in bounded memory:

* **Chunked parsers** — :class:`TextTraceStream` (the repo's text
  format), :class:`MsrTraceStream` (MSR-Cambridge block-storage CSV:
  ``timestamp,hostname,disk,type,offset,size[,latency]``, expanded to
  page-granular accesses), and :class:`KvTraceStream` (memcached-style
  ``timestamp,key,op[,...]`` CSV, keys hashed to stable 63-bit ids).
  All three sniff gzip by magic bytes (never by extension), support an
  ``offset=``/``limit=`` access window, and raise
  :class:`~repro.errors.TraceFormatError` with ``path:lineno`` prefixes
  that stay correct across chunk boundaries.
* **A one-pass converter** — :func:`convert_to_rtc` streams any parser
  into the mmap-able ``.rtc`` columnar format
  (:mod:`repro.core.rtc`), optionally densifying sparse addresses
  block-preservingly and/or SHARDS-sampling on the fly.  Peak memory is
  O(chunk + distinct items), never O(n).
* **SHARDS sampling** — :func:`shards` builds a spatially hashed
  sampler that keeps an access iff ``SplitMix64(block ^ salt) <
  rate * 2^64``.  Filtering by *block* hash keeps load sets intact
  (every item of a kept block is kept), so granularity-change effects
  survive sampling; stack distances on the sample estimate true
  distances scaled by ``rate``, which is what
  :func:`repro.analysis.mrc.sampled_miss_ratio_curve` rescales.
"""

from __future__ import annotations

import hashlib
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

import numpy as np

from repro.core.rtc import DEFAULT_CHUNK, RtcFile, RtcWriter
from repro.core.trace import Trace
from repro.errors import ConfigurationError, TraceFormatError

__all__ = [
    "KvTraceStream",
    "MsrTraceStream",
    "ShardsSampler",
    "StreamChunk",
    "StreamingDensifier",
    "TextTraceStream",
    "convert_to_rtc",
    "open_text_source",
    "sample_rtc",
    "sample_trace",
    "shards",
]

_GZIP_MAGIC = b"\x1f\x8b"

#: memcached-style operations mapped to the read/write flag.
_KV_READ_OPS = frozenset({"get", "gets", "read", "hit", "touch"})
_KV_WRITE_OPS = frozenset(
    {"set", "add", "replace", "cas", "append", "prepend", "incr", "decr", "delete", "update", "write"}
)


def open_text_source(path: str | Path) -> TextIO:
    """Open ``path`` for text reading, gunzipping if the *content* is gzip.

    Detection is by the two magic bytes ``1f 8b``, not the file
    extension — a ``.trace`` file that happens to be compressed works,
    and a ``.gz``-named plain file is read as-is.
    """
    raw = open(path, "rb")
    try:
        magic = raw.read(2)
        raw.seek(0)
        if magic == _GZIP_MAGIC:
            import gzip

            return io.TextIOWrapper(gzip.GzipFile(fileobj=raw), encoding="utf-8")
        return io.TextIOWrapper(raw, encoding="utf-8")
    except BaseException:
        raw.close()
        raise


@dataclass
class StreamChunk:
    """One bounded batch of parsed accesses."""

    items: np.ndarray  #: int64 item ids
    writes: np.ndarray  #: bool write flags


class _AccessStream:
    """Base class: window handling + chunk batching over ``_accesses()``.

    Subclasses yield ``(item, is_write)`` pairs from ``_accesses()``;
    this base applies the ``offset``/``limit`` window (skipped accesses
    are still parsed and validated), batches survivors into
    :class:`StreamChunk` arrays of at most ``chunk`` accesses, and stops
    reading the source as soon as the window is exhausted.
    """

    def __init__(
        self,
        path: str | Path,
        limit: Optional[int] = None,
        offset: int = 0,
        chunk: int = DEFAULT_CHUNK,
    ):
        self.path = Path(path)
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 0:
            raise ConfigurationError(f"limit must be >= 0, got {limit}")
        self.limit = limit
        self.offset = int(offset)
        self.chunk = max(1, int(chunk))
        #: Accesses parsed so far, including those skipped by the window.
        self.accesses_seen = 0
        #: Accesses emitted so far (inside the window).
        self.emitted = 0

    def _accesses(self) -> Iterator[Tuple[int, bool]]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[StreamChunk]:
        if self.limit == 0:
            return
        items: List[int] = []
        writes: List[bool] = []
        for item, is_write in self._accesses():
            self.accesses_seen += 1
            if self.accesses_seen <= self.offset:
                continue
            items.append(item)
            writes.append(is_write)
            self.emitted += 1
            if len(items) >= self.chunk:
                yield StreamChunk(
                    np.asarray(items, dtype=np.int64), np.asarray(writes, dtype=bool)
                )
                items, writes = [], []
            if self.limit is not None and self.emitted >= self.limit:
                break
        if items:
            yield StreamChunk(
                np.asarray(items, dtype=np.int64), np.asarray(writes, dtype=bool)
            )


class TextTraceStream(_AccessStream):
    """Chunked reader for the repo's text trace format (gzip-transparent).

    Directive lines (``# universe:``/``# block_size:``) are recorded on
    ``header_universe``/``header_block`` as they are encountered — read
    them after consuming the stream.  Parse errors carry the absolute
    ``path:lineno`` of the offending line regardless of chunking.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.header_universe: Optional[int] = None
        self.header_block: Optional[int] = None

    def _accesses(self) -> Iterator[Tuple[int, bool]]:
        with open_text_source(self.path) as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    self._directive(line, lineno)
                    continue
                parts = line.split()
                if len(parts) > 2:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: expected 'item [r|w]', "
                        f"got {len(parts)} fields: {line!r}"
                    )
                try:
                    item = int(parts[0], 0)
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: bad item id {parts[0]!r}"
                    ) from exc
                if item < 0:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: item ids must be non-negative, got {item}"
                    )
                if len(parts) > 1:
                    flag = parts[1].lower()
                    if flag not in ("r", "w"):
                        raise TraceFormatError(
                            f"{self.path}:{lineno}: flag must be r or w, got {parts[1]!r}"
                        )
                    yield item, flag == "w"
                else:
                    yield item, False

    def _directive(self, line: str, lineno: int) -> None:
        body = line[1:].strip().lower()
        key, sep, value = body.partition(":")
        if not sep:
            return  # plain comment
        key = key.strip()
        if key not in ("universe", "block_size"):
            raise TraceFormatError(
                f"{self.path}:{lineno}: unknown directive {key!r} "
                "(known: universe, block_size)"
            )
        try:
            parsed = int(value)
        except ValueError as exc:
            raise TraceFormatError(
                f"{self.path}:{lineno}: directive {key!r} needs an integer, "
                f"got {value.strip()!r}"
            ) from exc
        if parsed < 1:
            raise TraceFormatError(
                f"{self.path}:{lineno}: directive {key!r} must be >= 1, got {parsed}"
            )
        if key == "universe":
            self.header_universe = parsed
        else:
            self.header_block = parsed


class MsrTraceStream(_AccessStream):
    """MSR-Cambridge block-storage CSV, expanded to page accesses.

    Each record ``timestamp,hostname,disk,type,offset,size[,latency]``
    becomes one access per ``page_bytes`` page the byte range
    ``[offset, offset+size)`` touches; the page number is the item id
    (sparse — convert with ``densify=True``).  ``type`` must be
    ``Read``/``Write`` (case-insensitive).  Lines starting with ``#``
    and blank lines are skipped.
    """

    def __init__(self, *args, page_bytes: int = 4096, **kwargs):
        super().__init__(*args, **kwargs)
        if page_bytes < 1:
            raise ConfigurationError(f"page_bytes must be >= 1, got {page_bytes}")
        self.page_bytes = int(page_bytes)

    def _accesses(self) -> Iterator[Tuple[int, bool]]:
        page = self.page_bytes
        with open_text_source(self.path) as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(",")
                if len(parts) < 6:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: expected "
                        "'timestamp,host,disk,type,offset,size[,latency]', "
                        f"got {len(parts)} fields"
                    )
                op = parts[3].strip().lower()
                if op not in ("read", "write"):
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: type must be Read or Write, "
                        f"got {parts[3].strip()!r}"
                    )
                try:
                    byte_offset = int(parts[4])
                    size = int(parts[5])
                except ValueError as exc:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: offset/size must be integers, "
                        f"got {parts[4].strip()!r}/{parts[5].strip()!r}"
                    ) from exc
                if byte_offset < 0 or size < 0:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: offset/size must be non-negative"
                    )
                is_write = op == "write"
                first = byte_offset // page
                last = (byte_offset + max(size, 1) - 1) // page
                for pg in range(first, last + 1):
                    yield pg, is_write


class KvTraceStream(_AccessStream):
    """memcached-style KV CSV: ``timestamp,key,op[,...]``.

    Keys are hashed to stable 63-bit ids (blake2b, platform-independent)
    — sparse, so convert with ``densify=True``.  ``op`` is mapped to the
    read/write flag (``get``/``gets`` → read, ``set``/``delete``/... →
    write); unknown operations are format errors.
    """

    def _accesses(self) -> Iterator[Tuple[int, bool]]:
        with open_text_source(self.path) as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(",")
                if len(parts) < 3:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: expected 'timestamp,key,op[,...]', "
                        f"got {len(parts)} fields"
                    )
                key = parts[1].strip()
                if not key:
                    raise TraceFormatError(f"{self.path}:{lineno}: empty key")
                op = parts[2].strip().lower()
                if op in _KV_READ_OPS:
                    is_write = False
                elif op in _KV_WRITE_OPS:
                    is_write = True
                else:
                    raise TraceFormatError(
                        f"{self.path}:{lineno}: unknown op {parts[2].strip()!r}"
                    )
                digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
                yield int.from_bytes(digest, "big") & ((1 << 63) - 1), is_write


class StreamingDensifier:
    """Chunk-at-a-time equivalent of :func:`~repro.workloads.trace_io.densify_addresses`.

    Blocks are renamed in first-appearance order across *all* chunks
    seen so far, so streaming densification of a trace produces exactly
    the array the batch function would.
    """

    def __init__(self, block_size: int):
        if block_size < 1:
            raise TraceFormatError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)
        self._rename: Dict[int, int] = {}

    def apply(self, items: np.ndarray) -> np.ndarray:
        out = np.empty_like(items)
        bsize = self.block_size
        rename = self._rename
        for idx, addr in enumerate(items.tolist()):
            blk, off = divmod(addr, bsize)
            out[idx] = rename.setdefault(blk, len(rename)) * bsize + off
        return out

    @property
    def universe(self) -> int:
        return max(1, len(self._rename)) * self.block_size


# --------------------------------------------------------------------------
# SHARDS spatial sampling
# --------------------------------------------------------------------------

_U64_MOD = 1 << 64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer (stable across platforms/runs)."""
    z = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z


@dataclass(frozen=True)
class ShardsSampler:
    """Spatially hashed (SHARDS-style) sampler at *block* granularity.

    An access survives iff ``SplitMix64(block ^ salt) < rate * 2^64``
    where ``salt = SplitMix64(seed)`` — a uniform, deterministic
    coin-flip per block.  Because the decision depends only on the
    block id, sampling is *block-closed*: either every item of a block
    is kept or none is, so load sets and spatial hits survive intact.
    """

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError(f"sample rate must be in (0, 1], got {self.rate}")
        threshold = min(int(round(self.rate * _U64_MOD)), _U64_MOD - 1)
        object.__setattr__(self, "_threshold", np.uint64(threshold))
        salt = int(_splitmix64(np.asarray([self.seed], dtype=np.uint64))[0])
        object.__setattr__(self, "_salt", np.uint64(salt))

    def keep_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Boolean keep-mask for an array of block ids."""
        blocks = np.ascontiguousarray(blocks)
        if self.rate >= 1.0:
            return np.ones(blocks.shape, dtype=bool)
        return _splitmix64(blocks.astype(np.uint64) ^ self._salt) < self._threshold

    def keep_items(self, items: np.ndarray, block_size: int) -> np.ndarray:
        """Keep-mask for item ids under an aligned fixed-``B`` mapping."""
        return self.keep_blocks(np.asarray(items, dtype=np.int64) // int(block_size))

    def sampled_items(self, trace: Trace, chunk: int = DEFAULT_CHUNK * 4) -> np.ndarray:
        """Surviving item ids of ``trace``, gathered chunk-at-a-time.

        For mmap-backed traces this scans the on-disk block column in
        bounded windows, so peak memory is O(chunk + kept) rather than
        O(n).
        """
        rtc = getattr(trace, "_rtc", None)
        if rtc is not None:
            kept: List[np.ndarray] = []
            for lo in range(0, rtc.n, chunk):
                blocks = np.asarray(rtc.blocks[lo : lo + chunk])
                mask = self.keep_blocks(blocks)
                if mask.any():
                    kept.append(np.asarray(rtc.items[lo : lo + chunk])[mask])
            if not kept:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(kept)
        mask = self.keep_blocks(trace.block_trace())
        return np.asarray(trace.items)[mask]

    def sample(self, trace: Trace) -> Trace:
        """An in-memory sub-trace of the surviving accesses.

        Keeps the original mapping/universe — block membership and
        intra-block offsets are untouched, only accesses are dropped.
        """
        items = self.sampled_items(trace)
        return Trace(
            items,
            trace.mapping,
            {
                **trace.metadata,
                "shards_rate": self.rate,
                "shards_seed": self.seed,
                "shards_parent_accesses": len(trace),
            },
        )


def shards(rate: float, seed: int = 0) -> ShardsSampler:
    """Build a :class:`ShardsSampler` (``rate`` in ``(0, 1]``)."""
    return ShardsSampler(rate=rate, seed=seed)


def sample_trace(trace: Trace, rate: float, seed: int = 0) -> Trace:
    """Convenience: ``shards(rate, seed).sample(trace)``."""
    return shards(rate, seed).sample(trace)


def sample_rtc(
    source: str | Path,
    out: str | Path,
    rate: float,
    seed: int = 0,
    chunk: int = DEFAULT_CHUNK,
) -> Path:
    """SHARDS-sample an ``.rtc`` file into a smaller ``.rtc``, streaming.

    Both sides stay on disk: the source columns are scanned in bounded
    windows and surviving accesses stream through an
    :class:`~repro.core.rtc.RtcWriter`, so traces far larger than RAM
    can be thinned.  The sample keeps the source universe (block ids
    and intra-block offsets are untouched) and records the sampling
    parameters plus the parent access count in its metadata — the same
    provenance :meth:`ShardsSampler.sample` attaches in memory.
    """
    rtc = RtcFile(source)
    sampler = shards(rate, seed)
    meta = {
        **dict(rtc.header.get("metadata", {})),
        "shards_rate": sampler.rate,
        "shards_seed": sampler.seed,
        "shards_parent_accesses": rtc.n,
    }
    conversion = {
        "format": "rtc",
        "source": str(rtc.path),
        "sample_rate": sampler.rate,
        "sample_seed": sampler.seed,
    }
    writer = RtcWriter(
        out,
        block_size=int(rtc.header["block_size"]),
        metadata=meta,
        conversion=conversion,
        chunk=chunk,
    )
    try:
        for lo in range(0, rtc.n, chunk):
            blocks = np.asarray(rtc.blocks[lo : lo + chunk])
            mask = sampler.keep_blocks(blocks)
            if mask.any():
                writer.append(
                    np.asarray(rtc.items[lo : lo + chunk])[mask],
                    np.asarray(rtc.ops[lo : lo + chunk])[mask].astype(bool),
                )
    except BaseException:
        writer.abort()
        raise
    try:
        return writer.finalize(universe=int(rtc.header["universe"]))
    except TraceFormatError:
        raise TraceFormatError(
            f"{rtc.path}: sampling at rate {sampler.rate} "
            f"(seed {sampler.seed}) left no accesses"
        ) from None


# --------------------------------------------------------------------------
# Streaming conversion to .rtc
# --------------------------------------------------------------------------


def _sniff_text_directives(path: Path) -> Tuple[Optional[int], Optional[int]]:
    """Read leading ``#`` lines for universe/block_size (cheap, bounded).

    Only the header *prefix* is scanned — directives that appear after
    the first access are handled (rejected) by the conversion pass,
    which needs the block size before the first chunk is written.
    """
    universe: Optional[int] = None
    block: Optional[int] = None
    with open_text_source(path) as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if not line.startswith("#"):
                break
            body = line[1:].strip().lower()
            key, sep, value = body.partition(":")
            if not sep:
                continue
            try:
                parsed = int(value)
            except ValueError:
                continue  # the main pass raises the proper error
            if key.strip() == "universe":
                universe = parsed
            elif key.strip() == "block_size":
                block = parsed
    return universe, block


def convert_to_rtc(
    source: str | Path,
    out: str | Path,
    fmt: str = "text",
    *,
    block_size: Optional[int] = None,
    page_bytes: int = 4096,
    densify: Optional[bool] = None,
    limit: Optional[int] = None,
    offset: int = 0,
    sample_rate: Optional[float] = None,
    sample_seed: int = 0,
    chunk: int = DEFAULT_CHUNK,
    metadata: Optional[dict] = None,
) -> Path:
    """One-pass streaming conversion of a trace file to ``.rtc``.

    ``densify`` defaults to ``True`` for the sparse-address formats
    (``msr``, ``kv``) and ``False`` for ``text``.  When sampling and
    densifying are both requested, sampling happens first (on the raw
    block ids) so the sample matches what :func:`shards` would keep
    from the unconverted stream.  Converting a text trace without
    sampling produces a file whose fingerprint equals the in-memory
    ``read_text_trace`` trace — campaign cells memoize across the two.
    """
    source = Path(source)
    out = Path(out)
    if fmt == "text":
        stream: _AccessStream = TextTraceStream(source, limit=limit, offset=offset, chunk=chunk)
        _, sniffed_block = _sniff_text_directives(source)
        bsize = block_size or sniffed_block or 1
        do_densify = bool(densify)
        generator = "read_text_trace"
    elif fmt == "msr":
        stream = MsrTraceStream(
            source, page_bytes=page_bytes, limit=limit, offset=offset, chunk=chunk
        )
        bsize = block_size or 1
        do_densify = True if densify is None else bool(densify)
        generator = "msr_csv"
    elif fmt == "kv":
        stream = KvTraceStream(source, limit=limit, offset=offset, chunk=chunk)
        bsize = block_size or 1
        do_densify = True if densify is None else bool(densify)
        generator = "kv_csv"
    else:
        raise ConfigurationError(f"unknown trace format {fmt!r} (known: text, msr, kv)")

    sampler = shards(sample_rate, sample_seed) if sample_rate is not None else None
    densifier = StreamingDensifier(bsize) if do_densify else None
    meta = {"generator": generator, "source": str(source)}
    if metadata:
        meta.update(metadata)
    conversion = {
        "format": fmt,
        "source": str(source),
        "block_size": bsize,
        "densify": do_densify,
        "offset": offset,
        "limit": limit,
    }
    if fmt == "msr":
        conversion["page_bytes"] = page_bytes
    if sampler is not None:
        conversion["sample_rate"] = sampler.rate
        conversion["sample_seed"] = sampler.seed

    writer = RtcWriter(out, block_size=bsize, metadata=meta, conversion=conversion, chunk=chunk)
    try:
        for batch in stream:
            items, writes = batch.items, batch.writes
            if sampler is not None:
                mask = sampler.keep_items(items, bsize)
                items, writes = items[mask], writes[mask]
            if items.size == 0:
                continue
            if densifier is not None:
                items = densifier.apply(items)
            writer.append(items, writes)

        header_block = getattr(stream, "header_block", None)
        if fmt == "text" and block_size is None and header_block not in (None, bsize):
            raise TraceFormatError(
                f"{source}: block_size directive ({header_block}) appears after the "
                f"first access (streaming conversion chose {bsize}); move the "
                "directive to the header or pass block_size= explicitly"
            )
        if writer._n == 0:
            if stream.accesses_seen and (offset or limit is not None):
                raise TraceFormatError(
                    f"{source}: no accesses in window (offset={offset}, limit={limit})"
                )
            if stream.accesses_seen and sampler is not None:
                raise TraceFormatError(
                    f"{source}: no accesses survived sampling (rate={sampler.rate})"
                )
            raise TraceFormatError(f"{source}: no accesses found")

        if densifier is not None:
            universe = densifier.universe
        else:
            header_universe = getattr(stream, "header_universe", None)
            if header_universe is not None:
                top = writer._max_item + 1
                if header_universe < top:
                    raise TraceFormatError(
                        f"{source}: universe {header_universe} smaller than "
                        f"max item {top - 1}"
                    )
                universe = -(-header_universe // bsize) * bsize
            else:
                universe = None  # writer rounds max+1 up to whole blocks
        return writer.finalize(universe=universe)
    except BaseException:
        if not writer._finalized:
            writer.abort()
        raise

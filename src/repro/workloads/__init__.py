"""Workload generators producing :class:`~repro.core.trace.Trace` objects.

All generators are deterministic given a ``seed``, return traces with a
``FixedBlockMapping`` (unless noted), and record their parameters in
``trace.metadata``.

* :mod:`repro.workloads.synthetic` — classic single-granularity
  patterns: uniform, Zipf, sequential/cyclic scans, strides.
* :mod:`repro.workloads.spatial` — spatially-structured patterns with
  a tunable ``f/g`` ratio: block runs, Markov within-block walks,
  block-level Zipf.
* :mod:`repro.workloads.mixtures` — compositions: hot items over
  streaming blocks (the IBLP motivation), interleaved phases.
* :mod:`repro.workloads.scenarios` — system-flavoured workloads: a
  DRAM cache in front of 4 KB rows, a page cache over files.
* :mod:`repro.workloads.stream` — streaming ingestion of *external*
  traces: chunked text/MSR/KV parsers, one-pass conversion to the
  mmap-able ``.rtc`` format, and block-closed SHARDS sampling.
"""

from repro.workloads.synthetic import (
    cyclic_scan,
    sequential_scan,
    strided,
    uniform_random,
    zipf_items,
)
from repro.workloads.spatial import (
    block_runs,
    block_zipf,
    interleaved_streams,
    markov_spatial,
)
from repro.workloads.mixtures import hot_and_stream, interleave, phase_mixture
from repro.workloads.scenarios import dram_cache_workload, page_cache_workload
from repro.workloads.etc import etc_item_sizes, etc_kv_workload
from repro.workloads.stream import (
    ShardsSampler,
    convert_to_rtc,
    sample_rtc,
    sample_trace,
    shards,
)

__all__ = [
    "ShardsSampler",
    "convert_to_rtc",
    "sample_rtc",
    "sample_trace",
    "shards",
    "etc_item_sizes",
    "etc_kv_workload",
    "uniform_random",
    "zipf_items",
    "sequential_scan",
    "cyclic_scan",
    "strided",
    "block_runs",
    "markov_spatial",
    "block_zipf",
    "interleaved_streams",
    "hot_and_stream",
    "interleave",
    "phase_mixture",
    "dram_cache_workload",
    "page_cache_workload",
]

"""Spatially-structured workloads with a tunable ``f/g`` ratio.

The paper's locality model measures spatial locality as ``f(n)/g(n)``
— items per window over blocks per window, between 1 and ``B``.  The
generators here dial that ratio:

* :func:`block_runs` — access ``run_length`` distinct items of a block
  before moving on; ``run_length = B`` gives maximal spatial locality,
  1 gives none.
* :func:`markov_spatial` — a two-state walk: stay in the current block
  with probability ``stay``; expected run length ``1/(1-stay)``.
* :func:`block_zipf` — Zipf over *blocks*, uniform within; models hot
  rows/pages whose items are used together.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError

__all__ = ["block_runs", "markov_spatial", "block_zipf", "interleaved_streams"]


def _mapping(universe: int, block_size: int) -> FixedBlockMapping:
    rounded = -(-universe // block_size) * block_size
    return FixedBlockMapping(universe=rounded, block_size=block_size)


def block_runs(
    length: int,
    universe: int,
    block_size: int = 8,
    run_length: int | None = None,
    seed: int = 0,
) -> Trace:
    """Visit random blocks, touching ``run_length`` distinct items each.

    With ``run_length = block_size`` (default) every visit consumes the
    whole block (``f/g → B``); with 1 it touches a single item
    (``f/g → 1``, the Theorem 3 pollution pattern).
    """
    if run_length is None:
        run_length = block_size
    if not 1 <= run_length <= block_size:
        raise ConfigurationError(
            f"run_length must be in [1, {block_size}], got {run_length}"
        )
    mapping = _mapping(universe, block_size)
    rng = np.random.default_rng(seed)
    accesses: list[int] = []
    while len(accesses) < length:
        blk = int(rng.integers(mapping.num_blocks))
        members = mapping.items_in(blk)
        picks = rng.choice(
            len(members), size=min(run_length, len(members)), replace=False
        )
        accesses.extend(int(members[i]) for i in picks)
    return Trace(
        np.asarray(accesses[:length], dtype=np.int64),
        mapping,
        {
            "generator": "block_runs",
            "run_length": run_length,
            "seed": seed,
        },
    )


def markov_spatial(
    length: int,
    universe: int,
    block_size: int = 8,
    stay: float = 0.8,
    seed: int = 0,
) -> Trace:
    """Markov walk: remain in the current block w.p. ``stay``.

    Within a block the next item is uniform; leaving picks a uniform
    new block.  Expected within-block run length is ``1/(1-stay)``,
    giving a smooth dial from no spatial locality (``stay = 0``) to
    near-maximal (``stay → 1``).
    """
    if not 0.0 <= stay < 1.0:
        raise ConfigurationError(f"stay must be in [0, 1), got {stay}")
    mapping = _mapping(universe, block_size)
    rng = np.random.default_rng(seed)
    accesses = np.empty(length, dtype=np.int64)
    blk = int(rng.integers(mapping.num_blocks))
    for pos in range(length):
        if rng.random() >= stay:
            blk = int(rng.integers(mapping.num_blocks))
        members = mapping.items_in(blk)
        accesses[pos] = members[int(rng.integers(len(members)))]
    return Trace(
        accesses,
        mapping,
        {"generator": "markov_spatial", "stay": stay, "seed": seed},
    )


def interleaved_streams(
    length: int,
    streams: int,
    blocks_per_stream: int,
    block_size: int = 8,
) -> Trace:
    """``streams`` sequential scans advancing round-robin.

    Every block stays partially consumed for ``streams * block_size``
    accesses, so exploiting its spatial locality requires a block-level
    footprint of at least ``streams`` blocks — the workload that makes
    block-layer *capacity* (not just block loading) matter.  Items
    never repeat within a lap, so temporal locality is nil until a
    stream wraps.  Deterministic; no seed.
    """
    if streams < 1 or blocks_per_stream < 1:
        raise ConfigurationError("need >= 1 stream and >= 1 block each")
    universe = streams * blocks_per_stream * block_size
    mapping = _mapping(universe, block_size)
    lap = blocks_per_stream * block_size
    accesses = np.empty(length, dtype=np.int64)
    for pos in range(length):
        s = pos % streams
        offset = (pos // streams) % lap
        accesses[pos] = s * lap + offset
    return Trace(
        accesses,
        mapping,
        {
            "generator": "interleaved_streams",
            "streams": streams,
            "blocks_per_stream": blocks_per_stream,
        },
    )


def block_zipf(
    length: int,
    universe: int,
    block_size: int = 8,
    alpha: float = 1.0,
    within_run: int = 4,
    seed: int = 0,
) -> Trace:
    """Zipf-popular blocks with short within-block runs.

    Each step samples a block from a Zipf law, then touches
    ``within_run`` random distinct items of it — hot DRAM rows / hot
    file pages, the workloads that motivate granularity-aware caching.
    """
    if alpha < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
    mapping = _mapping(universe, block_size)
    if not 1 <= within_run <= block_size:
        raise ConfigurationError(
            f"within_run must be in [1, {block_size}], got {within_run}"
        )
    rng = np.random.default_rng(seed)
    nblocks = mapping.num_blocks
    ranks = np.arange(1, nblocks + 1, dtype=float)
    weights = ranks**-alpha
    weights /= weights.sum()
    block_ids = np.arange(nblocks)
    rng.shuffle(block_ids)
    accesses: list[int] = []
    while len(accesses) < length:
        blk = int(rng.choice(block_ids, p=weights))
        members = mapping.items_in(blk)
        picks = rng.choice(
            len(members), size=min(within_run, len(members)), replace=False
        )
        accesses.extend(int(members[i]) for i in picks)
    return Trace(
        np.asarray(accesses[:length], dtype=np.int64),
        mapping,
        {
            "generator": "block_zipf",
            "alpha": alpha,
            "within_run": within_run,
            "seed": seed,
        },
    )

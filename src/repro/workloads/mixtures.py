"""Composite workloads mixing temporal and spatial locality.

The interesting regime for IBLP is *mixed* locality: a hot set served
by the item layer while streaming blocks flow through the block layer.
These generators build exactly that, plus generic interleavers for
ablation studies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError, TraceFormatError

__all__ = ["hot_and_stream", "interleave", "phase_mixture"]


def hot_and_stream(
    length: int,
    hot_items: int,
    stream_blocks: int,
    block_size: int = 8,
    hot_fraction: float = 0.5,
    zipf_alpha: float = 0.8,
    scatter_hot: bool = True,
    seed: int = 0,
) -> Trace:
    """Hot Zipf items interleaved with a streaming whole-block scan.

    The canonical IBLP motivation (§5.1): the hot set rewards an item
    layer; the stream rewards a block layer; either baseline alone
    sacrifices one side.  With ``scatter_hot`` (default) each hot item
    sits in its *own* block — a Block Cache then wastes ``B-1`` slots
    per hot item (Theorem 3's pollution), while an Item Cache pays for
    every streamed item (Theorem 2's blindness).  With
    ``scatter_hot=False`` the hot set is packed into the first
    ``⌈hot_items/B⌉`` blocks (block-cache-friendly).
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    if hot_items < 1 or stream_blocks < 1:
        raise ConfigurationError("need at least one hot item and stream block")
    hot_blocks = hot_items if scatter_hot else -(-hot_items // block_size)
    universe = (hot_blocks + stream_blocks) * block_size
    mapping = FixedBlockMapping(universe=universe, block_size=block_size)
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, hot_items + 1, dtype=float)
    weights = ranks**-zipf_alpha
    weights /= weights.sum()
    if scatter_hot:
        # One hot item per block (block-local offset 0).
        hot_ids = np.arange(hot_items, dtype=np.int64) * block_size
    else:
        hot_ids = np.arange(hot_items, dtype=np.int64)
    stream_start = hot_blocks * block_size
    stream_len = stream_blocks * block_size
    accesses = np.empty(length, dtype=np.int64)
    cursor = 0
    for pos in range(length):
        if rng.random() < hot_fraction:
            accesses[pos] = rng.choice(hot_ids, p=weights)
        else:
            accesses[pos] = stream_start + cursor
            cursor = (cursor + 1) % stream_len
    return Trace(
        accesses,
        mapping,
        {
            "generator": "hot_and_stream",
            "hot_items": hot_items,
            "hot_fraction": hot_fraction,
            "seed": seed,
        },
    )


def interleave(traces: Sequence[Trace], pattern: Sequence[int]) -> Trace:
    """Interleave traces over a shared mapping by a repeating pattern.

    ``pattern`` lists trace indices, e.g. ``[0, 0, 1]`` takes two
    accesses from trace 0 then one from trace 1, cycling until any
    source is exhausted.  All traces must share universe and block
    size.
    """
    if not traces:
        raise ConfigurationError("need at least one trace")
    first = traces[0].mapping
    for t in traces[1:]:
        if (
            t.mapping.universe != first.universe
            or t.mapping.max_block_size != first.max_block_size
        ):
            raise TraceFormatError("interleaved traces must share a mapping")
    if not pattern or any(not 0 <= p < len(traces) for p in pattern):
        raise ConfigurationError("pattern must index into the trace list")
    cursors = [0] * len(traces)
    out: list[int] = []
    while True:
        for idx in pattern:
            if cursors[idx] >= len(traces[idx]):
                return Trace(
                    np.asarray(out, dtype=np.int64),
                    first,
                    {"generator": "interleave", "pattern": list(pattern)},
                )
            out.append(int(traces[idx].items[cursors[idx]]))
            cursors[idx] += 1


def phase_mixture(
    segments: Sequence[Trace], repeats: int = 1
) -> Trace:
    """Concatenate trace segments (phase changes), repeated.

    Useful for regime-shift experiments: e.g. a Zipf phase followed by
    a scan phase stresses a policy's adaptivity.
    """
    if not segments:
        raise ConfigurationError("need at least one segment")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    first = segments[0].mapping
    for seg in segments[1:]:
        if (
            seg.mapping.universe != first.universe
            or seg.mapping.max_block_size != first.max_block_size
        ):
            raise TraceFormatError("mixture segments must share a mapping")
    items = np.concatenate(
        [seg.items for _ in range(repeats) for seg in segments]
    )
    return Trace(items, first, {"generator": "phase_mixture", "repeats": repeats})

"""Exact offline GC caching by memoized state-space search.

Offline GC caching is NP-complete (§3), so no polynomial exact solver
exists unless P = NP; this module provides an exponential one for the
small instances that validate the reduction and calibrate heuristics.

State = (trace position, frozenset of cached items).  On a miss the
solver branches over

* the *load set*: subsets of the requested block containing the item,
  restricted to items with a future use (loading a never-again-used
  item is dominated), and
* the *keep set*: which cached items survive to make room.

Hits advance the position without branching, which collapses the long
round-robin runs the reduction produces.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import FrozenSet, Tuple

from repro.core.trace import Trace
from repro.errors import SolverError

__all__ = ["solve_gc_exact"]


def solve_gc_exact(
    trace: Trace, capacity: int, state_limit: int = 4_000_000
) -> int:
    """Optimal number of misses for ``trace`` with a ``capacity`` cache.

    Raises :class:`SolverError` when the search exceeds
    ``state_limit`` visited states (instance too large).
    """
    items: Tuple[int, ...] = tuple(int(x) for x in trace.items)
    mapping = trace.mapping
    n = len(items)
    # future_use[pos] = set of items accessed at or after pos.  Stored
    # as tuple of frozensets for O(1) "has a future" checks.
    future: list = [None] * (n + 1)
    future[n] = frozenset()
    for pos in range(n - 1, -1, -1):
        future[pos] = future[pos + 1] | {items[pos]}
    visited = [0]

    @lru_cache(maxsize=None)
    def best(pos: int, cached: FrozenSet[int]) -> int:
        visited[0] += 1
        if visited[0] > state_limit:
            raise SolverError(
                f"solve_gc_exact exceeded {state_limit} states"
            )
        # Fast-forward over hits.
        while pos < n and items[pos] in cached:
            pos += 1
        if pos >= n:
            return 0
        item = items[pos]
        block = mapping.block_of(item)
        members = mapping.items_in(block)
        # Useful side loads: block members, not cached, used in future.
        side = tuple(
            m
            for m in members
            if m != item and m not in cached and m in future[pos + 1]
        )
        # Dropping dead weight first shrinks the branching: items with
        # no future use can always be evicted for free.
        live = frozenset(c for c in cached if c in future[pos + 1])
        best_cost: int | None = None
        for r in range(len(side), -1, -1):
            for extra in combinations(side, r):
                load = frozenset(extra) | {item}
                room = capacity - len(load)
                if room < 0:
                    continue
                keep_pool = sorted(live)
                max_keep = min(len(keep_pool), room)
                # Keeping more live items never costs; still explore
                # smaller keeps since *which* items matters.
                for kr in range(max_keep, -1, -1):
                    for keep in combinations(keep_pool, kr):
                        cost = 1 + best(pos + 1, frozenset(keep) | load)
                        if best_cost is None or cost < best_cost:
                            best_cost = cost
                    if best_cost == 1:
                        return 1  # cannot do better than a single miss
        assert best_cost is not None
        return best_cost

    return best(0, frozenset())

"""Polynomial-time certified lower bounds on the offline GC optimum.

Exact offline GC caching is NP-complete, so large-instance experiments
bracket OPT between a cheap lower bound (here) and a heuristic upper
bound (:mod:`repro.offline.heuristics`).

* :func:`distinct_blocks_lower` — every block ever touched costs at
  least one load (cold misses).
* :func:`block_belady_lower` — project the trace to block ids and run
  Belady with a capacity of ``k`` *blocks*.  Any GC cache of ``k``
  items covers at most ``k`` distinct blocks at a time, and a request
  to a block with no resident items is necessarily a miss; hence the
  optimal block-level miss count with ``k`` block slots lower-bounds
  GC OPT.
* :func:`gc_opt_lower` — the max of the above.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

import numpy as np

from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.belady import next_use_array

__all__ = ["distinct_blocks_lower", "block_belady_lower", "gc_opt_lower"]


def distinct_blocks_lower(trace: Trace) -> int:
    """Number of distinct blocks referenced (each costs >= 1 load)."""
    return trace.distinct_blocks()


def block_belady_lower(trace: Trace, capacity: int) -> int:
    """Belady miss count on the block projection with ``capacity`` slots.

    This is the classical MIN algorithm over block ids where each block
    occupies one slot — *not* the same as :class:`BeladyBlock` (which
    charges ``B`` items of space per block).  The slot model dominates
    every feasible GC execution, making the count a certified lower
    bound on GC OPT at item capacity ``capacity``.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    blocks = trace.block_trace()
    nxt = next_use_array(blocks)
    resident: Dict[int, int] = {}
    heap: List[tuple] = []
    misses = 0
    for pos in range(blocks.size):
        blk = int(blocks[pos])
        n = int(nxt[pos])
        if blk in resident:
            resident[blk] = n
            heapq.heappush(heap, (-n, blk))
            continue
        misses += 1
        if len(resident) >= capacity:
            while heap:
                neg, victim = heapq.heappop(heap)
                if resident.get(victim) == -neg:
                    del resident[victim]
                    break
        resident[blk] = n
        heapq.heappush(heap, (-n, blk))
    return misses


def gc_opt_lower(trace: Trace, capacity: int) -> int:
    """Best available certified lower bound on GC OPT."""
    return max(distinct_blocks_lower(trace), block_belady_lower(trace, capacity))

"""Variable-size caching in the fault model (the §3 reduction source).

An instance has ``n`` items with positive integral sizes, a cache of
capacity ``k`` (total size of cached items may never exceed ``k``), and
a request trace.  Serving a request to a non-cached item costs 1 (the
*fault model* of Chrobak, Woeginger, Makino & Xu 2012, who proved the
offline problem NP-complete) and requires loading the item, evicting
others as needed.  Items larger than the cache can never be cached and
always fault.

:func:`solve_vsc_exact` finds the optimal cost by memoized search over
(position, cached-set) states — exponential, intended for the small
instances used to validate the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from itertools import combinations
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import ConfigurationError, SolverError

__all__ = ["VSCInstance", "solve_vsc_exact", "scale_to_integral"]


def scale_to_integral(
    sizes: Sequence[Fraction | float | int], capacity: Fraction | float | int
) -> Tuple[List[int], int]:
    """Scale rational sizes and capacity to integers (§3, first step).

    Multiplies every size and the capacity by the LCM of the size
    denominators; the fraction of cache each item occupies — hence the
    optimal cost — is unchanged.
    """
    fracs = [Fraction(s).limit_denominator(10**9) for s in sizes]
    cap = Fraction(capacity).limit_denominator(10**9)
    lcm = 1
    for f in fracs + [cap]:
        d = f.denominator
        g = _gcd(lcm, d)
        lcm = lcm // g * d
    scaled = [int(f * lcm) for f in fracs]
    return scaled, int(cap * lcm)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


@dataclass(frozen=True)
class VSCInstance:
    """A variable-size caching instance (fault model).

    Attributes
    ----------
    sizes:
        ``sizes[i]`` is the integral size of item ``i``.
    capacity:
        Cache capacity (same units as sizes).
    trace:
        Sequence of item indices requested.
    """

    sizes: Tuple[int, ...]
    capacity: int
    trace: Tuple[int, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ConfigurationError("instance needs at least one item")
        if any(s < 1 for s in self.sizes):
            raise ConfigurationError("item sizes must be positive integers")
        if self.capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if any(not 0 <= t < len(self.sizes) for t in self.trace):
            raise ConfigurationError("trace references unknown items")

    @classmethod
    def build(
        cls,
        sizes: Sequence[int],
        capacity: int,
        trace: Sequence[int],
        name: str = "",
    ) -> "VSCInstance":
        return cls(tuple(int(s) for s in sizes), int(capacity), tuple(trace), name)

    def used_size(self, cached: FrozenSet[int]) -> int:
        """Total size of a cached set."""
        return sum(self.sizes[i] for i in cached)


def solve_vsc_exact(
    instance: VSCInstance, state_limit: int = 2_000_000
) -> int:
    """Optimal fault count by exhaustive memoized search.

    At each miss the solver branches over which cached items to keep
    (only subsets that fit together with the new item; keeping more is
    never worse, but non-maximal keeps are also explored when they are
    incomparable under sizes).  ``state_limit`` caps visited states to
    fail fast on oversized instances.
    """
    sizes = instance.sizes
    cap = instance.capacity
    trace = instance.trace
    visited = [0]

    @lru_cache(maxsize=None)
    def best(pos: int, cached: FrozenSet[int]) -> int:
        visited[0] += 1
        if visited[0] > state_limit:
            raise SolverError(
                f"solve_vsc_exact exceeded {state_limit} states; "
                "instance too large for exact search"
            )
        if pos >= len(trace):
            return 0
        item = trace[pos]
        if item in cached:
            return best(pos + 1, cached)
        if sizes[item] > cap:
            # Can never be cached: pay and move on unchanged.
            return 1 + best(pos + 1, cached)
        room = cap - sizes[item]
        others = sorted(cached)
        best_cost = None
        # Branch over kept subsets that fit (dedup via frozenset cache).
        for r in range(len(others), -1, -1):
            for keep in combinations(others, r):
                if instance.used_size(frozenset(keep)) <= room:
                    cost = 1 + best(pos + 1, frozenset(keep) | {item})
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
        assert best_cost is not None  # r = 0 always feasible
        return best_cost

    return best(0, frozenset())

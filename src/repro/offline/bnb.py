"""Branch-and-bound exact offline GC solver (A* over cache states).

The memoized DP in :mod:`repro.offline.exact` enumerates reachable
states breadth-blind; this solver orders exploration by ``g + h`` where

* ``g`` is the cost paid so far, and
* ``h`` is an **admissible** suffix lower bound: the miss count of
  block-slot Belady (:func:`repro.offline.lower_bounds`' model) on the
  remaining trace, started from the blocks currently represented in
  cache.  Any feasible continuation induces a feasible block-slot
  execution, so ``h`` never overestimates.

Seeding the incumbent with the clairvoyant heuristic
(:func:`repro.offline.heuristics.gc_opt_upper`) prunes aggressively;
instances a few times larger than the plain DP can handle become
tractable, and on shared sizes both solvers must agree exactly (tested).
"""

from __future__ import annotations

import heapq
from functools import lru_cache
from itertools import combinations
from typing import Dict, FrozenSet, Tuple

from repro.core.trace import Trace
from repro.errors import SolverError
from repro.offline.heuristics import gc_opt_upper
from repro.policies.belady import next_use_array

__all__ = ["solve_gc_bnb"]


def solve_gc_bnb(
    trace: Trace, capacity: int, node_limit: int = 2_000_000
) -> int:
    """Optimal miss count via best-first search with admissible pruning."""
    items: Tuple[int, ...] = tuple(int(x) for x in trace.items)
    n = len(items)
    if n == 0:
        return 0
    mapping = trace.mapping
    blocks_arr = trace.block_trace()
    block_of = {it: int(b) for it, b in zip(items, blocks_arr)}
    next_block_use = next_use_array(blocks_arr)
    # future[pos]: items accessed at or after pos (for dead-load pruning).
    future = [frozenset()] * (n + 1)
    acc: FrozenSet[int] = frozenset()
    for pos in range(n - 1, -1, -1):
        acc = acc | {items[pos]}
        future[pos] = acc

    @lru_cache(maxsize=None)
    def suffix_lb(pos: int, resident_blocks: FrozenSet[int]) -> int:
        """Block-slot Belady misses on the suffix (admissible)."""
        slots: Dict[int, int] = {}
        for b in resident_blocks:
            # Next use of block b at/after pos.
            slots[b] = _next_use_of_block(pos, b)
        misses = 0
        heap = [(-u, b) for b, u in slots.items()]
        heapq.heapify(heap)
        for t in range(pos, n):
            b = block_of[items[t]]
            u = int(next_block_use[t])
            if b in slots:
                slots[b] = u
                heapq.heappush(heap, (-u, b))
                continue
            misses += 1
            if len(slots) >= capacity:
                while heap:
                    neg, victim = heapq.heappop(heap)
                    if slots.get(victim) == -neg:
                        del slots[victim]
                        break
            slots[b] = u
            heapq.heappush(heap, (-u, b))
        return misses

    # Precompute per-block occurrence positions for _next_use_of_block.
    occurrences: Dict[int, list] = {}
    for pos in range(n):
        occurrences.setdefault(int(blocks_arr[pos]), []).append(pos)

    def _next_use_of_block(pos: int, b: int) -> int:
        from bisect import bisect_left

        occ = occurrences.get(b)
        if not occ:
            return 1 << 60
        idx = bisect_left(occ, pos)
        return occ[idx] if idx < len(occ) else 1 << 60

    incumbent = gc_opt_upper(trace, capacity)
    best_g: Dict[Tuple[int, FrozenSet[int]], int] = {}
    open_heap = [(suffix_lb(0, frozenset()), 0, 0, frozenset())]
    visited = 0
    while open_heap:
        f, g, pos, cached = heapq.heappop(open_heap)
        visited += 1
        if visited > node_limit:
            raise SolverError(f"solve_gc_bnb exceeded {node_limit} nodes")
        # Fast-forward hits.
        while pos < n and items[pos] in cached:
            pos += 1
        if pos >= n:
            return g
        key = (pos, cached)
        prev = best_g.get(key)
        if prev is not None and prev <= g:
            continue
        best_g[key] = g
        if f >= incumbent:
            continue  # cannot beat the incumbent
        item = items[pos]
        blk = mapping.block_of(item)
        members = mapping.items_in(blk)
        side = tuple(
            m
            for m in members
            if m != item and m not in cached and m in future[pos + 1]
        )
        live = frozenset(c for c in cached if c in future[pos + 1])
        for r in range(len(side), -1, -1):
            for extra in combinations(side, r):
                load = frozenset(extra) | {item}
                room = capacity - len(load)
                if room < 0:
                    continue
                keep_pool = sorted(live)
                for kr in range(min(len(keep_pool), room), -1, -1):
                    for keep in combinations(keep_pool, kr):
                        new_cached = frozenset(keep) | load
                        ng = g + 1
                        nblocks = frozenset(
                            mapping.block_of(c) for c in new_cached
                        )
                        nf = ng + suffix_lb(pos + 1, nblocks)
                        if nf < incumbent:
                            heapq.heappush(
                                open_heap, (nf, ng, pos + 1, new_cached)
                            )
    # Open list exhausted without reaching the end: the incumbent from
    # the clairvoyant heuristic is optimal (every branch pruned at it).
    return incumbent

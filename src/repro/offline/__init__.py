"""Offline GC caching: NP-completeness machinery and exact solvers (§3).

The paper proves Offline GC Caching NP-complete by reduction from
variable-size caching in the fault model [Chrobak et al. 2012].  This
package makes the whole argument executable:

* :mod:`repro.offline.vsc` — variable-size caching instances and an
  exact exponential solver (the reduction's source problem).
* :mod:`repro.offline.reduction` — the §3 construction mapping a VSC
  instance to a GC instance with identical optimal cost (Figure 2).
* :mod:`repro.offline.exact` — exact offline GC solver (memoized
  search over cache states) for small instances.
* :mod:`repro.offline.bnb` — best-first branch-and-bound with an
  admissible block-slot-Belady heuristic (reaches larger instances).
* :mod:`repro.offline.lower_bounds` — polynomial-time certified lower
  bounds on OPT (block-level Belady, distinct-block count).
* :mod:`repro.offline.heuristics` — ``BeladyGC``, a clairvoyant
  block-aware heuristic used as a strong polynomial upper bound on
  OPT throughout the benches.
"""

from repro.offline.vsc import VSCInstance, solve_vsc_exact
from repro.offline.reduction import reduce_vsc_to_gc, ReducedInstance
from repro.offline.exact import solve_gc_exact
from repro.offline.bnb import solve_gc_bnb
from repro.offline.lower_bounds import (
    block_belady_lower,
    distinct_blocks_lower,
    gc_opt_lower,
)
from repro.offline.heuristics import BeladyGC, gc_opt_upper

__all__ = [
    "VSCInstance",
    "solve_vsc_exact",
    "reduce_vsc_to_gc",
    "ReducedInstance",
    "solve_gc_exact",
    "solve_gc_bnb",
    "block_belady_lower",
    "distinct_blocks_lower",
    "gc_opt_lower",
    "BeladyGC",
    "gc_opt_upper",
]

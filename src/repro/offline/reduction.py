"""The §3 reduction: variable-size caching → GC caching (Figure 2).

For each VSC item ``i`` of (integral) size ``z_i`` the reduction
creates one block whose *active set* is ``z_i`` fresh unit-size items.
Every VSC request to ``i`` becomes ``z_i`` round-robin passes over the
active set — ``z_i × z_i`` consecutive GC accesses.  The GC cache
keeps the VSC capacity.

The paper proves the optimal costs coincide: the repeated round-robin
forces any optimal GC cache to load and evict whole active sets, at
which point each set behaves exactly like the original variable-size
item (one unit of cost to bring in, ``z_i`` units of space to keep).

:func:`reduce_vsc_to_gc` builds the instance;
:func:`figure2_instance` reproduces the paper's worked example with
items A (size 2), B (size 1), C (size 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.mapping import ExplicitBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.offline.vsc import VSCInstance

__all__ = ["ReducedInstance", "reduce_vsc_to_gc", "figure2_instance"]


@dataclass(frozen=True)
class ReducedInstance:
    """A GC instance produced by the reduction, with provenance."""

    trace: Trace
    capacity: int
    source: VSCInstance
    #: ``active_sets[i]`` lists the GC items standing in for VSC item i.
    active_sets: Tuple[Tuple[int, ...], ...]


def reduce_vsc_to_gc(
    instance: VSCInstance, block_capacity: int | None = None
) -> ReducedInstance:
    """Build the GC instance whose optimal cost equals the VSC optimum.

    Parameters
    ----------
    instance:
        A variable-size caching instance with integral sizes (run
        :func:`repro.offline.vsc.scale_to_integral` first if needed).
    block_capacity:
        The model's ``B``; must be at least the largest item size.
        Defaults to exactly that size (the tightest legal choice).
    """
    largest = max(instance.sizes)
    if block_capacity is None:
        block_capacity = largest
    if block_capacity < largest:
        raise ConfigurationError(
            f"block capacity {block_capacity} smaller than largest item "
            f"size {largest}"
        )
    # One block per VSC item; active set = that block's items.
    active_sets: List[Tuple[int, ...]] = []
    next_item = 0
    for z in instance.sizes:
        active_sets.append(tuple(range(next_item, next_item + z)))
        next_item += z
    mapping = ExplicitBlockMapping.from_groups(
        active_sets, max_block_size=block_capacity
    )
    accesses: List[int] = []
    for vsc_item in instance.trace:
        active = active_sets[vsc_item]
        z = len(active)
        # z round-robin passes over the active set: each item accessed
        # z times, interleaved, preserving the VSC ordering of blocks.
        for _ in range(z):
            accesses.extend(active)
    trace = Trace(
        np.asarray(accesses, dtype=np.int64),
        mapping,
        {
            "generator": "reduce_vsc_to_gc",
            "source": instance.name or "vsc",
            "capacity": instance.capacity,
        },
    )
    return ReducedInstance(
        trace=trace,
        capacity=instance.capacity,
        source=instance,
        active_sets=tuple(active_sets),
    )


def figure2_instance() -> Tuple[VSCInstance, ReducedInstance]:
    """The worked example of Figure 2.

    Three variable-size items — A (size 2), B (size 1), C (size 3) —
    with trace A, B, A, C, A and a cache of size 3.  Figure 2 shows the
    generated GC trace ``A1 A2 A1 A2 · B1 · A1 A2 A1 A2 · C1..C3 ×3 ·
    A1 A2 A1 A2``.
    """
    vsc = VSCInstance.build(
        sizes=[2, 1, 3], capacity=3, trace=[0, 1, 0, 2, 0], name="figure2"
    )
    return vsc, reduce_vsc_to_gc(vsc)

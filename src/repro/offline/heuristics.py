"""Clairvoyant heuristics upper-bounding the offline GC optimum.

:class:`BeladyGC` extends Belady/MIN with granularity-change loads: on
a miss it loads, besides the requested item, those block members whose
next use comes soon enough to justify the space — specifically, in
ascending next-use order, a member is added while the cache has free
room or the member's next use precedes the latest next use among
resident items (it would displace something strictly less useful).
Eviction is classical furthest-in-future at item granularity.

This is a heuristic — offline GC caching is NP-complete — but on the
paper's adversarial constructions it reproduces the prescribed OPT
strategies exactly (load the whole active/accessed set on first touch,
keep near-future items), which the adversary benches assert.

:func:`gc_opt_upper` returns the best clairvoyant upper bound among
``BeladyGC``, :class:`~repro.policies.belady.BeladyItem` and
:class:`~repro.policies.belady.BeladyBlock`.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Dict, FrozenSet, List, Set

import numpy as np

from repro.core.engine import simulate
from repro.core.mapping import BlockMapping
from repro.core.trace import Trace
from repro.errors import ProtocolViolation
from repro.policies.base import OfflinePolicy, register_policy
from repro.policies.belady import BeladyBlock, BeladyItem

__all__ = ["BeladyGC", "gc_opt_upper"]

_INF = np.iinfo(np.int64).max


@register_policy
class BeladyGC(OfflinePolicy):
    """Belady with granularity-aware side loads (OPT upper bound)."""

    name = "belady-gc"

    def __init__(self, capacity: int, mapping: BlockMapping) -> None:
        super().__init__(capacity, mapping)
        self._occurrences: Dict[int, List[int]] = {}
        self._next_use: Dict[int, int] = {}  # resident item -> next use
        self._heap: List[tuple] = []  # (-next_use, item), lazy deletion
        self._pos = 0
        self._trace_items: np.ndarray | None = None

    def prepare(self, trace: Trace) -> None:
        super().prepare(trace)
        self._trace_items = trace.items
        occ: Dict[int, List[int]] = {}
        for pos, item in enumerate(trace.items.tolist()):
            occ.setdefault(item, []).append(pos)
        self._occurrences = occ
        self._next_use = {}
        self._heap = []
        self._pos = 0

    # -- clairvoyance helpers ---------------------------------------------
    def _use_after(self, item: int, pos: int) -> int:
        """First occurrence of ``item`` strictly after ``pos`` (or INF)."""
        occ = self._occurrences.get(item)
        if not occ:
            return _INF
        idx = bisect_right(occ, pos)
        return occ[idx] if idx < len(occ) else _INF

    def _set_next_use(self, item: int, nxt: int) -> None:
        self._next_use[item] = nxt
        heapq.heappush(self._heap, (-nxt, item))

    def _evict_furthest(self) -> int:
        while self._heap:
            neg, item = heapq.heappop(self._heap)
            if self._next_use.get(item) == -neg:
                del self._next_use[item]
                return item
        raise ProtocolViolation("BeladyGC eviction from empty cache")

    # -- Policy API ---------------------------------------------------------
    def access(self, item: int) -> "AccessOutcome":
        from repro.types import AccessOutcome  # local to avoid cycle at import

        self._require_prepared()
        assert self._trace_items is not None
        if int(self._trace_items[self._pos]) != item:
            raise ProtocolViolation(
                f"offline policy replayed out of order at position {self._pos}"
            )
        pos = self._pos
        self._pos += 1
        if item in self._next_use:
            self._set_next_use(item, self._use_after(item, pos))
            return AccessOutcome(item=item, hit=True)
        # Plan the load set: requested item plus useful block members.
        block = self.mapping.block_of(item)
        candidates = sorted(
            (
                (self._use_after(m, pos), m)
                for m in self.mapping.items_in(block)
                if m != item and m not in self._next_use
            ),
        )
        load: List[int] = [item]
        planned_uses: List[int] = [self._use_after(item, pos)]
        # Plan displacements against a snapshot of resident next-uses,
        # furthest first; the requested item's own slot may already
        # force evictions, which consume the furthest entries.
        uses_desc = sorted(self._next_use.values(), reverse=True)
        evict_ptr = max(0, len(self._next_use) + 1 - self.capacity)
        for nxt, member in candidates:
            if nxt == _INF:
                break  # never used again; sorted order ⇒ rest are too
            if len(load) >= self.capacity:
                break
            if len(self._next_use) - evict_ptr + len(load) < self.capacity:
                load.append(member)  # free space, no displacement
                planned_uses.append(nxt)
            elif evict_ptr < len(uses_desc) and uses_desc[evict_ptr] > nxt:
                load.append(member)  # displaces a later-used resident
                planned_uses.append(nxt)
                evict_ptr += 1
            else:
                break
        evicted: Set[int] = set()
        while len(self._next_use) + len(load) > self.capacity:
            evicted.add(self._evict_furthest())
        for member, nxt in zip(load, planned_uses):
            self._set_next_use(member, nxt)
        return AccessOutcome(
            item=item,
            hit=False,
            loaded=frozenset(load),
            evicted=frozenset(evicted),
        )

    def contains(self, item: int) -> bool:
        return item in self._next_use

    def resident_items(self) -> FrozenSet[int]:
        return frozenset(self._next_use)


def gc_opt_upper(trace: Trace, capacity: int) -> int:
    """Best clairvoyant upper bound on GC OPT for ``trace``.

    Runs BeladyGC, BeladyItem, and BeladyBlock under the referee and
    returns the minimum miss count — each is a feasible GC execution,
    so the minimum upper-bounds the (NP-hard) optimum.
    """
    counts = []
    for cls in (BeladyGC, BeladyItem, BeladyBlock):
        policy = cls(capacity, trace.mapping)
        counts.append(simulate(policy, trace).misses)
    return min(counts)

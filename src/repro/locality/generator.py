"""Non-adaptive phase traces consistent with a target (f, g).

A policy-independent counterpart of
:class:`~repro.adversary.locality_adversary.LocalityAdversary`: it
emits the same repetition structure (repetition ``j`` of a phase
starts at access ``f⁻¹(j+1) − 1``, so no window sees more distinct
items than ``f`` allows) but picks items by seeded randomness rather
than by inspecting a cache.  New blocks are opened only while the
count of blocks touched in the phase stays within ``g``.

Use it to manufacture workloads whose *measured* profile matches a
requested analytic family — the E-LOC bench generates traces this way,
re-profiles them, and checks the Theorem 8–11 bounds bracket measured
fault rates.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError

__all__ = ["phase_trace"]


def phase_trace(
    f_inverse: Callable[[float], float],
    g: Callable[[float], float],
    universe_items: int,
    block_size: int,
    phases: int = 4,
    distinct_per_phase: Optional[int] = None,
    seed: int = 0,
) -> Trace:
    """Generate ``phases`` locality-constrained phases.

    Parameters
    ----------
    f_inverse, g:
        The target locality family (e.g. from
        :class:`~repro.locality.functions.PolynomialLocality`).
    universe_items:
        Pool of distinct items to draw from (>= distinct_per_phase+1).
    block_size:
        The model's ``B``.
    phases:
        Number of phases to emit.
    distinct_per_phase:
        Distinct items per phase (defaults to ``universe_items - 1``,
        mirroring Theorem 8's ``k + 1``-item pool with ``k - 1``
        repetitions).
    seed:
        RNG seed; the generator is fully deterministic given it.
    """
    if universe_items < 2:
        raise ConfigurationError("need at least 2 items")
    if block_size < 1:
        raise ConfigurationError("block size must be >= 1")
    reps = distinct_per_phase if distinct_per_phase else universe_items - 1
    if reps < 1:
        raise ConfigurationError("need at least one repetition per phase")
    length = int(math.floor(f_inverse(reps + 2))) - 2
    if length < reps:
        raise ConfigurationError(
            f"phase length {length} < repetitions {reps}: f has too "
            "little locality for this many distinct items"
        )
    n_blocks = -(-universe_items // block_size)
    mapping = FixedBlockMapping(
        universe=n_blocks * block_size, block_size=block_size
    )
    rng = np.random.default_rng(seed)
    # Spread the pool round-robin over the blocks so sizes differ by at
    # most one — a remainder singleton block would burn a block-open
    # for a single repetition and break the g-budget locally.
    pool = [
        blk * block_size + depth
        for depth in range(block_size)
        for blk in range(n_blocks)
    ][:universe_items]
    # Repetition start offsets (Theorem 8's schedule).
    starts: List[int] = []
    for j in range(1, reps + 1):
        s = int(math.ceil(f_inverse(j + 1))) - 1
        starts.append(max(s, j - 1))
    starts[0] = 0
    for i in range(1, reps):
        starts[i] = max(starts[i], starts[i - 1] + 1)
    accesses: List[int] = []
    for _ in range(phases):
        order = rng.permutation(pool).tolist()
        used_blocks: set = set()
        chosen: List[int] = []
        pos = 0
        for j in range(reps):
            end = starts[j + 1] if j + 1 < reps else length
            if end <= pos:
                continue
            item = _pick(order, chosen, used_blocks, mapping, g, pos)
            chosen.append(item)
            used_blocks.add(mapping.block_of(item))
            accesses.extend([item] * (end - pos))
            pos = end
    return Trace(
        np.asarray(accesses, dtype=np.int64),
        mapping,
        {
            "generator": "phase_trace",
            "phases": phases,
            "seed": seed,
            "phase_length": length,
        },
    )


def _pick(
    order: List[int],
    chosen: List[int],
    used_blocks: set,
    mapping: FixedBlockMapping,
    g: Callable[[float], float],
    pos: int,
) -> int:
    taken = set(chosen)
    budget = max(1.0, math.floor(g(pos + 1)))
    may_open = len(used_blocks) < budget
    # Exhaust already-used blocks before opening a new one: opening
    # early wastes g-budget and lets straddling windows exceed g.
    for item in order:
        if item in taken:
            continue
        if mapping.block_of(item) in used_blocks:
            return item
    if may_open:
        for item in order:
            if item not in taken:
                return item
    # Budget exhausted and every item in used blocks consumed: relax.
    for item in order:
        if item not in taken:
            return item
    raise ConfigurationError("phase exhausted its item pool")

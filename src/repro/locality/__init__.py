"""The extended locality-of-reference model (§2, §7).

* :mod:`repro.locality.functions` — analytic locality families
  (polynomial ``f(n) = c·n^{1/p}``, ``g = f/γ``) with exact inverses.
* :mod:`repro.locality.profile` — empirical ``f(n)``/``g(n)``
  extraction from traces via sliding-window distinct counting.
* :mod:`repro.locality.generator` — non-adaptive phase traces
  consistent with a target (f, g) pair.
"""

from repro.locality.functions import PolynomialLocality, concavity_violations
from repro.locality.profile import LocalityProfile, profile_trace
from repro.locality.generator import phase_trace

__all__ = [
    "PolynomialLocality",
    "concavity_violations",
    "LocalityProfile",
    "profile_trace",
    "phase_trace",
]

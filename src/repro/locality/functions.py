"""Analytic locality families for the extended model.

§7.3 analyzes polynomial locality ``f(n) = c·n^{1/p}`` ("positive
concave functions … the majority of high order terms that would occur
in real traces") with block-level locality ``g = f/γ`` for a spatial
factor ``γ ∈ [1, B]``:

* ``γ = 1`` — no spatial locality (``g = f``);
* ``γ = B`` — maximal (whole blocks accessed together);
* ``γ = B^{1-1/p}`` — the paper's worst-gap point for equal-split
  IBLP.

All functions are exposed with exact inverses so Theorem 8–11 bounds
evaluate without numeric root finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.bounds.locality import LocalityBounds
from repro.errors import ConfigurationError

__all__ = ["PolynomialLocality", "concavity_violations"]


@dataclass(frozen=True)
class PolynomialLocality:
    """``f(n) = c · n^{1/p}``, ``g(n) = max(f(n)/γ, 1)``.

    ``p >= 1`` controls temporal locality (larger = more reuse), ``γ``
    the spatial locality (``f/g`` ratio), ``c`` the scale (``c = 1``
    makes ``f(1) = 1``, the canonical normalization).
    """

    p: float = 2.0
    gamma: float = 1.0
    c: float = 1.0

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ConfigurationError(f"p must be >= 1, got {self.p}")
        if self.gamma < 1:
            raise ConfigurationError(f"gamma must be >= 1, got {self.gamma}")
        if self.c <= 0:
            raise ConfigurationError(f"c must be positive, got {self.c}")

    # -- the functions -------------------------------------------------------
    def f(self, n: float) -> float:
        """Max distinct items in a window of ``n`` accesses."""
        if n < 0:
            raise ConfigurationError(f"window size must be >= 0, got {n}")
        return self.c * n ** (1.0 / self.p)

    def g(self, n: float) -> float:
        """Max distinct blocks in a window of ``n`` accesses (>= 1)."""
        return max(self.f(n) / self.gamma, 1.0) if n > 0 else 0.0

    def f_inverse(self, y: float) -> float:
        """Window size at which ``f`` reaches ``y``."""
        if y < 0:
            raise ConfigurationError(f"target must be >= 0, got {y}")
        return (y / self.c) ** self.p

    def g_inverse(self, y: float) -> float:
        """Window size at which ``g`` reaches ``y``."""
        if y < 0:
            raise ConfigurationError(f"target must be >= 0, got {y}")
        return (y * self.gamma / self.c) ** self.p

    def spatial_ratio(self, n: float) -> float:
        """``f(n)/g(n)`` — the paper's spatial-locality measure."""
        g = self.g(n)
        return self.f(n) / g if g else 0.0

    def to_bounds(self) -> LocalityBounds:
        """Package as a :class:`LocalityBounds` with exact inverses."""
        return LocalityBounds(
            f=self.f,
            g=self.g,
            f_inverse=self.f_inverse,
            g_inverse=self.g_inverse,
        )

    @classmethod
    def worst_gap(cls, p: float, B: float, c: float = 1.0) -> "PolynomialLocality":
        """The §7.3 worst-gap family: ``γ = B^{1-1/p}``."""
        return cls(p=p, gamma=B ** (1.0 - 1.0 / p), c=c)


def concavity_violations(values: Sequence[float]) -> List[int]:
    """Indices where a sampled locality function fails concavity.

    A valid working-set function is increasing and concave; empirical
    profiles (integer-valued maxima) may violate strict concavity by
    rounding — callers decide the tolerance.  Returns indices ``i``
    with ``values[i+1] - values[i] > values[i] - values[i-1]``
    (increasing increments) or ``values[i+1] < values[i]``
    (non-monotone).
    """
    vals = np.asarray(values, dtype=float)
    bad: List[int] = []
    for i in range(1, len(vals) - 1):
        if vals[i + 1] < vals[i] or (vals[i + 1] - vals[i]) > (
            vals[i] - vals[i - 1]
        ) + 1e-9:
            bad.append(i)
    if len(vals) >= 2 and vals[1] < vals[0]:
        bad.insert(0, 0)
    return bad

"""Empirical locality profiling: extract f(n) and g(n) from traces.

``f(n)`` is the maximum number of distinct items over all windows of
``n`` consecutive accesses; ``g(n)`` the same for blocks (§2).  The
profile powers two workflows:

* *prediction* — plug the empirical profile into the Theorem 8–11
  fault-rate bounds and compare against measured miss ratios;
* *characterization* — fit the polynomial family of §7.3 to a real
  workload (``fit_polynomial``) and read off its spatial ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds.locality import LocalityBounds
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.structs.window_counter import max_distinct_per_window

__all__ = ["LocalityProfile", "profile_trace", "default_windows"]


def default_windows(trace_length: int, count: int = 24) -> List[int]:
    """Log-spaced window sizes from 1 to the trace length."""
    if trace_length < 1:
        return [1]
    ws = np.unique(
        np.round(
            np.logspace(0, np.log10(max(trace_length, 2)), num=count)
        ).astype(int)
    )
    return [int(w) for w in ws if w >= 1]


@dataclass
class LocalityProfile:
    """Sampled (n, f(n), g(n)) triples for one trace."""

    windows: np.ndarray  # ascending window sizes
    f_values: np.ndarray  # distinct items per window
    g_values: np.ndarray  # distinct blocks per window
    block_size: int

    def spatial_ratio(self) -> np.ndarray:
        """``f(n)/g(n)`` per sampled window (1 = none, B = maximal)."""
        return self.f_values / np.maximum(self.g_values, 1)

    def f_at(self, n: float) -> float:
        """Monotone piecewise-linear interpolation of ``f``."""
        return float(np.interp(n, self.windows, self.f_values))

    def g_at(self, n: float) -> float:
        """Monotone piecewise-linear interpolation of ``g``."""
        return float(np.interp(n, self.windows, self.g_values))

    def f_inverse(self, y: float) -> float:
        """Smallest sampled-interpolated ``n`` with ``f(n) >= y``."""
        return _monotone_inverse(self.windows, self.f_values, y)

    def g_inverse(self, y: float) -> float:
        """Smallest sampled-interpolated ``n`` with ``g(n) >= y``."""
        return _monotone_inverse(self.windows, self.g_values, y)

    def to_bounds(self) -> LocalityBounds:
        """Adapt to the Theorem 8–11 bound evaluators."""
        return LocalityBounds(
            f=self.f_at,
            g=self.g_at,
            f_inverse=self.f_inverse,
            g_inverse=self.g_inverse,
        )

    def fit_polynomial(self) -> Tuple[float, float, float]:
        """Least-squares fit of §7.3's family; returns ``(c, p, gamma)``.

        Fits ``log f = log c + (1/p) log n`` over the sampled windows
        and ``gamma`` as the median of ``f/g``.
        """
        mask = self.windows >= 1
        logn = np.log(self.windows[mask].astype(float))
        logf = np.log(np.maximum(self.f_values[mask].astype(float), 1.0))
        slope, intercept = np.polyfit(logn, logf, 1)
        slope = min(max(slope, 1e-6), 1.0)
        c = float(np.exp(intercept))
        p = float(1.0 / slope)
        gamma = float(np.median(self.spatial_ratio()))
        return c, p, max(gamma, 1.0)


def _monotone_inverse(xs: np.ndarray, ys: np.ndarray, target: float) -> float:
    if target <= ys[0]:
        return float(xs[0])
    if target > ys[-1]:
        # Extrapolate with the final slope (conservative for concave f).
        if len(xs) >= 2 and ys[-1] > ys[-2]:
            slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
            return float(xs[-1] + (target - ys[-1]) / slope)
        return float(xs[-1])
    idx = int(np.searchsorted(ys, target, side="left"))
    x0, x1 = xs[idx - 1], xs[idx]
    y0, y1 = ys[idx - 1], ys[idx]
    if y1 == y0:
        return float(x0)
    return float(x0 + (target - y0) * (x1 - x0) / (y1 - y0))


def profile_trace(
    trace: Trace, windows: Optional[Sequence[int]] = None
) -> LocalityProfile:
    """Measure f(n) and g(n) for ``trace`` at the given window sizes.

    One O(T) sliding-window pass per window size; default windows are
    log-spaced, which matches how the bounds consume the profile.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot profile an empty trace")
    ws = sorted(set(windows)) if windows else default_windows(len(trace))
    f_map = max_distinct_per_window(trace.items, ws)
    g_map = max_distinct_per_window(trace.block_trace(), ws)
    arr_w = np.asarray(ws, dtype=np.int64)
    # Enforce monotonicity (max over windows is non-decreasing in n;
    # sampling preserves that, but guard against degenerate inputs).
    f_vals = np.maximum.accumulate(np.asarray([f_map[w] for w in ws]))
    g_vals = np.maximum.accumulate(np.asarray([g_map[w] for w in ws]))
    return LocalityProfile(
        windows=arr_w,
        f_values=f_vals,
        g_values=g_vals,
        block_size=trace.block_size,
    )

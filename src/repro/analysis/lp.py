"""Numeric solutions of the §5.2 linear programs (Theorems 5–7).

The paper derives IBLP's upper bound by bounding how many hits an
optimal cache can collect inside a unit window against adversarial
traces, via a rectangle (time x space) accounting:

* ``r`` — fraction of accesses hit through *temporal* locality; each
  such hit pins ``i`` units of cache space (the item survived ``i``
  distinct intervening items in the item layer's LRU list).
* ``s``, ``t`` — fraction of accesses that are misses loading ``t``
  items for *spatial* locality; the ``j``-th extra item must survive
  ``j·(b/B + 1)`` further accesses (the triangle of Figure 5), so one
  such miss costs ``U(t) = Σ_{j=0}^{t-1} (1 + j(b/B + 1))`` space and
  yields ``t - 1`` hits.

Constraints: space ``r·i + s·U(t) <= h`` and accesses ``r + s·t <= 1``.
The authors solved the combined program symbolically (Mathematica);
here we solve it numerically — for each integer ``t`` the program is
linear in ``(r, s)`` and :func:`scipy.optimize.linprog` handles it —
and the test suite asserts the numeric optimum matches the closed
forms of Theorems 5, 6 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.errors import ConfigurationError, SolverError

__all__ = ["LPSolution", "thm5_numeric", "thm6_numeric", "thm7_numeric", "space_cost"]


def space_cost(t: float, b: float, B: float) -> float:
    """``U(t)``: cache-space charged to a miss that loads ``t`` items.

    ``U(t) = Σ_{j=0}^{t-1} (1 + j (b/B + 1))
           = t + (b/B + 1) t (t - 1) / 2``.
    """
    if t < 1:
        raise ConfigurationError(f"t must be >= 1, got {t}")
    return t + (b / B + 1.0) * t * (t - 1.0) / 2.0


@dataclass(frozen=True)
class LPSolution:
    """Optimal hit allocation and the implied competitive ratio."""

    ratio: float
    r: float
    s: float
    t: float

    @property
    def hits(self) -> float:
        return self.r + self.s * (self.t - 1.0)


def _solve_fixed_t(
    i: float, b: float, h: float, B: float, t: float
) -> Optional[LPSolution]:
    """Maximize ``r + s(t-1)`` subject to the two §5.2 constraints."""
    # linprog minimizes, so negate the objective.
    c = np.array([-1.0, -(t - 1.0)])
    a_ub = np.array(
        [
            [i, space_cost(t, b, B)],  # space
            [1.0, t],  # accesses
        ]
    )
    b_ub = np.array([float(h), 1.0])
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None), (0, None)])
    if not res.success:  # pragma: no cover - linprog is robust here
        raise SolverError(f"linprog failed at t={t}: {res.message}")
    r, s = float(res.x[0]), float(res.x[1])
    hits = r + s * (t - 1.0)
    if hits >= 1.0:
        return LPSolution(ratio=math.inf, r=r, s=s, t=t)
    return LPSolution(ratio=1.0 / (1.0 - hits), r=r, s=s, t=t)


def thm7_numeric(
    i: float, b: float, h: float, B: float, t_samples: int = 512
) -> LPSolution:
    """Numeric optimum of the combined LP over ``t ∈ [1, B]``.

    ``t`` is scanned on a dense grid (the objective is smooth in
    ``t``), keeping the best solution.  The result upper-bounds IBLP's
    competitive ratio for layer sizes ``(i, b)`` against OPT size
    ``h`` and must match Theorem 7's closed form.
    """
    if B < 1:
        raise ConfigurationError(f"B must be >= 1, got {B}")
    best: Optional[LPSolution] = None
    ts = np.unique(
        np.concatenate(
            [
                np.linspace(1.0, float(B), num=min(t_samples, 4096)),
                np.arange(1.0, float(B) + 1.0),
            ]
        )
    )
    for t in ts:
        sol = _solve_fixed_t(i, b, h, B, float(t))
        if sol is not None and (best is None or sol.ratio > best.ratio):
            best = sol
    assert best is not None
    return best


def thm5_numeric(i: float, h: float) -> LPSolution:
    """Temporal-only program: spatial hits disabled (``s = 0``).

    Matches Theorem 5's ``i/(i-h)``.
    """
    # With s = 0 the program is max r s.t. r·i <= h, r <= 1.
    r = min(1.0, h / i)
    if r >= 1.0:
        return LPSolution(ratio=math.inf, r=r, s=0.0, t=1.0)
    return LPSolution(ratio=1.0 / (1.0 - r), r=r, s=0.0, t=1.0)


def thm6_numeric(b: float, h: float, B: float, t_samples: int = 512) -> LPSolution:
    """Spatial-only program: temporal hits disabled (``r = 0``).

    Matches Theorem 6's ``min(B, (b + 2Bh - B)/(b + B))``.  The item
    layer size enters only through ``r``; pinning ``r = 0`` is
    equivalent to ``i → ∞``.
    """
    best: Optional[LPSolution] = None
    ts = np.unique(
        np.concatenate(
            [
                np.linspace(1.0, float(B), num=min(t_samples, 4096)),
                np.arange(1.0, float(B) + 1.0),
            ]
        )
    )
    for t in ts:
        if t <= 1.0:
            sol = LPSolution(ratio=1.0, r=0.0, s=min(1.0 / t, h / space_cost(t, b, B)), t=t)
        else:
            s = min(1.0 / t, h / space_cost(t, b, B))
            hits = s * (t - 1.0)
            ratio = math.inf if hits >= 1.0 else 1.0 / (1.0 - hits)
            sol = LPSolution(ratio=ratio, r=0.0, s=s, t=t)
        if best is None or sol.ratio > best.ratio:
            best = sol
    assert best is not None
    return best

"""Parameter sweeps with optional process parallelism and batching.

Experiments and benches sweep (policy, capacity, workload) grids; each
cell is an independent simulation, so the sweep is embarrassingly
parallel.  ``parallel=True`` fans cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` — the worker function
and its arguments must be picklable (module-level functions, plain
data).  Results always come back in grid order regardless of
completion order, so parallel and serial runs are bit-identical.

Two transparent accelerations sit on top (both pure optimizations —
rows are bit-identical with them on or off):

* **Multi-capacity batching** (``batch="auto"``, the default): when a
  group of :func:`simulate_cell` cells differs only in ``capacity``
  over a stack policy (Item-LRU, Block-LRU), the whole group collapses
  into one :func:`repro.core.fast.multi_capacity_replay` pass — one
  O(T log T) stack-distance computation instead of one replay per
  capacity.  The collapse is conservative: any extra cell key, a
  non-stack policy, ``fast=False``, ``timing=True``, or an unsupported
  trace/capacity combination silently falls back to per-cell replay
  (see ``docs/fastpath.md``).  ``batch="never"`` disables it.
* **Multi-policy batching** (also ``batch="auto"``): cells the Mattson
  collapse leaves behind that are still plain fast-path cells over
  kernel-covered policies collapse per trace into one
  :func:`repro.core.fast.multi_policy_replay` traversal — the whole
  policy axis of an ablation matrix costs one pass over the compiled
  trace instead of one replay per policy.  The same conservative
  gating applies; ineligible cells replay per-cell as before.
* **Shared-memory trace arenas**: a parallel sweep publishes each
  distinct trace once via :mod:`repro.core.arena` and ships workers a
  small handle instead of pickling the trace per cell; workers attach
  zero-copy and cache the attachment.  Falls back to pickling when
  shared memory is unavailable (or ``REPRO_NO_SHM=1``).

Telemetry integration: with ``timing=True`` every row gains a
``cell_seconds`` wall-clock column (measured inside the worker, so it
is the cell's own cost, not queueing time).  A worker may also leave a
:class:`repro.telemetry.Recorder` as a row value; it is flattened
in-worker into ``<key>_*`` scalar summary columns (and stays
picklable), so per-cell windowed/timing telemetry rides along grid
rows without every experiment hand-rolling the plumbing.

Timing guarantee: ``cell_seconds`` brackets *exactly* the
``fn(**cell)`` call — arena attachment, row post-processing (copying
the mapping, flattening recorders, which runs ``Recorder.finalize``
and therefore flushes/closes sinks) happen outside the timed region,
so the column is the cell body's cost and nothing else.

Error context: in a parallel sweep a worker exception is re-raised in
the parent as :class:`repro.errors.SweepCellError` naming the failing
cell's kwargs.  With ``chunksize=1`` (the default) the original
exception rides along as ``__cause__``; with larger chunks only its
type and message survive (chunk results cross the process boundary as
plain data, never pickled exceptions).  A serial sweep raises in the
caller's own stack, which already shows the cell.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SweepCellError

__all__ = ["grid", "simulate_cell", "sweep", "default_workers"]

#: Cell keys a multi-capacity collapse may see; anything else (e.g. a
#: policy kwarg like ``item_layer_size``) forces per-cell replay.
_BATCHABLE_KEYS = frozenset({"policy", "capacity", "trace", "fast"})


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(k=[1, 2], policy=["lru"])
    [{'k': 1, 'policy': 'lru'}, {'k': 2, 'policy': 'lru'}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    combos = itertools.product(*(axes[n] for n in names))
    return [dict(zip(names, combo)) for combo in combos]


def default_workers() -> int:
    """Worker-count default: ``REPRO_JOBS`` if set, else ``os.cpu_count()``.

    ``REPRO_JOBS`` is the documented override for every parallel entry
    point (``sweep``, ``campaign run``, the CLI's ``--jobs`` flag sets
    it); it must be an integer >= 1.
    """
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_JOBS must be an integer >= 1, got {env!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(f"REPRO_JOBS must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


def simulate_cell(
    policy: str,
    capacity: int,
    trace,
    fast: bool = True,
    **policy_kwargs,
) -> Dict[str, Any]:
    """Picklable sweep worker: replay one (policy, capacity, trace) cell.

    Builds the policy by registry name and replays through
    ``simulate(..., fast=fast)``, so sweeps ride the replay kernels of
    :mod:`repro.core.fast` wherever one covers the policy and fall back
    to the referee elsewhere — serial, parallel, fast, and referee runs
    are all bit-identical (``tests/test_analysis.py`` pins this).
    Returns ``SimResult.as_row()``; :func:`sweep` merges the cell
    parameters in.
    """
    # Imported lazily to keep sweep importable without the simulator
    # stack (and to keep worker pickles small).
    from repro.core.engine import simulate
    from repro.policies import make_policy

    instance = make_policy(policy, capacity, trace.mapping, **policy_kwargs)
    return simulate(instance, trace, fast=fast).as_row()


def _flatten_recorders(row: Dict[str, Any]) -> Dict[str, Any]:
    # Imported lazily: telemetry is optional on this path and
    # analysis <-> telemetry must not import each other at module level.
    from repro.telemetry.recorder import Recorder

    for key in [k for k, v in row.items() if isinstance(v, Recorder)]:
        recorder: Recorder = row.pop(key)
        recorder.finalize()
        row.update(recorder.summary(prefix=f"{key}_"))
    return row


def _is_arena_handle(value: Any) -> bool:
    # Duck-typed so workers that never see a handle never import arena.
    cls = type(value)
    return cls.__name__ == "ArenaHandle" and cls.__module__ == "repro.core.arena"


def _resolve_cell(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Attach any arena handles in a cell (worker side, untimed)."""
    resolved: Optional[Dict[str, Any]] = None
    for key, value in kwargs.items():
        if _is_arena_handle(value):
            from repro.core import arena

            if resolved is None:
                resolved = dict(kwargs)
            resolved[key] = arena.attach(value)
    return resolved if resolved is not None else kwargs


def _call(
    fn: Callable[..., Mapping[str, Any]],
    kwargs: Dict[str, Any],
    timing: bool = False,
):
    resolved = _resolve_cell(kwargs)
    # The timed region is the cell body alone; see the module
    # docstring's timing guarantee.
    t0 = time.perf_counter()
    raw = fn(**resolved)
    elapsed = time.perf_counter() - t0
    out = dict(raw)
    _flatten_recorders(out)
    if timing:
        out.setdefault("cell_seconds", elapsed)
    # Echo the cell's parameters so rows are self-describing.  The echo
    # uses the *unresolved* cell: an arena handle echoes as the handle
    # (cheap to pickle back) and the parent swaps the original trace in.
    for key, value in kwargs.items():
        out.setdefault(key, value)
    return out


def _call_chunk(
    fn: Callable[..., Mapping[str, Any]],
    chunk: List[Dict[str, Any]],
    timing: bool = False,
) -> List[Tuple[bool, Any]]:
    """Run a slice of cells in one worker round-trip.

    Returns ``(True, row)`` per success; on the first failure appends
    ``(False, (pos, "ExcType: message"))`` and stops (the parent raises
    at the first failure in order, so later cells of a failed chunk
    would be discarded anyway).  Failures travel as plain strings —
    never pickled exception objects, which may not survive the trip.
    """
    out: List[Tuple[bool, Any]] = []
    for pos, kwargs in enumerate(chunk):
        try:
            out.append((True, _call(fn, kwargs, timing)))
        except Exception as exc:
            out.append((False, (pos, f"{type(exc).__name__}: {exc}")))
            break
    return out


def _plan_batches(
    cell_list: List[Dict[str, Any]],
) -> List[Tuple[List[int], str, Any, List[int]]]:
    """Group collapsible :func:`simulate_cell` cells by (policy, trace).

    A group qualifies when every member is a plain fast-path cell over
    the same trace object and a batchable stack policy, varying only in
    capacity, and :func:`repro.core.fast.multi_capacity_supported`
    accepts the combination.  Groups of fewer than two cells are left
    to per-cell replay (no win to be had).
    """
    from repro.core.fast import MULTI_CAPACITY_POLICIES, multi_capacity_supported
    from repro.core.trace import Trace

    groups: Dict[Tuple[str, int], List[int]] = {}
    traces: Dict[int, Any] = {}
    for i, cell in enumerate(cell_list):
        if not _BATCHABLE_KEYS.issuperset(cell):
            continue
        policy = cell.get("policy")
        capacity = cell.get("capacity")
        trace = cell.get("trace")
        if cell.get("fast", True) is not True:
            continue
        if policy not in MULTI_CAPACITY_POLICIES:
            continue
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            continue
        if capacity < 1 or not isinstance(trace, Trace):
            continue
        key = (policy, id(trace))
        groups.setdefault(key, []).append(i)
        traces[id(trace)] = trace
    plans = []
    for (policy, trace_id), indices in groups.items():
        if len(indices) < 2:
            continue
        trace = traces[trace_id]
        caps = sorted({int(cell_list[i]["capacity"]) for i in indices})
        if not multi_capacity_supported(policy, trace, caps):
            continue
        plans.append((indices, policy, trace, caps))
    return plans


def _publish_traces(
    cells: List[Dict[str, Any]],
) -> Tuple[List[Any], List[Dict[str, Any]]]:
    """Publish each distinct trace once; rewrite cells to carry handles.

    Returns ``(arenas, submit_cells)``.  Traces that fail to publish
    (shared memory off, exotic mapping) stay in the cell and travel by
    pickle — the sweep still works, just without the zero-copy win.
    """
    from repro.core import arena
    from repro.core.trace import Trace

    if not arena.shared_memory_available():
        return [], cells
    arenas: List[Any] = []
    published: Dict[int, Any] = {}  # id(trace) -> handle | None
    submit: List[Dict[str, Any]] = []
    for cell in cells:
        rewritten: Optional[Dict[str, Any]] = None
        for key, value in cell.items():
            if not isinstance(value, Trace):
                continue
            if id(value) not in published:
                published_arena = arena.publish(value)
                if published_arena is None:
                    published[id(value)] = None
                else:
                    arenas.append(published_arena)
                    published[id(value)] = published_arena.handle
            handle = published[id(value)]
            if handle is not None:
                if rewritten is None:
                    rewritten = dict(cell)
                rewritten[key] = handle
        submit.append(rewritten if rewritten is not None else cell)
    return arenas, submit


def _restore_row(row: Dict[str, Any], original: Dict[str, Any]) -> Dict[str, Any]:
    # Workers echo the arena handle (cheap to pickle back); swap the
    # original trace object in so rows match a serial sweep exactly.
    for key, value in original.items():
        if _is_arena_handle(row.get(key)):
            row[key] = value
    return row


def _run_batches(
    cell_list: List[Dict[str, Any]],
    rows: List[Optional[Dict[str, Any]]],
) -> None:
    """Fill ``rows`` for every collapsible cell via batched replay."""
    from repro.core.fast import multi_capacity_replay
    from repro.telemetry import spans

    for indices, policy, trace, caps in _plan_batches(cell_list):
        with spans.span(
            "sweep.batch", policy=policy, cells=len(indices), capacities=len(caps)
        ):
            results = multi_capacity_replay(policy, trace, caps)
        for i in indices:
            cell = cell_list[i]
            row = results[int(cell["capacity"])].as_row()
            for key, value in cell.items():
                row.setdefault(key, value)
            rows[i] = row


def _run_policy_batches(
    cell_list: List[Dict[str, Any]],
    rows: List[Optional[Dict[str, Any]]],
) -> None:
    """Collapse remaining pure policy/capacity cells per trace.

    After the Mattson collapse, any unfilled :func:`simulate_cell`
    cells that are plain fast-path cells over a kernel-covered policy
    are grouped by trace object and advanced together by one
    :func:`repro.core.fast.multi_policy_replay` traversal — the
    compile/decode work is shared across the whole policy axis.  A
    single-cell group is left alone (``fast_simulate`` already covers
    it at the same cost), and any :class:`ConfigurationError` from the
    batched engine silently defers to per-cell replay.
    """
    from repro.core.fast import FAST_POLICY_NAMES, multi_policy_replay
    from repro.core.trace import Trace
    from repro.telemetry import spans

    groups: Dict[int, List[int]] = {}
    traces: Dict[int, Any] = {}
    for i, cell in enumerate(cell_list):
        if rows[i] is not None or not _BATCHABLE_KEYS.issuperset(cell):
            continue
        policy = cell.get("policy")
        capacity = cell.get("capacity")
        trace = cell.get("trace")
        if cell.get("fast", True) is not True:
            continue
        if policy not in FAST_POLICY_NAMES:
            continue
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            continue
        if capacity < 1 or not isinstance(trace, Trace):
            continue
        groups.setdefault(id(trace), []).append(i)
        traces[id(trace)] = trace
    for trace_id, indices in groups.items():
        if len(indices) < 2:
            continue
        trace = traces[trace_id]
        batch_cells = [
            (cell_list[i]["policy"], int(cell_list[i]["capacity"]))
            for i in indices
        ]
        with spans.span("sweep.policy_batch", cells=len(indices)):
            try:
                results = multi_policy_replay(batch_cells, trace)
            except ConfigurationError:
                continue
        for i, result in zip(indices, results):
            row = result.as_row()
            for key, value in cell_list[i].items():
                row.setdefault(key, value)
            rows[i] = row


def sweep(
    fn: Callable[..., Mapping[str, Any]],
    cells: Iterable[Dict[str, Any]],
    parallel: bool = False,
    max_workers: int | None = None,
    timing: bool = False,
    chunksize: int = 1,
    batch: str = "auto",
) -> List[Dict[str, Any]]:
    """Evaluate ``fn(**cell)`` for every cell; return rows in order.

    Parameters
    ----------
    fn:
        Worker returning a mapping of result fields; cell parameters
        are merged into the row (worker values win on collision).  A
        :class:`repro.telemetry.Recorder` row value is flattened into
        ``<key>_*`` summary columns.
    cells:
        Typically the output of :func:`grid`.
    parallel:
        Use processes.  Keep workers pure: no shared mutable state.
        Traces in cells are shipped through shared-memory arenas when
        available (pickle fallback otherwise).
    max_workers:
        Defaults to :func:`default_workers` (``REPRO_JOBS`` env
        override, else ``os.cpu_count()``).
    timing:
        Attach each cell's in-worker wall-clock seconds as a
        ``cell_seconds`` column (worker-provided values win).  Timing
        disables multi-capacity batching — a collapsed group has no
        per-cell wall clock to report.
    chunksize:
        Cells per worker round-trip.  The default 1 submits each cell
        as its own future (and preserves the failing exception as
        ``SweepCellError.__cause__``); larger chunks amortize dispatch
        overhead for big grids of cheap cells at the cost of reduced
        error fidelity (type name + message only) and coarser
        load-balancing.
    batch:
        ``"auto"`` collapses pure capacity sweeps over stack policies
        into one multi-capacity replay and the remaining pure
        policy/capacity cells into one multi-policy traversal per
        trace (bit-identical rows, see module docstring); ``"never"``
        forces per-cell replay.
    """
    cell_list = list(cells)
    if not cell_list:
        return []
    if batch not in ("auto", "never"):
        raise ConfigurationError(f"batch must be 'auto' or 'never', got {batch!r}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    rows: List[Optional[Dict[str, Any]]] = [None] * len(cell_list)
    # The collapse runs in-parent even for parallel sweeps: one batched
    # replay is cheaper than shipping its cells anywhere.
    if batch == "auto" and not timing and fn is simulate_cell:
        _run_batches(cell_list, rows)
        _run_policy_batches(cell_list, rows)
    pending = [i for i in range(len(cell_list)) if rows[i] is None]
    if not pending:
        return rows  # type: ignore[return-value]
    if not parallel:
        for i in pending:
            rows[i] = _call(fn, cell_list[i], timing)
        return rows  # type: ignore[return-value]
    workers = max_workers or default_workers()
    if workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {workers}")
    arenas, submit_cells = _publish_traces([cell_list[i] for i in pending])
    submit_by_idx = dict(zip(pending, submit_cells))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if chunksize == 1:
                futures = [
                    (i, pool.submit(_call, fn, submit_by_idx[i], timing))
                    for i in pending
                ]
                for i, future in futures:
                    try:
                        row = future.result()
                    except Exception as exc:
                        raise SweepCellError(
                            f"sweep cell {cell_list[i]!r} failed: "
                            f"{type(exc).__name__}: {exc}",
                            cell=cell_list[i],
                        ) from exc
                    rows[i] = _restore_row(row, cell_list[i])
            else:
                chunks = [
                    pending[j : j + chunksize]
                    for j in range(0, len(pending), chunksize)
                ]
                chunk_futures = [
                    (
                        chunk,
                        pool.submit(
                            _call_chunk,
                            fn,
                            [submit_by_idx[i] for i in chunk],
                            timing,
                        ),
                    )
                    for chunk in chunks
                ]
                for chunk, future in chunk_futures:
                    try:
                        entries = future.result()
                    except Exception as exc:
                        cell = cell_list[chunk[0]]
                        raise SweepCellError(
                            f"sweep chunk starting at cell {cell!r} failed: "
                            f"{type(exc).__name__}: {exc}",
                            cell=cell,
                        ) from exc
                    for i, (ok, payload) in zip(chunk, entries):
                        if not ok:
                            pos, msg = payload
                            cell = cell_list[chunk[pos]]
                            raise SweepCellError(
                                f"sweep cell {cell!r} failed: {msg}", cell=cell
                            )
                        rows[i] = _restore_row(payload, cell_list[i])
    finally:
        for published in arenas:
            published.close()
    return rows  # type: ignore[return-value]

"""Parameter sweeps with optional process parallelism.

Experiments and benches sweep (policy, capacity, workload) grids; each
cell is an independent simulation, so the sweep is embarrassingly
parallel.  ``parallel=True`` fans cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` — the worker function
and its arguments must be picklable (module-level functions, plain
data).  Results always come back in grid order regardless of
completion order, so parallel and serial runs are bit-identical.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["grid", "sweep"]


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(k=[1, 2], policy=["lru"])
    [{'k': 1, 'policy': 'lru'}, {'k': 2, 'policy': 'lru'}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    combos = itertools.product(*(axes[n] for n in names))
    return [dict(zip(names, combo)) for combo in combos]


def _call(fn: Callable[..., Mapping[str, Any]], kwargs: Dict[str, Any]):
    out = dict(fn(**kwargs))
    # Echo the cell's parameters so rows are self-describing.
    for key, value in kwargs.items():
        out.setdefault(key, value)
    return out


def sweep(
    fn: Callable[..., Mapping[str, Any]],
    cells: Iterable[Dict[str, Any]],
    parallel: bool = False,
    max_workers: int | None = None,
) -> List[Dict[str, Any]]:
    """Evaluate ``fn(**cell)`` for every cell; return rows in order.

    Parameters
    ----------
    fn:
        Worker returning a mapping of result fields; cell parameters
        are merged into the row (worker values win on collision).
    cells:
        Typically the output of :func:`grid`.
    parallel:
        Use processes.  Keep workers pure: no shared mutable state.
    max_workers:
        Defaults to ``os.cpu_count() - 1`` (min 1).
    """
    cell_list = list(cells)
    if not cell_list:
        return []
    if not parallel:
        return [_call(fn, c) for c in cell_list]
    workers = max_workers or max(1, (os.cpu_count() or 2) - 1)
    if workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {workers}")
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_call, fn, c) for c in cell_list]
        return [f.result() for f in futures]

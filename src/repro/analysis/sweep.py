"""Parameter sweeps with optional process parallelism.

Experiments and benches sweep (policy, capacity, workload) grids; each
cell is an independent simulation, so the sweep is embarrassingly
parallel.  ``parallel=True`` fans cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` — the worker function
and its arguments must be picklable (module-level functions, plain
data).  Results always come back in grid order regardless of
completion order, so parallel and serial runs are bit-identical.

Telemetry integration: with ``timing=True`` every row gains a
``cell_seconds`` wall-clock column (measured inside the worker, so it
is the cell's own cost, not queueing time).  A worker may also leave a
:class:`repro.telemetry.Recorder` as a row value; it is flattened
in-worker into ``<key>_*`` scalar summary columns (and stays
picklable), so per-cell windowed/timing telemetry rides along grid
rows without every experiment hand-rolling the plumbing.

Timing guarantee: ``cell_seconds`` brackets *exactly* the
``fn(**cell)`` call — row post-processing (copying the mapping,
flattening recorders, which runs ``Recorder.finalize`` and therefore
flushes/closes sinks) happens outside the timed region, so the column
is the cell body's cost and nothing else.

Error context: in a parallel sweep a worker exception is re-raised in
the parent as :class:`repro.errors.SweepCellError` naming the failing
cell's kwargs (the original exception rides along as ``__cause__``);
a serial sweep raises in the caller's own stack, which already shows
the cell.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from repro.errors import ConfigurationError, SweepCellError

__all__ = ["grid", "simulate_cell", "sweep"]


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(k=[1, 2], policy=["lru"])
    [{'k': 1, 'policy': 'lru'}, {'k': 2, 'policy': 'lru'}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    combos = itertools.product(*(axes[n] for n in names))
    return [dict(zip(names, combo)) for combo in combos]


def simulate_cell(
    policy: str,
    capacity: int,
    trace,
    fast: bool = True,
    **policy_kwargs,
) -> Dict[str, Any]:
    """Picklable sweep worker: replay one (policy, capacity, trace) cell.

    Builds the policy by registry name and replays through
    ``simulate(..., fast=fast)``, so sweeps ride the replay kernels of
    :mod:`repro.core.fast` wherever one covers the policy and fall back
    to the referee elsewhere — serial, parallel, fast, and referee runs
    are all bit-identical (``tests/test_analysis.py`` pins this).
    Returns ``SimResult.as_row()``; :func:`sweep` merges the cell
    parameters in.
    """
    # Imported lazily to keep sweep importable without the simulator
    # stack (and to keep worker pickles small).
    from repro.core.engine import simulate
    from repro.policies import make_policy

    instance = make_policy(policy, capacity, trace.mapping, **policy_kwargs)
    return simulate(instance, trace, fast=fast).as_row()


def _flatten_recorders(row: Dict[str, Any]) -> Dict[str, Any]:
    # Imported lazily: telemetry is optional on this path and
    # analysis <-> telemetry must not import each other at module level.
    from repro.telemetry.recorder import Recorder

    for key in [k for k, v in row.items() if isinstance(v, Recorder)]:
        recorder: Recorder = row.pop(key)
        recorder.finalize()
        row.update(recorder.summary(prefix=f"{key}_"))
    return row


def _call(
    fn: Callable[..., Mapping[str, Any]],
    kwargs: Dict[str, Any],
    timing: bool = False,
):
    # The timed region is the cell body alone; see the module
    # docstring's timing guarantee.
    t0 = time.perf_counter()
    raw = fn(**kwargs)
    elapsed = time.perf_counter() - t0
    out = dict(raw)
    _flatten_recorders(out)
    if timing:
        out.setdefault("cell_seconds", elapsed)
    # Echo the cell's parameters so rows are self-describing.
    for key, value in kwargs.items():
        out.setdefault(key, value)
    return out


def sweep(
    fn: Callable[..., Mapping[str, Any]],
    cells: Iterable[Dict[str, Any]],
    parallel: bool = False,
    max_workers: int | None = None,
    timing: bool = False,
) -> List[Dict[str, Any]]:
    """Evaluate ``fn(**cell)`` for every cell; return rows in order.

    Parameters
    ----------
    fn:
        Worker returning a mapping of result fields; cell parameters
        are merged into the row (worker values win on collision).  A
        :class:`repro.telemetry.Recorder` row value is flattened into
        ``<key>_*`` summary columns.
    cells:
        Typically the output of :func:`grid`.
    parallel:
        Use processes.  Keep workers pure: no shared mutable state.
    max_workers:
        Defaults to ``os.cpu_count() - 1`` (min 1).
    timing:
        Attach each cell's in-worker wall-clock seconds as a
        ``cell_seconds`` column (worker-provided values win).
    """
    cell_list = list(cells)
    if not cell_list:
        return []
    if not parallel:
        return [_call(fn, c, timing) for c in cell_list]
    workers = max_workers or max(1, (os.cpu_count() or 2) - 1)
    if workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {workers}")
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_call, fn, c, timing) for c in cell_list]
        rows = []
        for cell, future in zip(cell_list, futures):
            try:
                rows.append(future.result())
            except Exception as exc:
                raise SweepCellError(
                    f"sweep cell {cell!r} failed: "
                    f"{type(exc).__name__}: {exc}",
                    cell=cell,
                ) from exc
        return rows

"""Multi-seed statistics for randomized policies (§6 support).

GCM is randomized, so single-run comparisons are noisy; this module
runs a seeded family of instances and summarizes with mean and a
normal-approximation confidence interval.  Used by the §6 experiments
to make statements like "GCM's expected cost on the whole-block walk is
B× below block-oblivious marking" statistically honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.engine import simulate
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.base import Policy

__all__ = ["SeedSummary", "seed_sweep", "compare_randomized"]


@dataclass(frozen=True)
class SeedSummary:
    """Mean/CI summary of a per-seed metric."""

    label: str
    n: int
    mean: float
    std: float
    ci_half_width: float  # 95% normal approximation

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def as_row(self) -> Dict:
        return {
            "label": self.label,
            "n_seeds": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def _summarize(label: str, values: Sequence[float]) -> SeedSummary:
    n = len(values)
    if n < 1:
        raise ConfigurationError("need at least one seed")
    mean = sum(values) / n
    if n == 1:
        return SeedSummary(label=label, n=1, mean=mean, std=0.0, ci_half_width=0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    half = 1.96 * std / math.sqrt(n)
    return SeedSummary(label=label, n=n, mean=mean, std=std, ci_half_width=half)


def seed_sweep(
    policy_factory: Callable[[int], Policy],
    trace: Trace,
    seeds: Sequence[int],
    metric: str = "misses",
    label: str = "policy",
) -> SeedSummary:
    """Run ``policy_factory(seed)`` over ``trace`` per seed; summarize.

    ``metric`` is any :class:`~repro.types.SimResult` attribute
    (``misses``, ``miss_ratio``, ``spatial_hits``, ...).
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    values: List[float] = []
    for seed in seeds:
        result = simulate(policy_factory(seed), trace)
        values.append(float(getattr(result, metric)))
    return _summarize(label, values)


def compare_randomized(
    factories: Dict[str, Callable[[int], Policy]],
    trace: Trace,
    seeds: Sequence[int],
    metric: str = "misses",
) -> List[Dict]:
    """Per-policy seed summaries over a shared trace, as table rows."""
    return [
        seed_sweep(factory, trace, seeds, metric=metric, label=name).as_row()
        for name, factory in factories.items()
    ]

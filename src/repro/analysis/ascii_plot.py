"""Terminal line plots for the figure-reproduction benches.

The paper's Figures 3 and 6 are log-log competitive-ratio curves; the
benches render them as ASCII so the reproduction is inspectable in CI
logs without a plotting dependency.  Series are drawn with distinct
glyphs; overlapping points show the later series.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["line_plot"]

_GLYPHS = "ox+*#@%&"


def _transform(v: float, log: bool) -> float:
    return math.log10(v) if log else v


def line_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 78,
    height: int = 22,
    logx: bool = True,
    logy: bool = True,
    title: Optional[str] = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series on a character grid.

    Non-finite and non-positive values (under log scaling) are
    skipped.  Returns the multi-line string; callers print it.
    """
    pts = []
    for name, (xs, ys) in series.items():
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if (logx and x <= 0) or (logy and y <= 0):
                continue
            pts.append((name, _transform(x, logx), _transform(y, logy)))
    if not pts:
        return "(no finite data to plot)"
    xmin = min(p[1] for p in pts)
    xmax = max(p[1] for p in pts)
    ymin = min(p[2] for p in pts)
    ymax = max(p[2] for p in pts)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]
    glyph_of = {
        name: _GLYPHS[i % len(_GLYPHS)] for i, name in enumerate(series)
    }
    for name, tx, ty in pts:
        col = int((tx - xmin) / (xmax - xmin) * (width - 1))
        row = height - 1 - int((ty - ymin) / (ymax - ymin) * (height - 1))
        grid[row][col] = glyph_of[name]
    lines = []
    if title:
        lines.append(title)
    y_hi = f"{10**ymax:.3g}" if logy else f"{ymax:.3g}"
    y_lo = f"{10**ymin:.3g}" if logy else f"{ymin:.3g}"
    margin = max(len(y_hi), len(y_lo)) + 1
    for i, row in enumerate(grid):
        label = y_hi if i == 0 else (y_lo if i == height - 1 else "")
        lines.append(label.rjust(margin) + "|" + "".join(row))
    x_lo = f"{10**xmin:.3g}" if logx else f"{xmin:.3g}"
    x_hi = f"{10**xmax:.3g}" if logx else f"{xmax:.3g}"
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    lines.append(
        " " * margin
        + x_lo
        + " " * max(1, width - len(x_lo) - len(x_hi))
        + x_hi
    )
    legend = "  ".join(f"{glyph_of[n]}={n}" for n in series)
    lines.append(f"{ylabel} vs {xlabel}   {legend}")
    return "\n".join(lines)

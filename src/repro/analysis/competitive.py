"""Empirical competitive-ratio measurement.

Two complementary estimators:

* :func:`measure_adversarial` — run a §4 adversary against a policy
  and report the online/claimed-OPT ratio, optionally tightening the
  OPT side with the clairvoyant bracket
  (:func:`repro.offline.heuristics.gc_opt_upper` /
  :func:`repro.offline.lower_bounds.gc_opt_lower`) on the *full*
  generated trace.
* :func:`ratio_on_trace` — for an arbitrary trace, the policy's misses
  divided by the OPT bracket at a chosen offline size ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.adversary.base import Adversary, AdversaryRun
from repro.core.engine import simulate
from repro.core.trace import Trace
from repro.offline.heuristics import gc_opt_upper
from repro.offline.lower_bounds import gc_opt_lower
from repro.policies.base import Policy

__all__ = ["CompetitiveMeasurement", "measure_adversarial", "ratio_on_trace"]


@dataclass
class CompetitiveMeasurement:
    """An empirical ratio with its certification details.

    ``ratio_vs_claimed`` uses the adversary's prescribed OPT cost
    (valid lower bound on the true ratio for the steady-state part);
    ``ratio_vs_bracket`` divides *total* online misses by the
    clairvoyant upper bound on OPT for the *whole* trace including
    warm-up (a second certified lower bound on the ratio, usually
    slightly looser because warm-up misses hit both sides).
    """

    run: AdversaryRun
    opt_upper: Optional[int] = None
    opt_lower: Optional[int] = None

    @property
    def ratio_vs_claimed(self) -> float:
        return self.run.empirical_ratio

    @property
    def ratio_vs_bracket(self) -> Optional[float]:
        if not self.opt_upper:
            return None
        total_online = self.run.online_misses + self.run.warmup_misses
        return total_online / self.opt_upper

    def as_row(self) -> dict:
        row = {
            "policy": self.run.policy_name,
            "k": self.run.k,
            "h": self.run.h,
            "B": self.run.B,
            "cycles": self.run.cycles,
            "online_misses": self.run.online_misses,
            "claimed_opt": self.run.claimed_opt_misses,
            "ratio_vs_claimed": self.ratio_vs_claimed,
        }
        if self.opt_upper is not None:
            row["opt_upper"] = self.opt_upper
            row["opt_lower"] = self.opt_lower
            row["ratio_vs_bracket"] = self.ratio_vs_bracket
        row.update(self.run.notes)
        return row


def measure_adversarial(
    adversary: Adversary,
    policy_factory: Callable[[object], Policy],
    cycles: int = 4,
    bracket_opt: bool = False,
) -> CompetitiveMeasurement:
    """Attack a freshly-built policy and certify the observed ratio.

    Parameters
    ----------
    adversary:
        A configured §4 adversary (its ``k``/``h``/``B`` fix the game).
    policy_factory:
        ``mapping -> Policy``; the adversary sizes the mapping itself
        (it must pre-allocate enough fresh blocks for ``cycles``).
    cycles:
        Steady-state cycles to play.
    bracket_opt:
        Additionally run the clairvoyant OPT bracket on the generated
        trace at size ``h`` (costs three offline simulations).
    """
    mapping = adversary.make_mapping(cycles)
    policy = policy_factory(mapping)
    run = adversary.run(policy, cycles=cycles)
    upper = lower = None
    if bracket_opt:
        upper = gc_opt_upper(run.trace, adversary.h)
        lower = gc_opt_lower(run.trace, adversary.h)
    return CompetitiveMeasurement(run=run, opt_upper=upper, opt_lower=lower)


def ratio_on_trace(
    policy: Policy, trace: Trace, h: int
) -> dict:
    """Miss ratio of ``policy`` against the OPT bracket at size ``h``.

    Returns a row with the policy's misses, the certified OPT interval
    ``[opt_lower, opt_upper]``, and the implied competitive-ratio
    interval ``[misses/opt_upper, misses/opt_lower]``.
    """
    result = simulate(policy, trace)
    upper = gc_opt_upper(trace, h)
    lower = gc_opt_lower(trace, h)
    return {
        "policy": result.policy,
        "misses": result.misses,
        "opt_lower": lower,
        "opt_upper": upper,
        "ratio_min": result.misses / upper if upper else float("inf"),
        "ratio_max": result.misses / lower if lower else float("inf"),
    }

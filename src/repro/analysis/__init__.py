"""Analysis tooling: LP validation, ratio measurement, sweeps, output.

* :mod:`repro.analysis.lp` — numeric solutions of the §5.2 linear
  programs (Theorems 5–7), replacing the authors' Mathematica runs.
* :mod:`repro.analysis.competitive` — empirical competitive-ratio
  measurement combining adversaries with offline OPT brackets.
* :mod:`repro.analysis.sweep` — parameter sweeps with optional
  process-level parallelism.
* :mod:`repro.analysis.tables` — plain-text/CSV result rendering.
* :mod:`repro.analysis.ascii_plot` — terminal line plots for figures.
* :mod:`repro.analysis.mrc` — Mattson stack-distance miss-ratio curves.
* :mod:`repro.analysis.randomized` — multi-seed summaries for the
  randomized §6 policies.
"""

from repro.analysis.lp import (
    thm5_numeric,
    thm6_numeric,
    thm7_numeric,
)
from repro.analysis.competitive import (
    CompetitiveMeasurement,
    measure_adversarial,
    ratio_on_trace,
)
from repro.analysis.sweep import grid, simulate_cell, sweep
from repro.analysis.tables import format_histogram, format_table, write_csv
from repro.analysis.ascii_plot import line_plot
from repro.analysis.mrc import (
    block_lru_stack_distances,
    iblp_mrc_grid,
    lru_stack_distances,
    miss_ratio_curve,
)
from repro.analysis.randomized import SeedSummary, compare_randomized, seed_sweep

__all__ = [
    "thm5_numeric",
    "thm6_numeric",
    "thm7_numeric",
    "CompetitiveMeasurement",
    "measure_adversarial",
    "ratio_on_trace",
    "sweep",
    "grid",
    "simulate_cell",
    "format_table",
    "format_histogram",
    "write_csv",
    "line_plot",
    "lru_stack_distances",
    "block_lru_stack_distances",
    "miss_ratio_curve",
    "iblp_mrc_grid",
    "SeedSummary",
    "seed_sweep",
    "compare_randomized",
]

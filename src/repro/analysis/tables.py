"""Result rendering: aligned text tables and CSV export.

Experiments print the same rows the paper's tables report; benches tee
them to ``benchmarks/out/*.csv`` so EXPERIMENTS.md can cite stable
artifacts.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_histogram", "write_csv"]


def _fmt(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return format(value, floatfmt)
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table.

    Columns default to the union of keys in first-seen order.  Missing
    cells render empty.
    """
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    header = list(columns)
    body = [[_fmt(row.get(c, ""), floatfmt) for c in header] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in body)) if body else len(h)
        for i, h in enumerate(header)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_histogram(
    edges: Sequence[float],
    counts: Sequence[int],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render bucket counts as a horizontal ASCII bar chart.

    ``edges`` are upper inclusive bounds; ``counts`` must have one
    extra overflow bucket (the convention of
    :class:`repro.telemetry.metrics.Histogram`).
    """
    if len(counts) != len(edges) + 1:
        raise ValueError(
            f"expected {len(edges) + 1} buckets for {len(edges)} edges, "
            f"got {len(counts)}"
        )
    labels = []
    lo: float = 0
    for edge in edges:
        labels.append(f"[{_fmt(lo, '.4g')}, {_fmt(edge, '.4g')}]")
        lo = edge
    labels.append(f"({_fmt(lo, '.4g')}, inf)")
    peak = max(counts) if counts else 0
    label_w = max(len(lb) for lb in labels)
    count_w = max(len(str(c)) for c in counts)
    lines = [title] if title else []
    for label, count in zip(labels, counts):
        bar = "#" * (round(count / peak * width) if peak else 0)
        lines.append(f"{label.rjust(label_w)}  {str(count).rjust(count_w)}  {bar}")
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Dict[str, Any]],
    path: str | Path,
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write rows to CSV (creating parent directories); return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path

"""Result rendering: aligned text tables and CSV export.

Experiments print the same rows the paper's tables report; benches tee
them to ``benchmarks/out/*.csv`` so EXPERIMENTS.md can cite stable
artifacts.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "write_csv"]


def _fmt(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return format(value, floatfmt)
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".4g",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table.

    Columns default to the union of keys in first-seen order.  Missing
    cells render empty.
    """
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    header = list(columns)
    body = [[_fmt(row.get(c, ""), floatfmt) for c in header] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in body)) if body else len(h)
        for i, h in enumerate(header)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Dict[str, Any]],
    path: str | Path,
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write rows to CSV (creating parent directories); return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path

"""Miss-ratio curves via Mattson's stack algorithm [Mattson et al. 1970].

The paper cites Mattson's one-pass technique as the classical offline
tool for inclusion (stack) policies; this module implements it for the
GC setting's two granularities:

* :func:`lru_stack_distances` — reuse (stack) distances of an LRU
  *item* cache; the histogram yields the miss count of every capacity
  ``k`` simultaneously.
* :func:`block_lru_stack_distances` — the same over the block
  projection, giving Block-LRU's miss curve in units of blocks.
* :func:`miss_ratio_curve` — turn either into ``(capacity, miss
  ratio)`` arrays, and :func:`iblp_mrc_grid` sweeps IBLP splits with
  direct simulation for comparison (IBLP is *not* a stack policy, so no
  one-pass shortcut exists — the engine run is the honest tool).

Stack distances are computed by the array-oriented offline kernel in
:mod:`repro.core.fast` (a mergesort-style inversion count, O(T log T)
with numpy-vectorized levels); this module keeps the analysis-facing
API and the curve/grid constructions on top of it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.engine import simulate
from repro.core.fast import stack_distances
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.iblp import IBLP

__all__ = [
    "lru_stack_distances",
    "block_lru_stack_distances",
    "miss_ratio_curve",
    "iblp_mrc_grid",
    "sampled_miss_ratio_curve",
    "sampled_spatial_fraction",
]


def lru_stack_distances(ids: Sequence[int] | np.ndarray) -> np.ndarray:
    """Reuse distances of each access under LRU (inf → -1).

    ``distance[t]`` is the number of distinct ids seen since the
    previous access to ``ids[t]``; an LRU cache of capacity ``k`` hits
    access ``t`` iff ``0 <= distance[t] < k``.  Cold accesses get -1.
    """
    return stack_distances(np.asarray(ids, dtype=np.int64))


def block_lru_stack_distances(trace: Trace) -> np.ndarray:
    """Stack distances over the block projection (for Block-LRU)."""
    return lru_stack_distances(trace.block_trace())


def miss_ratio_curve(
    distances: np.ndarray, capacities: Sequence[int]
) -> List[Tuple[int, float]]:
    """Miss ratio at each capacity from a stack-distance array.

    A capacity-``k`` LRU cache misses an access iff its distance is -1
    (cold) or ``>= k``.
    """
    if not len(distances):
        raise ConfigurationError("empty distance array")
    caps = sorted(set(int(c) for c in capacities))
    if caps and caps[0] < 1:
        raise ConfigurationError("capacities must be >= 1")
    n = len(distances)
    finite = distances[distances >= 0]
    hist = np.bincount(finite, minlength=max(caps) + 1) if finite.size else (
        np.zeros(max(caps) + 1, dtype=np.int64)
    )
    cum = np.cumsum(hist)
    out = []
    for k in caps:
        hits = int(cum[k - 1]) if k - 1 < len(cum) else int(cum[-1])
        out.append((k, (n - hits) / n))
    return out


def iblp_mrc_grid(
    trace: Trace,
    capacities: Sequence[int],
    splits: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> List[Dict[str, float]]:
    """IBLP miss ratios over a (capacity, split-fraction) grid.

    ``splits`` are item-layer fractions of the capacity.  IBLP is not a
    stack policy (no inclusion property across splits), so each cell is
    one referee-validated simulation.
    """
    rows: List[Dict[str, float]] = []
    for k in capacities:
        for frac in splits:
            i = int(round(frac * k))
            res = simulate(IBLP(k, trace.mapping, item_layer_size=i), trace)
            rows.append(
                {
                    "capacity": k,
                    "item_fraction": frac,
                    "item_layer": i,
                    "miss_ratio": res.miss_ratio,
                }
            )
    return rows


# --------------------------------------------------------------------------
# SHARDS-sampled approximate curves
# --------------------------------------------------------------------------
#
# Spatially hashed sampling (SHARDS) keeps a block iff
# SplitMix64(block ^ salt) < rate * 2^64, i.e. each block survives with
# probability `rate` independently of access order.  Distinct-id counts
# in any window then scale by `rate` in expectation — whole blocks
# survive or vanish together, so both block-granular *and*
# item-granular distinct counts shrink proportionally — which gives the
# rescaling rule: a sampled stack distance d estimates a true distance
# d / rate, so a capacity-k cache hits a sampled access iff d < k*rate.
#
# Error model: each curve point is a binomial proportion over the
# sampled blocks; with S sampled accesses the standard error is about
# sqrt(p(1-p)/S) plus the distance-rescaling noise.  Empirically, on
# the reference synthetic workloads (zipf alpha=1.0 and markov, >= 50k
# accesses) the max absolute miss-ratio error stays under 0.02 at rate
# 0.01 and shrinks with the rate; the property suite pins a
# conservative <= 0.05 bound at rates >= 0.05 (documented in
# docs/traces.md).


def sampled_miss_ratio_curve(
    trace: Trace,
    capacities: Sequence[int],
    rate: float,
    seed: int = 0,
    granularity: str = "item",
) -> List[Tuple[int, float]]:
    """Approximate LRU miss-ratio curve from a SHARDS sample.

    ``granularity`` selects the item-LRU (``"item"``, capacities in
    items) or Block-LRU (``"block"``, capacities in blocks) curve.  The
    sample is gathered chunk-at-a-time (bounded memory for mmap-backed
    traces) and Mattson runs over only ``~rate * n`` accesses — the
    source of the ingest benchmark's speedup.
    """
    from repro.workloads.stream import shards

    if granularity not in ("item", "block"):
        raise ConfigurationError(
            f"granularity must be 'item' or 'block', got {granularity!r}"
        )
    caps = sorted(set(int(c) for c in capacities))
    if not caps:
        raise ConfigurationError("no capacities given")
    if caps[0] < 1:
        raise ConfigurationError("capacities must be >= 1")
    sampler = shards(rate, seed)
    ids = sampler.sampled_items(trace)
    if ids.size == 0:
        raise ConfigurationError(
            f"no accesses survived sampling at rate {rate}; "
            "raise the rate or change the seed"
        )
    if granularity == "block":
        ids = trace.mapping.blocks_of(ids)
    distances = stack_distances(np.asarray(ids, dtype=np.int64))
    n = distances.size
    out: List[Tuple[int, float]] = []
    for k in caps:
        threshold = k * sampler.rate
        hits = int(np.count_nonzero((distances >= 0) & (distances < threshold)))
        out.append((k, (n - hits) / n))
    return out


def sampled_spatial_fraction(
    trace: Trace,
    capacity: int,
    rate: float,
    seed: int = 0,
) -> float:
    """Estimate Block-LRU's ``spatial_fraction`` at ``capacity`` from a sample.

    Replays the fast Block-LRU kernel over the SHARDS sub-trace at the
    rate-scaled capacity (rounded to whole blocks, floored at one
    block).  The spatial/temporal hit *ratio* is scale-free under
    block-closed sampling, so this estimates the full-trace fraction
    without a full replay.
    """
    from repro.policies.base import make_policy
    from repro.workloads.stream import shards

    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    sampler = shards(rate, seed)
    sub = sampler.sample(trace)
    if not len(sub):
        raise ConfigurationError(
            f"no accesses survived sampling at rate {rate}; "
            "raise the rate or change the seed"
        )
    bsize = int(trace.mapping.max_block_size)
    scaled = max(bsize, int(round(capacity * sampler.rate / bsize)) * bsize)
    policy = make_policy("block-lru", scaled, trace.mapping)
    return simulate(policy, sub, fast=True).spatial_fraction

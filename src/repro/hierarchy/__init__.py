"""Two-level memory hierarchy around the granularity boundary.

The GC model abstracts a concrete system (paper §1–2, Figure 1): a
small cache above a larger level that internally operates on blocks
through a row buffer — "once items are brought into the buffer, they
can be accessed at low cost, motivating our model".
:class:`~repro.hierarchy.two_level.TwoLevelSimulator` makes that
concrete: it runs any policy under the referee while modelling the
lower level's row buffer, separating

* **row activations** (expensive: the lower level fetches a whole
  block into its buffer) from
* **buffer reads** (cheap: items streamed out of the open row).

This quantifies *why* subset loads are free — a policy that grabs more
of an open row does not add activations — and exposes the energy/latency
proxy :func:`~repro.hierarchy.two_level.traffic_cost`.
"""

from repro.hierarchy.two_level import TwoLevelSimulator, TwoLevelStats, traffic_cost

__all__ = ["TwoLevelSimulator", "TwoLevelStats", "traffic_cost"]

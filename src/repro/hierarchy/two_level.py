"""Cache + row-buffered backing store simulation.

The upper level is any :class:`~repro.policies.base.Policy` (run under
the referee engine).  The lower level models a DRAM-like device with
``open_rows`` row buffers managed LRU (one per bank, open-page policy):

* an upper-level miss to a block whose row is open is a **row-buffer
  hit** — the item (and any free subset the policy grabs) streams out
  of the buffer;
* a miss to a closed row **activates** it (the expensive event the GC
  model charges unit cost for).

Statistics separate the three cost tiers, and
:func:`traffic_cost` folds them into a single energy/latency proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.engine import Engine
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies.base import Policy
from repro.structs.linked_lru import LinkedLRU
from repro.types import HitKind

__all__ = ["TwoLevelStats", "TwoLevelSimulator", "traffic_cost"]


@dataclass
class TwoLevelStats:
    """Counters for one two-level run."""

    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    row_activations: int = 0
    row_buffer_hits: int = 0
    items_transferred: int = 0
    per_policy: Dict = field(default_factory=dict)

    @property
    def activation_rate(self) -> float:
        """Row activations per access — the dominant energy/latency term."""
        return self.row_activations / self.accesses if self.accesses else 0.0

    @property
    def row_buffer_hit_rate(self) -> float:
        """Fraction of L1 misses served from an already-open row."""
        return (
            self.row_buffer_hits / self.l1_misses if self.l1_misses else 0.0
        )

    @property
    def mean_items_per_activation(self) -> float:
        """How well activations are amortized by subset loading."""
        return (
            self.items_transferred / self.row_activations
            if self.row_activations
            else 0.0
        )

    def as_row(self) -> Dict:
        return {
            "accesses": self.accesses,
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "row_activations": self.row_activations,
            "row_buffer_hits": self.row_buffer_hits,
            "items_transferred": self.items_transferred,
            "activation_rate": self.activation_rate,
            "row_buffer_hit_rate": self.row_buffer_hit_rate,
            **self.per_policy,
        }


class TwoLevelSimulator:
    """Drive a policy over a trace with a row-buffered lower level.

    Parameters
    ----------
    policy:
        The upper-level cache policy (any registered policy).
    open_rows:
        Number of simultaneously open rows (DRAM banks); LRU-managed.
    """

    def __init__(self, policy: Policy, open_rows: int = 1) -> None:
        if open_rows < 1:
            raise ConfigurationError(f"open_rows must be >= 1, got {open_rows}")
        self.policy = policy
        self.open_rows = open_rows

    def run(self, trace: Trace) -> TwoLevelStats:
        """Simulate and return the combined statistics."""
        if self.policy.is_offline:
            self.policy.prepare(trace)
        engine = Engine(self.policy, trace.mapping)
        open_rows = LinkedLRU()  # block id -> None
        stats = TwoLevelStats(
            per_policy={"policy": getattr(self.policy, "name", "policy")}
        )
        mapping = trace.mapping
        for item in trace.items.tolist():
            before_loads = engine.result.loaded_items
            kind = engine.access(item)
            stats.accesses += 1
            if kind is not HitKind.MISS:
                stats.l1_hits += 1
                continue
            stats.l1_misses += 1
            block = mapping.block_of(item)
            if block in open_rows:
                open_rows.touch(block)
                stats.row_buffer_hits += 1
            else:
                stats.row_activations += 1
                open_rows.insert_mru(block)
                if len(open_rows) > self.open_rows:
                    open_rows.pop_lru()
            stats.items_transferred += (
                engine.result.loaded_items - before_loads
            )
        return stats


def traffic_cost(
    stats: TwoLevelStats,
    activation_cost: float = 20.0,
    buffer_read_cost: float = 1.0,
    transfer_cost: float = 0.1,
) -> float:
    """A simple energy/latency proxy for one run.

    ``activation_cost`` per row activation (the unit the GC model
    charges), ``buffer_read_cost`` per miss served from an open row,
    and ``transfer_cost`` per item moved up — the term that penalizes
    indiscriminate whole-block loading and rewards useful subsets.
    """
    if min(activation_cost, buffer_read_cost, transfer_cost) < 0:
        raise ConfigurationError("costs must be non-negative")
    return (
        activation_cost * stats.row_activations
        + buffer_read_cost * stats.row_buffer_hits
        + transfer_cost * stats.items_transferred
    )

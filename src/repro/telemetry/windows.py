"""Per-window folding of access outcomes.

The paper's phenomena are *phase* phenomena — the spatial-hit fraction
collapses when a scan ends, IBLP's layer boundary drifts as the block
mass changes — so end-of-run aggregates hide exactly what matters.
:class:`WindowedSeries` folds the per-access stream into one row per
``window`` consecutive accesses: miss ratio, the temporal/spatial hit
split, mean load-set size, end-of-window occupancy, and an
eviction-age histogram.

Invariant relied on by tests and the CLI acceptance check: the window
rows partition the trace exactly — ``sum(row.misses) == result.misses``
and ``sum(row.accesses) == result.accesses`` — including a final
partial window when the trace length is not a multiple of ``window``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.metrics import DEFAULT_AGE_EDGES
from repro.types import HitKind

__all__ = ["WindowRow", "WindowedSeries"]


@dataclass
class WindowRow:
    """Aggregates for one window of consecutive accesses.

    ``start`` is the position of the first access in the window,
    ``end`` one past the last; ``end - start == accesses``.
    ``evict_age_counts`` uses the series' shared ``age_edges`` (upper
    inclusive bounds, plus one overflow bucket).
    """

    index: int
    start: int
    end: int
    accesses: int = 0
    misses: int = 0
    temporal_hits: int = 0
    spatial_hits: int = 0
    loaded_items: int = 0
    evicted_items: int = 0
    occupancy: int = 0
    evict_age_counts: List[int] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return self.temporal_hits + self.spatial_hits

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def spatial_fraction(self) -> float:
        """Fraction of this window's hits that are spatial."""
        return self.spatial_hits / self.hits if self.hits else 0.0

    @property
    def mean_load_set_size(self) -> float:
        return self.loaded_items / self.misses if self.misses else 0.0

    def as_record(self) -> Dict:
        """JSON-friendly dict (``type`` tag lets sinks mix record kinds)."""
        return {
            "type": "window",
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "accesses": self.accesses,
            "misses": self.misses,
            "temporal_hits": self.temporal_hits,
            "spatial_hits": self.spatial_hits,
            "loaded_items": self.loaded_items,
            "evicted_items": self.evicted_items,
            "miss_ratio": self.miss_ratio,
            "spatial_fraction": self.spatial_fraction,
            "mean_load_set_size": self.mean_load_set_size,
            "occupancy": self.occupancy,
            "evict_age_counts": list(self.evict_age_counts),
        }

    @classmethod
    def from_record(cls, record: Dict) -> "WindowRow":
        """Inverse of :meth:`as_record` (derived ratios recomputed)."""
        return cls(
            index=int(record["index"]),
            start=int(record["start"]),
            end=int(record["end"]),
            accesses=int(record["accesses"]),
            misses=int(record["misses"]),
            temporal_hits=int(record["temporal_hits"]),
            spatial_hits=int(record["spatial_hits"]),
            loaded_items=int(record["loaded_items"]),
            evicted_items=int(record["evicted_items"]),
            occupancy=int(record["occupancy"]),
            evict_age_counts=[int(c) for c in record.get("evict_age_counts", [])],
        )


class WindowedSeries:
    """Fold per-access outcomes into :class:`WindowRow` rows.

    Feed it with :meth:`observe` once per access in trace order, then
    call :meth:`finalize` to flush the trailing partial window.  The
    caller (normally the :class:`~repro.telemetry.recorder.Recorder`)
    computes eviction ages; this class only buckets them.
    """

    def __init__(
        self,
        window: int,
        age_edges: Sequence[float] = DEFAULT_AGE_EDGES,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.age_edges: Tuple[float, ...] = tuple(age_edges)
        self.rows: List[WindowRow] = []
        self._current: Optional[WindowRow] = None
        self._pos = 0

    def _open(self) -> WindowRow:
        row = WindowRow(
            index=len(self.rows),
            start=self._pos,
            end=self._pos,
            evict_age_counts=[0] * (len(self.age_edges) + 1),
        )
        self._current = row
        return row

    def observe(
        self,
        kind: HitKind,
        loaded: int,
        evicted: int,
        occupancy: int,
        eviction_ages: Iterable[int] = (),
        age_buckets: Iterable[Tuple[int, int]] = (),
    ) -> Optional[WindowRow]:
        """Fold one access; return the completed row on a boundary.

        Eviction ages come in one of two forms: ``eviction_ages`` are
        raw ages bucketed here against ``age_edges``; ``age_buckets``
        are pre-bucketed ``(bucket_index, count)`` pairs — the
        :class:`~repro.telemetry.recorder.Recorder` hot path buckets
        each eviction group once and shares the index with its global
        histogram rather than bucketing twice.
        """
        row = self._current if self._current is not None else self._open()
        row.accesses += 1
        if kind is HitKind.MISS:
            row.misses += 1
        elif kind is HitKind.SPATIAL_HIT:
            row.spatial_hits += 1
        else:
            row.temporal_hits += 1
        row.loaded_items += loaded
        row.evicted_items += evicted
        row.occupancy = occupancy
        counts = row.evict_age_counts
        if eviction_ages:
            edges = self.age_edges
            for age in eviction_ages:
                # Linear bucket search: len(edges) is small (~8) and
                # this path serves at most a few ages per access.
                for i, edge in enumerate(edges):
                    if age <= edge:
                        counts[i] += 1
                        break
                else:
                    counts[-1] += 1
        if age_buckets:
            for i, n in age_buckets:
                counts[i] += n
        self._pos += 1
        row.end = self._pos
        if row.accesses >= self.window:
            self.rows.append(row)
            self._current = None
            return row
        return None

    def finalize(self) -> Optional[WindowRow]:
        """Flush the trailing partial window (if any) and return it."""
        row = self._current
        if row is not None and row.accesses:
            self.rows.append(row)
            self._current = None
            return row
        self._current = None
        return None

    # -- aggregate views --------------------------------------------------
    @property
    def total_misses(self) -> int:
        return sum(r.misses for r in self.rows)

    @property
    def total_accesses(self) -> int:
        return sum(r.accesses for r in self.rows)

    def as_records(self) -> List[Dict]:
        return [r.as_record() for r in self.rows]

"""Pluggable destinations for telemetry records.

Every sink consumes plain JSON-friendly dicts carrying a ``"type"``
tag (``"window"``, ``"access"``, ``"phase"``, ``"summary"``) so one
stream can mix record kinds and consumers can filter.  Three
implementations:

* :class:`RingBufferSink` — bounded in-memory buffer, for tests and
  interactive inspection; never touches disk.
* :class:`JSONLSink` — one JSON object per line.  The canonical
  interchange format: ``repro report`` and :func:`read_jsonl` consume
  it back losslessly.
* :class:`CSVSink` — buffers records and writes a CSV per the union of
  keys on close (via :func:`repro.analysis.tables.write_csv` wire
  format rules); nested lists are JSON-encoded into their cell.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, IO, Iterable, List, Optional

__all__ = ["Sink", "RingBufferSink", "JSONLSink", "CSVSink", "read_jsonl"]


class Sink:
    """Interface: ``emit`` one record; ``close`` flushes resources.

    Subclasses must implement :meth:`emit`; :meth:`close` defaults to a
    no-op so in-memory sinks need not override it.
    """

    def emit(self, record: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RingBufferSink(Sink):
    """Keep the last ``maxlen`` records in memory."""

    def __init__(self, maxlen: int = 65536) -> None:
        self._buffer: Deque[Dict] = deque(maxlen=maxlen)

    def emit(self, record: Dict) -> None:
        self._buffer.append(record)

    @property
    def records(self) -> List[Dict]:
        return list(self._buffer)

    def of_type(self, kind: str) -> List[Dict]:
        """Records with ``type == kind``, in emission order."""
        return [r for r in self._buffer if r.get("type") == kind]

    def __len__(self) -> int:
        return len(self._buffer)


class JSONLSink(Sink):
    """Write one compact JSON object per line to ``path``.

    ``mode="a"`` joins an existing file instead of truncating it, and
    ``line_flush=True`` flushes after every record — together they let
    multiple processes (the span tracer's campaign workers) share one
    file: each emit is a single buffered write followed by a flush, so
    lines from concurrent appenders interleave whole, never torn.
    """

    def __init__(
        self, path: str | Path, mode: str = "w", line_flush: bool = False
    ) -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"JSONL sink mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open(mode)
        self._line_flush = line_flush

    def emit(self, record: Dict) -> None:
        if self._fh is None:
            raise ValueError(f"JSONL sink {self.path} already closed")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        if self._line_flush:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class CSVSink(Sink):
    """Buffer records; write one CSV with the union of keys on close.

    List/dict values (histogram buckets) are JSON-encoded so the CSV
    stays one row per record.  Use JSONL when lossless round-tripping
    matters; CSV is for spreadsheet-style consumers.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: List[Dict] = []
        self._closed = False

    def emit(self, record: Dict) -> None:
        if self._closed:
            raise ValueError(f"CSV sink {self.path} already closed")
        flat = {
            k: json.dumps(v) if isinstance(v, (list, dict)) else v
            for k, v in record.items()
        }
        self._records.append(flat)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        from repro.analysis.tables import write_csv

        write_csv(self._records, self.path)


def read_jsonl(path: str | Path, kinds: Optional[Iterable[str]] = None) -> List[Dict]:
    """Parse a JSONL telemetry file back into records.

    ``kinds`` optionally filters by the ``type`` tag.  Blank lines are
    skipped; malformed lines raise ``json.JSONDecodeError`` (telemetry
    files are machine-written, silence would hide truncation bugs).
    """
    wanted = set(kinds) if kinds is not None else None
    out: List[Dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if wanted is None or record.get("type") in wanted:
                out.append(record)
    return out

"""Structured trace events and probabilistic sampling.

Two typed records flow to sinks:

* :class:`AccessEvent` — one (optionally sampled) record per access:
  position, item, block, hit kind, load/evict set sizes, occupancy.
* :class:`PhaseEvent` — a named span (workload generation, simulation,
  reporting) with wall-clock duration and the access positions it
  covered.

Sampling uses a dedicated :class:`random.Random` stream seeded
independently of any policy RNG, so turning tracing on or changing the
sample rate can never perturb simulation results — the determinism
test in ``tests/test_telemetry.py`` pins this down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.types import HitKind

__all__ = ["AccessEvent", "PhaseEvent", "EventSampler"]


@dataclass(frozen=True)
class AccessEvent:
    """One access, as observed by the referee after state update."""

    pos: int
    item: int
    block: int
    kind: HitKind
    loaded: int
    evicted: int
    occupancy: int

    def as_record(self) -> Dict:
        return {
            "type": "access",
            "pos": self.pos,
            "item": self.item,
            "block": self.block,
            "kind": self.kind.value,
            "loaded": self.loaded,
            "evicted": self.evicted,
            "occupancy": self.occupancy,
        }

    @classmethod
    def from_record(cls, record: Dict) -> "AccessEvent":
        return cls(
            pos=int(record["pos"]),
            item=int(record["item"]),
            block=int(record["block"]),
            kind=HitKind(record["kind"]),
            loaded=int(record["loaded"]),
            evicted=int(record["evicted"]),
            occupancy=int(record["occupancy"]),
        )


@dataclass(frozen=True)
class PhaseEvent:
    """A named wall-clock span over a range of access positions."""

    name: str
    start_pos: int
    end_pos: int
    seconds: float

    def as_record(self) -> Dict:
        return {
            "type": "phase",
            "name": self.name,
            "start_pos": self.start_pos,
            "end_pos": self.end_pos,
            "seconds": self.seconds,
        }

    @classmethod
    def from_record(cls, record: Dict) -> "PhaseEvent":
        return cls(
            name=str(record["name"]),
            start_pos=int(record["start_pos"]),
            end_pos=int(record["end_pos"]),
            seconds=float(record["seconds"]),
        )


class EventSampler:
    """Bernoulli sampler with a private, seeded RNG.

    ``rate=0`` and ``rate=1`` short-circuit without consuming
    randomness, so "trace everything" is deterministic regardless of
    seed and "trace nothing" costs one comparison.
    """

    __slots__ = ("rate", "_rng")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = random.Random(seed)

    def sample(self) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return self._rng.random() < self.rate

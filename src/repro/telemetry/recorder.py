"""The engine-facing telemetry facade.

Instrumentation philosophy: the engine never knows what telemetry is
configured.  It holds an ``Optional[Recorder]`` and pays **one branch
per access** when telemetry is off (``recorder is None``); everything
else — windowed folding, eviction-age tracking, event sampling, sink
fan-out — lives behind :meth:`Recorder.on_access`.

The hot path keeps plain-int attributes and syncs them into the
:class:`~repro.telemetry.metrics.MetricsRegistry` at :meth:`finalize`;
the registry is the queryable face, not the accumulation mechanism.

A :class:`Recorder` must never perturb the simulation: it draws
randomness only from its own seeded sampler and receives only
immutable values (ints, :class:`~repro.types.HitKind`, frozensets) —
``tests/test_telemetry.py`` asserts telemetry-on and telemetry-off
runs produce identical :class:`~repro.types.SimResult`\\ s.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.telemetry.events import EventSampler, PhaseEvent
from repro.telemetry.metrics import DEFAULT_AGE_EDGES, Histogram, MetricsRegistry
from repro.telemetry.sinks import RingBufferSink, Sink
from repro.telemetry.windows import WindowedSeries, WindowRow
from repro.types import HitKind, SimResult

__all__ = ["Recorder"]

_EMPTY_AGES: tuple = ()

#: Precomputed enum -> wire string map; ``kind.value`` per access costs
#: an enum descriptor lookup the hot path can skip.
_KIND_STR = {
    HitKind.MISS: "miss",
    HitKind.TEMPORAL_HIT: "temporal",
    HitKind.SPATIAL_HIT: "spatial",
}


class Recorder:
    """Collects per-access telemetry for one simulation run.

    Parameters
    ----------
    window:
        If > 0, fold accesses into per-window rows of this many
        accesses (emitted to sinks as ``{"type": "window"}`` records
        as each window completes).
    sinks:
        Destinations for window/access/phase/summary records.  The
        recorder closes them in :meth:`finalize`.
    sample_rate:
        Probability of emitting an ``{"type": "access"}`` record per
        access (1.0 = full trace, 0.0 = aggregates only).  Sampling
        randomness is private to the recorder.
    sample_seed:
        Seed for the sampling RNG (irrelevant at rates 0 and 1).
    registry:
        Optional shared :class:`MetricsRegistry`; one is created if
        omitted.  Totals are synced into it on :meth:`finalize`.
    age_edges:
        Bucket edges for the eviction-age histogram (accesses resident
        before eviction).
    """

    def __init__(
        self,
        window: int = 0,
        sinks: Sequence[Sink] = (),
        sample_rate: float = 0.0,
        sample_seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        age_edges: Sequence[float] = DEFAULT_AGE_EDGES,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sinks: List[Sink] = list(sinks)
        self.sampler = EventSampler(sample_rate, sample_seed)
        self.windows: Optional[WindowedSeries] = (
            WindowedSeries(window, age_edges) if window > 0 else None
        )
        # Eviction-age accumulators; materialized as a Histogram by the
        # `age_hist` property.  Validate the edges eagerly via a probe
        # Histogram so a bad configuration fails at construction time.
        self._age_edges = tuple(Histogram("evict_age", age_edges).edges)
        self._age_counts: List[int] = [0] * (len(self._age_edges) + 1)
        self._age_sum = 0
        self._age_n = 0
        self.phase_events: List[PhaseEvent] = []
        # Hot-path accumulators (synced to the registry in finalize()).
        self._pos = 0
        self._misses = 0
        self._temporal = 0
        self._spatial = 0
        self._loaded = 0
        self._evicted = 0
        self._occupancy = 0
        self._sampled = 0
        self._load_pos: Dict[int, int] = {}
        self._finalized = False

    # -- hot path ----------------------------------------------------------
    def on_access(
        self,
        item: int,
        block: int,
        kind: HitKind,
        loaded: FrozenSet[int],
        evicted: FrozenSet[int],
        occupancy: int,
    ) -> None:
        """Fold one referee-classified access.  Called by the engine
        after its shadow state is updated, with immutable values only.

        This is the innermost instrumented loop — it builds access
        records as plain dict literals (the :class:`AccessEvent` shape,
        without per-access dataclass construction) and avoids attribute
        lookups the overhead bench showed to matter.
        """
        pos = self._pos
        self._pos = pos + 1
        if kind is HitKind.MISS:
            self._misses += 1
        elif kind is HitKind.SPATIAL_HIT:
            self._spatial += 1
        else:
            self._temporal += 1
        n_loaded = len(loaded)
        n_evicted = len(evicted)
        self._loaded += n_loaded
        self._evicted += n_evicted
        self._occupancy = occupancy
        age_buckets = _EMPTY_AGES
        load_pos = self._load_pos
        if n_evicted:
            # Items side-loaded by one miss share a load position, so
            # group by it and bucket each distinct age once instead of
            # once per evicted item (the dominant hot-path cost on
            # block-heavy traces).
            pop = load_pos.pop
            groups: Dict[int, int] = {}
            get = groups.get
            for it in evicted:
                lp = pop(it, pos)
                groups[lp] = get(lp, 0) + 1
            edges = self._age_edges
            counts = self._age_counts
            age_buckets = []
            for lp, n in groups.items():
                age = pos - lp
                i = bisect_left(edges, age)
                counts[i] += n
                age_buckets.append((i, n))
                self._age_sum += age * n
            self._age_n += n_evicted
        if n_loaded:
            for it in loaded:
                load_pos[it] = pos
        windows = self.windows
        sinks = self.sinks
        if windows is not None:
            done = windows.observe(
                kind, n_loaded, n_evicted, occupancy, age_buckets=age_buckets
            )
            if done is not None and sinks:
                self._emit(done.as_record())
        if sinks and self.sampler.sample():
            self._sampled += 1
            record = {
                "type": "access",
                "pos": pos,
                "item": item,
                "block": block,
                "kind": _KIND_STR[kind],
                "loaded": n_loaded,
                "evicted": n_evicted,
                "occupancy": occupancy,
            }
            for sink in sinks:
                sink.emit(record)

    # -- phases ------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Wall-clock a named span; emits a ``{"type": "phase"}`` record."""
        start_pos = self._pos
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            event = PhaseEvent(
                name=name,
                start_pos=start_pos,
                end_pos=self._pos,
                seconds=time.perf_counter() - t0,
            )
            self.phase_events.append(event)
            if self.sinks:
                self._emit(event.as_record())

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Total wall seconds per phase name."""
        out: Dict[str, float] = {}
        for event in self.phase_events:
            out[event.name] = out.get(event.name, 0.0) + event.seconds
        return out

    # -- lifecycle ---------------------------------------------------------
    def _emit(self, record: Dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    @property
    def age_hist(self) -> Histogram:
        """Eviction-age histogram materialized from the accumulators."""
        hist = Histogram("evict_age", self._age_edges)
        hist.counts = list(self._age_counts)
        hist.total = self._age_n
        hist._sum = float(self._age_sum)
        return hist

    def _sync_registry(self) -> None:
        reg = self.registry
        reg.counter("accesses").value = self._pos
        reg.counter("misses").value = self._misses
        reg.counter("temporal_hits").value = self._temporal
        reg.counter("spatial_hits").value = self._spatial
        reg.counter("loaded_items").value = self._loaded
        reg.counter("evicted_items").value = self._evicted
        reg.counter("sampled_events").value = self._sampled
        reg.gauge("occupancy").set(self._occupancy)
        age = reg.histogram("evict_age", self._age_edges)
        age.counts = list(self._age_counts)
        age.total = self._age_n
        age._sum = float(self._age_sum)

    def summary(self, prefix: str = "") -> Dict[str, float]:
        """Flat scalar summary, suitable for merging into sweep rows."""
        hits = self._temporal + self._spatial
        out: Dict[str, float] = {
            prefix + "accesses": self._pos,
            prefix + "misses": self._misses,
            prefix + "miss_ratio": self._misses / self._pos if self._pos else 0.0,
            prefix + "spatial_fraction": self._spatial / hits if hits else 0.0,
            prefix + "mean_load_set_size": (
                self._loaded / self._misses if self._misses else 0.0
            ),
            prefix + "occupancy": self._occupancy,
            prefix + "evict_age_mean": self.age_hist.mean,
            prefix + "windows": len(self.windows.rows) if self.windows else 0,
            prefix + "sampled_events": self._sampled,
        }
        for name, seconds in self.phase_seconds.items():
            out[f"{prefix}phase_{name}_s"] = seconds
        return out

    def finalize(self, result: Optional[SimResult] = None) -> Dict:
        """Flush the partial window, emit the summary record, close sinks.

        Idempotent; returns the summary record.  ``result`` (when
        given) is cross-embedded so a telemetry file is self-contained.
        """
        summary: Dict = {"type": "summary"}
        if self._finalized:
            return summary
        self._finalized = True
        if self.windows is not None:
            tail = self.windows.finalize()
            if tail is not None and self.sinks:
                self._emit(tail.as_record())
            summary["window"] = self.windows.window
            summary["age_edges"] = list(self.windows.age_edges)
        self._sync_registry()
        summary.update(self.summary())
        summary["evict_age"] = self.age_hist.snapshot()
        if result is not None:
            summary["result"] = result.as_row()
        if self.sinks:
            self._emit(summary)
        for sink in self.sinks:
            sink.close()
        return summary

    # -- conveniences ------------------------------------------------------
    @property
    def window_rows(self) -> List[WindowRow]:
        return self.windows.rows if self.windows is not None else []

    def ring(self) -> Optional[RingBufferSink]:
        """First attached ring-buffer sink, if any (test/REPL helper)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

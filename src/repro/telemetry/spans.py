"""Hierarchical span tracing: where the wall-clock goes inside a run.

:class:`~repro.telemetry.recorder.Recorder` phases answer "how long did
*this run's* workload/simulate take"; spans answer the production
question "where did a 10k-cell campaign's three hours go" — a tree of
named, timed regions with ids and parent ids that survives thread and
process boundaries, so one trace file reconstructs campaign → cell →
compile/arena-attach/replay/store, across every worker.

Design
------
* A :class:`Span` is one finished region: name, ``trace_id`` (shared by
  the whole tree), ``span_id``, ``parent_id``, epoch start, duration,
  pid/tid, and a flat attribute dict.  Spans are emitted to sinks as
  ``{"type": "span", ...}`` JSONL records — the same interchange format
  (and :class:`~repro.telemetry.sinks.Sink` machinery) the telemetry
  layer already uses, so span and telemetry streams can share a file.
* A :class:`SpanTracer` owns the sink fan-out and the *current span*,
  tracked in a :class:`contextvars.ContextVar` — nesting is automatic
  within a thread, and each thread gets its own stack (a span opened on
  a worker thread parents to the tracer's root, not to whatever another
  thread happens to have open).
* **Process propagation is explicit and picklable**: ship
  :meth:`SpanTracer.current_context` (a :class:`SpanContext`) to the
  worker, have it :func:`enable` a tracer appending to the same path
  with ``root=context`` — its spans join the parent's tree.  Appends
  are one ``write`` + ``flush`` per record on an append-mode handle, so
  concurrent workers interleave whole lines, never torn ones.
* The **ambient tracer** (:func:`enable` / :func:`span` /
  :func:`annotate`) is how library internals participate without
  plumbing a tracer argument through every signature: call sites cost
  one module-global read when tracing is off and return a shared no-op
  context manager.  ``benchmarks/bench_throughput.py`` gates the
  enabled-path overhead on the full-trace fast path at ≤ 1.3×.

Instrumented out of the box: the campaign executor (campaign / plan /
execute / cell / store.put), ``execute_cell`` workers (cell →
compile / arena.attach / replay children), the fast kernels
(compile memo hit/miss, Mattson pass, multi-capacity replay), and
``sweep()``'s batch collapse.  Export a recorded file to Chrome
trace-event JSON with ``gc-caching obs trace-export spans.jsonl`` and
open it in Perfetto (see :mod:`repro.obs.trace_export`).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.telemetry.sinks import JSONLSink, Sink

__all__ = [
    "Span",
    "SpanContext",
    "SpanTracer",
    "enable",
    "disable",
    "get_tracer",
    "enabled",
    "span",
    "annotate",
    "current_context",
    "new_span_id",
]


def new_span_id() -> str:
    """16 hex chars of OS randomness — unique across processes."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The picklable cross-boundary identity of a span.

    Ship one of these to a worker process and open the worker's tracer
    with ``root=context``: every span the worker records carries the
    same ``trace_id`` and parents (directly or transitively) to
    ``span_id``, so the exported tree is seamless.
    """

    trace_id: str
    span_id: str

    def as_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "SpanContext":
        return cls(trace_id=str(data["trace_id"]), span_id=str(data["span_id"]))


@dataclass
class Span:
    """One region of wall-clock, open until its ``with`` block exits."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float = 0.0  # epoch seconds (comparable across processes)
    seconds: float = 0.0
    pid: int = 0
    tid: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute while the span is open."""
        self.attributes[key] = value

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.start,
            "seconds": self.seconds,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attributes:
            record["attrs"] = self.attributes
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            name=str(record["name"]),
            trace_id=str(record["trace_id"]),
            span_id=str(record["span_id"]),
            parent_id=record.get("parent_id"),
            start=float(record["ts"]),
            seconds=float(record["seconds"]),
            pid=int(record.get("pid", 0)),
            tid=int(record.get("tid", 0)),
            attributes=dict(record.get("attrs", {})),
        )


#: Current open span, per execution context (and therefore per thread —
#: a fresh thread starts with the default, not another thread's stack).
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_current_span", default=None
)


class SpanTracer:
    """Records spans into sinks, maintaining the nesting context.

    Parameters
    ----------
    sinks:
        Destinations for ``{"type": "span"}`` records.  Use
        :meth:`to_path` for the common "JSONL file" case.
    root:
        Optional :class:`SpanContext` this tracer's top-level spans
        parent to (cross-process continuation).  Without it, a fresh
        ``trace_id`` is minted and top-level spans have no parent.

    Emission is serialized by a lock, so one tracer may be shared by
    threads; the *context* is per-thread automatically.
    """

    def __init__(
        self,
        sinks: Sequence[Sink] = (),
        root: Optional[SpanContext] = None,
    ) -> None:
        self.sinks: List[Sink] = list(sinks)
        self.root = root
        self.trace_id = root.trace_id if root is not None else new_span_id()
        self._lock = threading.Lock()
        self._closed = False

    @classmethod
    def to_path(
        cls,
        path: Union[str, Path],
        root: Optional[SpanContext] = None,
        append: bool = False,
    ) -> "SpanTracer":
        """Tracer writing line-flushed JSONL to ``path``.

        ``append=True`` is the worker mode: join an existing file
        without truncating it.  The owner (``append=False``) truncates
        once and then *also* writes in append mode — every writer's
        records land at EOF via ``O_APPEND``, so an owner that keeps
        recording while workers append never overwrites their lines
        from its own stale file offset.
        """
        file_path = Path(path)
        if not append:
            file_path.parent.mkdir(parents=True, exist_ok=True)
            file_path.write_text("")
        sink = JSONLSink(file_path, mode="a", line_flush=True)
        return cls(sinks=[sink], root=root)

    # -- recording ---------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        span_id: Optional[str] = None,
        **attributes: Any,
    ):
        """Open a child of the current span (or of ``parent`` when
        given explicitly); yields the open :class:`Span`.

        ``span_id`` pins the id (used to pre-agree an id across a
        process boundary, e.g. so the campaign executor can parent its
        ``store.put`` span to the worker's ``cell`` span).  An
        exception inside the block is recorded as an ``error``
        attribute and re-raised.
        """
        current = _CURRENT.get()
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
        elif current is not None and current.trace_id == self.trace_id:
            parent_id = current.span_id
        elif self.root is not None:
            parent_id = self.root.span_id
        else:
            parent_id = None
        sp = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=parent_id,
            start=time.time(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attributes=dict(attributes),
        )
        token = _CURRENT.set(sp)
        t0 = time.perf_counter()
        try:
            yield sp
        except BaseException as exc:
            sp.attributes.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            sp.seconds = time.perf_counter() - t0
            _CURRENT.reset(token)
            self._emit(sp.as_record())

    def _emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                return
            for sink in self.sinks:
                sink.emit(record)

    # -- context -----------------------------------------------------------
    def current_context(self) -> Optional[SpanContext]:
        """Innermost open span's context (falling back to the root)."""
        current = _CURRENT.get()
        if current is not None and current.trace_id == self.trace_id:
            return current.context
        return self.root

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Flush and close the sinks (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for sink in self.sinks:
                sink.close()

    def __enter__(self) -> "SpanTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the ambient tracer ------------------------------------------------------
#
# Library internals (fast kernels, arena, sweep, campaign) call the
# module-level span()/annotate(); with no tracer enabled these cost one
# global read and return a shared no-op context, so instrumentation can
# stay unconditionally in place on hot-ish paths (never per-access).

_TRACER: Optional[SpanTracer] = None
_NULL_SPAN = nullcontext(None)


def enable(
    target: Union[str, Path, SpanTracer],
    root: Optional[SpanContext] = None,
    append: bool = False,
) -> SpanTracer:
    """Install the process-wide ambient tracer and return it.

    ``target`` is a JSONL path (the common case) or a ready-made
    :class:`SpanTracer`.  A previously enabled tracer is replaced but
    **not** closed — a forked worker that inherited the parent's tracer
    must be able to swap in its own without flushing the parent's
    handle; close the old tracer yourself if you own it.
    """
    global _TRACER
    tracer = (
        target
        if isinstance(target, SpanTracer)
        else SpanTracer.to_path(target, root=root, append=append)
    )
    _TRACER = tracer
    return tracer


def disable(close: bool = True) -> None:
    """Remove the ambient tracer (closing it by default)."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    if tracer is not None and close:
        tracer.close()


def get_tracer() -> Optional[SpanTracer]:
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def span(name: str, **attributes: Any):
    """Ambient-tracer span; a shared no-op context when tracing is off.

    The no-op yields ``None``, so call sites that mutate the span must
    guard (or use :func:`annotate`, which guards for them)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


def annotate(**attributes: Any) -> None:
    """Set attributes on the innermost open ambient span (no-op when
    tracing is off or no span is open)."""
    if _TRACER is None:
        return
    current = _CURRENT.get()
    if current is not None:
        current.attributes.update(attributes)


def current_context() -> Optional[SpanContext]:
    """Ambient current span context, for explicit propagation."""
    tracer = _TRACER
    return tracer.current_context() if tracer is not None else None

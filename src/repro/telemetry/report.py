"""Render a telemetry file into the windowed summary report.

``repro report OUT.jsonl`` lands here: parse the JSONL stream written
by a :class:`~repro.telemetry.recorder.Recorder`, rebuild the window
rows, and render an aligned table plus (optionally) an ASCII time
series of a chosen metric over windows, reusing
:mod:`repro.analysis.tables` and :mod:`repro.analysis.ascii_plot` so
the report matches the look of every other artifact in the repo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import format_histogram, format_table
from repro.errors import TraceFormatError
from repro.telemetry.metrics import merge_bucket_lists
from repro.telemetry.sinks import read_jsonl
from repro.telemetry.windows import WindowRow

__all__ = ["TelemetryLog", "load_telemetry", "render_report"]

#: Columns of the windowed summary table, in display order.
WINDOW_COLUMNS = (
    "index",
    "start",
    "end",
    "accesses",
    "misses",
    "miss_ratio",
    "spatial_fraction",
    "mean_load_set_size",
    "occupancy",
)

#: Window metrics that may be plotted over time.
PLOTTABLE = ("miss_ratio", "spatial_fraction", "mean_load_set_size", "occupancy")


@dataclass
class TelemetryLog:
    """Parsed contents of one telemetry JSONL file."""

    path: Path
    windows: List[WindowRow] = field(default_factory=list)
    access_events: List[Dict] = field(default_factory=list)
    phase_events: List[Dict] = field(default_factory=list)
    summary: Optional[Dict] = None

    @property
    def total_misses(self) -> int:
        return sum(r.misses for r in self.windows)

    @property
    def total_accesses(self) -> int:
        return sum(r.accesses for r in self.windows)


def load_telemetry(path: str | Path) -> TelemetryLog:
    """Parse a recorder-written JSONL file into a :class:`TelemetryLog`."""
    path = Path(path)
    log = TelemetryLog(path=path)
    try:
        records = list(read_jsonl(path))
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"{path} is not a telemetry JSONL file (CSV telemetry "
            f"files cannot be rendered by `report`): {exc}"
        ) from exc
    for record in records:
        kind = record.get("type")
        if kind == "window":
            log.windows.append(WindowRow.from_record(record))
        elif kind == "access":
            log.access_events.append(record)
        elif kind == "phase":
            log.phase_events.append(record)
        elif kind == "summary":
            log.summary = record
        else:
            raise TraceFormatError(
                f"unknown telemetry record type {kind!r} in {path}"
            )
    return log


def _window_table(rows: Sequence[WindowRow]) -> str:
    table_rows = []
    for r in rows:
        rec = r.as_record()
        table_rows.append({c: rec[c] for c in WINDOW_COLUMNS})
    return format_table(table_rows, columns=WINDOW_COLUMNS, title="windowed telemetry")


def render_report(
    log: TelemetryLog,
    metric: str = "miss_ratio",
    plot: bool = True,
    plot_width: int = 70,
    plot_height: int = 12,
) -> str:
    """Render the full report: window table, metric plot, phases, summary."""
    if metric not in PLOTTABLE:
        raise TraceFormatError(
            f"cannot plot {metric!r}; choose one of {', '.join(PLOTTABLE)}"
        )
    parts: List[str] = []
    if not log.windows:
        parts.append(f"(no window records in {log.path} — was --window set?)")
    else:
        parts.append(_window_table(log.windows))
        ages = merge_bucket_lists(
            r.evict_age_counts for r in log.windows if r.evict_age_counts
        )
        edges = (log.summary or {}).get("age_edges")
        if ages and edges and sum(ages):
            parts.append("")
            parts.append(
                format_histogram(edges, ages, title="eviction age (accesses resident)")
            )
        if plot and len(log.windows) > 1:
            xs = [float(r.index) for r in log.windows]
            ys = [float(getattr(r, metric)) for r in log.windows]
            parts.append("")
            parts.append(
                line_plot(
                    {metric: (xs, ys)},
                    width=plot_width,
                    height=plot_height,
                    logx=False,
                    logy=False,
                    xlabel="window",
                    ylabel=metric,
                )
            )
    if log.phase_events:
        parts.append("")
        parts.append(
            format_table(
                [
                    {
                        "phase": p["name"],
                        "accesses": p["end_pos"] - p["start_pos"],
                        "seconds": p["seconds"],
                    }
                    for p in log.phase_events
                ],
                title="phases",
            )
        )
    if log.summary is not None:
        result = log.summary.get("result") or {}
        line = (
            f"summary: policy={result.get('policy', '?')} "
            f"accesses={log.summary.get('accesses')} "
            f"misses={log.summary.get('misses')} "
            f"miss_ratio={log.summary.get('miss_ratio', 0.0):.4g} "
            f"spatial_fraction={log.summary.get('spatial_fraction', 0.0):.4g} "
            f"mean_load_set_size={log.summary.get('mean_load_set_size', 0.0):.4g}"
        )
        parts.append("")
        parts.append(line)
    return "\n".join(parts)

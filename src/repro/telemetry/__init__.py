"""Telemetry: windowed metrics, structured event tracing, phase timers.

The simulator's end-of-run :class:`~repro.types.SimResult` answers
"how many misses"; this package answers "when, and at what cost".
Layers, from the hot path outward:

* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms in a :class:`MetricsRegistry`.
* :mod:`repro.telemetry.windows` — :class:`WindowedSeries` folds
  per-access outcomes into per-window rows (miss ratio, spatial
  fraction, load-set size, occupancy, eviction-age buckets).
* :mod:`repro.telemetry.events` — typed :class:`AccessEvent` /
  :class:`PhaseEvent` records with seeded probabilistic sampling.
* :mod:`repro.telemetry.sinks` — ring buffer, JSONL, CSV destinations.
* :mod:`repro.telemetry.spans` — hierarchical span tracing with
  cross-process propagation; export with ``repro obs trace-export``
  (see ``docs/observability.md``).
* :mod:`repro.telemetry.recorder` — the :class:`Recorder` facade the
  engine consults via a single ``is not None`` branch per access.
* :mod:`repro.telemetry.report` — render a telemetry file back into
  the windowed summary table and ASCII time-series plots.

Telemetry is strictly opt-in: ``simulate(...)`` without a recorder is
byte-identical to the uninstrumented engine, and a recorder never
feeds randomness or mutation back into the policy or referee.
``benchmarks/bench_throughput.py`` audits the overhead of each
configuration and writes ``benchmarks/out/throughput_overhead.csv``.
"""

from repro.telemetry.events import AccessEvent, EventSampler, PhaseEvent
from repro.telemetry.metrics import (
    DEFAULT_AGE_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import Recorder
from repro.telemetry.sinks import (
    CSVSink,
    JSONLSink,
    RingBufferSink,
    Sink,
    read_jsonl,
)
from repro.telemetry.spans import Span, SpanContext, SpanTracer
from repro.telemetry.windows import WindowedSeries, WindowRow

__all__ = [
    "Span",
    "SpanContext",
    "SpanTracer",
    "AccessEvent",
    "PhaseEvent",
    "EventSampler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_AGE_EDGES",
    "Recorder",
    "Sink",
    "RingBufferSink",
    "JSONLSink",
    "CSVSink",
    "read_jsonl",
    "WindowedSeries",
    "WindowRow",
]

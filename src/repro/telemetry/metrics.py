"""Metrics core: counters, gauges, fixed-bucket histograms, registry.

The simulator's hot loop must stay cheap, so every instrument here is
a plain-Python object with O(1) updates and no locking (the engine is
single-threaded per process; sweeps parallelize across processes, each
with its own registry).  Histograms use *fixed* bucket edges chosen at
construction — recording is a bisect plus an increment, and two
histograms with the same edges merge bucket-wise, which is what the
windowed series and the sweep integration rely on.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_AGE_EDGES",
]

#: Default bucket edges for eviction-age histograms (accesses between
#: an item's load and its eviction).  Roughly geometric: ages in cache
#: simulations span many orders of magnitude.
DEFAULT_AGE_EDGES: Tuple[int, ...] = (1, 4, 16, 64, 256, 1024, 4096, 16384)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value (occupancy, layer boundary, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram over non-negative values.

    ``edges`` are the *upper inclusive* bounds of the first
    ``len(edges)`` buckets; one overflow bucket catches everything
    larger, so ``counts`` always has ``len(edges) + 1`` entries.

    >>> h = Histogram("age", edges=(1, 4, 16))
    >>> for v in (0, 1, 3, 100):
    ...     h.observe(v)
    >>> h.counts
    [2, 1, 0, 1]
    """

    __slots__ = ("name", "edges", "counts", "total", "_sum")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_AGE_EDGES) -> None:
        if not edges:
            raise ConfigurationError(f"histogram {name!r} needs bucket edges")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ConfigurationError(
                f"histogram {name!r} edges must be strictly increasing"
            )
        self.name = name
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self._sum = 0.0

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` ``n`` times."""
        self.counts[bisect.bisect_left(self.edges, value)] += n
        self.total += n
        self._sum += value * n

    @property
    def mean(self) -> float:
        """Mean of observed values (0.0 when empty)."""
        return self._sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile: the upper edge of the bucket
        containing the ``q``-th observation (the last finite edge for
        the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self.total:
            return 0.0
        rank = q * self.total
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= rank:
                return float(self.edges[min(i, len(self.edges) - 1)])
        return float(self.edges[-1])  # pragma: no cover - defensive

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram with identical edges."""
        if other.edges != self.edges:
            raise ConfigurationError(
                f"cannot merge histograms with different edges "
                f"({self.name!r} vs {other.name!r})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self._sum += other._sum

    def snapshot(self) -> Dict:
        """JSON-friendly view (used by sinks and summaries)."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, total={self.total})"


class MetricsRegistry:
    """Named home for instruments.

    Asking twice for the same name returns the same instrument; asking
    for an existing name with a different kind is a configuration
    error — a registry maps each name to exactly one time series.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_AGE_EDGES
    ) -> Histogram:
        hist = self._get(name, Histogram, lambda: Histogram(name, edges))
        if hist.edges != tuple(edges):
            raise ConfigurationError(
                f"histogram {name!r} already registered with edges "
                f"{hist.edges}, asked for {tuple(edges)}"
            )
        return hist

    def names(self) -> List[str]:
        """Registered metric names in registration order."""
        return list(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> Dict[str, object]:
        """Flatten to plain values: counters/gauges to numbers,
        histograms to snapshot dicts."""
        out: Dict[str, object] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, (Counter, Gauge)):
                out[name] = inst.value
            else:
                out[name] = inst.snapshot()  # type: ignore[union-attr]
        return out

    def flat(self, prefix: str = "") -> Dict[str, float]:
        """Scalar-only view for table rows: histograms contribute
        ``<name>_mean`` and ``<name>_total``."""
        out: Dict[str, float] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, (Counter, Gauge)):
                out[prefix + name] = inst.value
            else:
                hist: Histogram = inst  # type: ignore[assignment]
                out[prefix + name + "_mean"] = hist.mean
                out[prefix + name + "_total"] = hist.total
        return out


def merge_bucket_lists(counts: Iterable[Sequence[int]]) -> List[int]:
    """Element-wise sum of equal-length bucket-count lists."""
    merged: List[int] = []
    for row in counts:
        if not merged:
            merged = list(row)
        else:
            if len(row) != len(merged):
                raise ConfigurationError("bucket lists have different lengths")
            for i, c in enumerate(row):
                merged[i] += c
    return merged

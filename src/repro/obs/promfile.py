"""Prometheus textfile-collector exposition of a MetricsRegistry.

The campaign executor (and anything else holding a
:class:`~repro.telemetry.metrics.MetricsRegistry`) can drop its
current instrument values into a ``.prom`` file at each heartbeat; a
node_exporter textfile collector — or a plain ``curl``-less scrape of
the artifact — picks it up from there.  No client library, no HTTP
server: the exposition format is plain text, and the write is atomic
(same temp-file + replace discipline as the watch state) so a scraper
never reads half a file.

Counters map to ``counter``, gauges to ``gauge``, histograms to the
conventional ``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet with
cumulative bucket counts and a ``+Inf`` bucket.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import List, Union

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "write_prometheus"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize(name: str) -> str:
    """Coerce a registry name into a legal Prometheus metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    # Integral values print without a trailing .0 — matches what
    # Prometheus client libraries emit and keeps counters readable.
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Exposition-format text for every instrument in ``registry``."""
    lines: List[str] = []
    for name in registry.names():
        inst = registry._instruments[name]
        metric = _sanitize(prefix + name)
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_fmt(inst.value)}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for edge, count in zip(inst.edges, inst.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(edge)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {inst.total}')
            lines.append(f"{metric}_sum {_fmt(inst._sum)}")
            lines.append(f"{metric}_count {inst.total}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry,
    path: Union[str, Path],
    prefix: str = "repro_",
) -> None:
    """Atomically write the exposition text to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    tmp.write_text(render_prometheus(registry, prefix=prefix))
    os.replace(tmp, target)

"""Operational observability: trace export, live watch, perf baselines.

Three consumers of the instrumentation the rest of the repo produces:

* :mod:`repro.obs.trace_export` — convert a span JSONL file recorded
  by :mod:`repro.telemetry.spans` into Chrome trace-event JSON,
  loadable in Perfetto (``gc-caching obs trace-export spans.jsonl``).
* :mod:`repro.obs.watch` — the campaign executor's heartbeat state
  file (atomic writes, torn-read-free) and the terminal status board
  behind ``gc-caching campaign watch``.
* :mod:`repro.obs.promfile` — render a
  :class:`~repro.telemetry.metrics.MetricsRegistry` in the Prometheus
  textfile-collector exposition format (``--metrics-out``).
* :mod:`repro.obs.bench_compare` — the perf flight recorder's gate:
  diff two ``BENCH_<name>.json`` files written by
  ``benchmarks/_harness.py`` and flag metric regressions beyond a
  tolerance (``gc-caching obs bench-compare A.json B.json``).

See ``docs/observability.md`` for the end-to-end workflow.
"""

from repro.obs.bench_compare import compare_benchmarks, load_bench, render_compare
from repro.obs.promfile import render_prometheus, write_prometheus
from repro.obs.trace_export import load_spans, to_chrome_trace
from repro.obs.watch import read_watch_state, render_board, write_watch_state

__all__ = [
    "compare_benchmarks",
    "load_bench",
    "render_compare",
    "render_prometheus",
    "write_prometheus",
    "load_spans",
    "to_chrome_trace",
    "read_watch_state",
    "render_board",
    "write_watch_state",
]

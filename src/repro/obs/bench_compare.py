"""The perf flight recorder's gate: diff two ``BENCH_<name>.json``.

``benchmarks/_harness.py`` gives every bench a uniform result file:
named metrics, each with a value, a unit, and a **direction** —
``"lower"`` for costs (wall seconds) and ``"higher"`` for wins
(speedups, throughput).  :func:`compare_benchmarks` takes a baseline
and a candidate file and flags each shared metric whose value moved in
the *bad* direction by more than ``tolerance`` (a fraction: 0.15 means
"15 % worse fails").  Improvements never fail, metrics present on only
one side are reported as skipped (benches grow columns over time), and
the CLI exits nonzero on any regression — which is the whole CI gate.

Raw wall times only compare meaningfully on similar machines; CI
therefore gates on machine-independent *derived* metrics (speedup
ratios) via ``--metrics``, with the machine fingerprints of both files
echoed in the report so a human can judge an apples-to-oranges diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError

__all__ = ["load_bench", "compare_benchmarks", "render_compare"]

_DIRECTIONS = ("lower", "higher")


def load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate one harness-emitted bench file."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read bench file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"bench file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict) or "metrics" not in data:
        raise ConfigurationError(
            f"bench file {path} has no 'metrics' section — was it written "
            "by benchmarks/_harness.py?"
        )
    for name, metric in data["metrics"].items():
        if not isinstance(metric, dict) or "value" not in metric:
            raise ConfigurationError(
                f"bench file {path}: metric {name!r} has no value"
            )
        if metric.get("direction", "lower") not in _DIRECTIONS:
            raise ConfigurationError(
                f"bench file {path}: metric {name!r} direction must be one "
                f"of {_DIRECTIONS}, got {metric.get('direction')!r}"
            )
    return data


def _relative_change(base: float, cand: float) -> float:
    if base == 0:
        return 0.0 if cand == 0 else float("inf")
    return (cand - base) / abs(base)


def compare_benchmarks(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float = 0.15,
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Per-metric verdicts for ``candidate`` against ``baseline``.

    Returns a report dict::

        {"bench": ..., "tolerance": ...,
         "results": [{"metric", "baseline", "candidate", "direction",
                      "change", "status"}, ...],
         "regressions": [names...], "skipped": [names...]}

    ``status`` is ``"ok"``, ``"regression"``, or ``"skipped"`` (metric
    absent on one side, or excluded by ``metrics``).  ``change`` is the
    signed relative change of the candidate value.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    wanted = set(metrics) if metrics is not None else None
    base_metrics = baseline.get("metrics", {})
    cand_metrics = candidate.get("metrics", {})
    names = sorted(set(base_metrics) | set(cand_metrics))
    results: List[Dict[str, Any]] = []
    regressions: List[str] = []
    skipped: List[str] = []
    for name in names:
        if wanted is not None and name not in wanted:
            skipped.append(name)
            continue
        base = base_metrics.get(name)
        cand = cand_metrics.get(name)
        if base is None or cand is None:
            skipped.append(name)
            results.append(
                {
                    "metric": name,
                    "baseline": None if base is None else base["value"],
                    "candidate": None if cand is None else cand["value"],
                    "direction": (base or cand).get("direction", "lower"),
                    "change": None,
                    "status": "skipped",
                }
            )
            continue
        direction = base.get("direction", "lower")
        change = _relative_change(float(base["value"]), float(cand["value"]))
        # "lower" metrics regress when they grow; "higher" ones when
        # they shrink.  Tolerance bounds movement in the bad direction.
        if direction == "lower":
            bad = change > tolerance
        else:
            bad = change < -tolerance
        status = "regression" if bad else "ok"
        if bad:
            regressions.append(name)
        results.append(
            {
                "metric": name,
                "baseline": float(base["value"]),
                "candidate": float(cand["value"]),
                "direction": direction,
                "change": change,
                "status": status,
            }
        )
    if wanted is not None:
        missing = wanted - set(names)
        if missing:
            raise ConfigurationError(
                f"--metrics names not present in either file: "
                f"{', '.join(sorted(missing))}"
            )
    return {
        "bench": candidate.get("bench", baseline.get("bench", "?")),
        "tolerance": tolerance,
        "baseline_machine": baseline.get("machine", {}),
        "candidate_machine": candidate.get("machine", {}),
        "baseline_git_sha": baseline.get("git_sha"),
        "candidate_git_sha": candidate.get("git_sha"),
        "results": results,
        "regressions": regressions,
        "skipped": skipped,
    }


def render_compare(report: Dict[str, Any]) -> str:
    """Human-readable verdict table for one compare report."""
    from repro.analysis.tables import format_table

    rows = []
    for r in report["results"]:
        rows.append(
            {
                "metric": r["metric"],
                "baseline": "-" if r["baseline"] is None else f"{r['baseline']:.6g}",
                "candidate": "-" if r["candidate"] is None else f"{r['candidate']:.6g}",
                "direction": r["direction"],
                "change": "-" if r["change"] is None else f"{r['change']:+.1%}",
                "status": r["status"],
            }
        )
    lines = [
        f"bench {report['bench']!r}: baseline "
        f"{report.get('baseline_git_sha') or '?'} vs candidate "
        f"{report.get('candidate_git_sha') or '?'} "
        f"(tolerance {report['tolerance']:.0%})"
    ]
    base_node = report.get("baseline_machine", {}).get("node")
    cand_node = report.get("candidate_machine", {}).get("node")
    if base_node and cand_node and base_node != cand_node:
        lines.append(
            f"note: different machines ({base_node} vs {cand_node}) — "
            "raw wall times are not comparable, gate on derived ratios"
        )
    if rows:
        lines.append(format_table(rows, title="metric comparison"))
    if report["regressions"]:
        lines.append(
            f"REGRESSION in {len(report['regressions'])} metric(s): "
            + ", ".join(report["regressions"])
        )
    else:
        lines.append("ok: no metric regressed beyond tolerance")
    return "\n".join(lines)

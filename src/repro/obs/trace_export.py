"""Span JSONL → Chrome trace-event JSON (Perfetto/about:tracing).

The span file may freely mix record types (spans share the telemetry
JSONL interchange format); only ``{"type": "span"}`` lines are
exported.  Each span becomes one complete event (``"ph": "X"``) with
microsecond timestamps relative to the earliest span in the file, laid
out on its recording ``(pid, tid)`` track — Perfetto then renders the
campaign → cell → compile/attach/replay/store hierarchy as nested
slices per worker process, and the span/parent ids ride along in
``args`` for programmatic consumers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.telemetry.sinks import read_jsonl
from repro.telemetry.spans import Span

__all__ = ["load_spans", "to_chrome_trace", "export_chrome_trace"]


def load_spans(path: Union[str, Path]) -> List[Span]:
    """Parse the span records out of a (possibly mixed) JSONL file."""
    return [Span.from_record(r) for r in read_jsonl(path, kinds=("span",))]


def to_chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """Spans → a Chrome trace-event document (JSON-ready dict).

    Timestamps are rebased so the earliest span starts at 0 µs (epoch
    microseconds overflow the 53-bit float mantissa the viewers use).
    Process/thread name metadata events label each worker's track.
    """
    events: List[Dict[str, Any]] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    t0 = min(s.start for s in spans)
    seen_tracks = set()
    for s in spans:
        args: Dict[str, Any] = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
        }
        args.update(s.attributes)
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": "repro",
                "ts": (s.start - t0) * 1e6,
                "dur": s.seconds * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
        if s.pid not in seen_tracks:
            seen_tracks.add(s.pid)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": s.pid,
                    "tid": 0,
                    "args": {"name": f"pid {s.pid}"},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    spans_path: Union[str, Path], out: Optional[Union[str, Path]] = None
) -> str:
    """Export ``spans_path`` to Chrome trace JSON; return the JSON text.

    When ``out`` is given the document is also written there (the CLI
    prints to stdout otherwise, for ``> trace.json`` piping).
    """
    document = to_chrome_trace(load_spans(spans_path))
    text = json.dumps(document, separators=(",", ":"))
    if out is not None:
        out_path = Path(out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(text + "\n")
    return text

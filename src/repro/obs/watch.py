"""The campaign heartbeat state file and the live watch board.

The executor heartbeats a single small JSON document (``watch.json``
in the campaign directory) describing the run as of "now": totals,
per-worker in-flight cells, throughput, ETA.  Writes go through a
pid-unique temporary file plus :func:`os.replace`, so a concurrent
reader — ``gc-caching campaign watch`` polling from another terminal,
or a Prometheus textfile collector — always sees a complete document,
never a torn one, no locks involved.  The newest write wins, which is
exactly right for a "current status" file.

Readers treat an unreadable file as "no state yet" rather than an
error: the watcher may start before the run does, or outlive it.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "WATCH_FILENAME",
    "write_watch_state",
    "read_watch_state",
    "render_board",
    "watch_loop",
]

WATCH_FILENAME = "watch.json"

_TMP_COUNTER = itertools.count()


def write_watch_state(path: Union[str, Path], state: Dict[str, Any]) -> None:
    """Atomically replace ``path`` with ``state`` as JSON.

    The temporary file name embeds the writer's pid, thread id, and a
    process-local counter, so concurrent writers (two resumed runs
    racing, or several threads hammering the file) never stomp each
    other's half-written temp file; each ``os.replace`` is atomic on
    POSIX and Windows alike, and the newest write wins.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(
        f".{target.name}.{os.getpid()}."
        f"{threading.get_ident()}.{next(_TMP_COUNTER)}.tmp"
    )
    tmp.write_text(json.dumps(state, sort_keys=True) + "\n")
    os.replace(tmp, target)


def read_watch_state(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load the current state, or ``None`` when absent/unreadable."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _bar(done: int, total: int, width: int = 32) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * min(1.0, done / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_board(state: Dict[str, Any], now: Optional[float] = None) -> str:
    """One refresh of the terminal status board, as plain text."""
    now = time.time() if now is None else now
    total = int(state.get("cells", 0))
    done = int(state.get("done", 0))
    quarantined = int(state.get("quarantined", 0))
    age = now - float(state.get("ts", now))
    lines = [
        f"campaign {state.get('name', '?')!r} · run {state.get('run', '?')} · "
        f"{'finished' if state.get('finished') else 'running'} "
        f"(heartbeat {age:.1f}s ago)",
        f"{_bar(done, total)} {done}/{total} cells done"
        + (f" · {quarantined} quarantined" if quarantined else ""),
        f"memoized {state.get('memo_hits', 0)} · computed "
        f"{state.get('computed', 0)} · attempts {state.get('attempts', 0)} · "
        f"failed attempts {state.get('failures', 0)}",
        f"throughput {float(state.get('accesses_per_sec', 0.0)):,.0f} "
        f"accesses/s · store hit ratio "
        f"{float(state.get('store_hit_ratio', 0.0)):.2f} · elapsed "
        f"{_fmt_duration(state.get('elapsed_seconds'))} · ETA "
        f"{_fmt_duration(state.get('eta_seconds'))}",
    ]
    running: List[Dict[str, Any]] = state.get("running", [])
    if running:
        lines.append(f"in flight ({len(running)} worker(s)):")
        for row in running:
            # Pre-cluster heartbeats have no mode field; label them as
            # the offline cells they were rather than guessing.
            mode = row.get("mode", "offline")
            mode_part = f" [{mode}]" if mode != "offline" else ""
            lines.append(
                f"  pid {row.get('pid', '?')}: cell #{row.get('index', '?')} "
                f"{row.get('policy', '?')}/k={row.get('capacity', '?')} "
                f"trace={row.get('trace', '?')}{mode_part} attempt "
                f"{row.get('attempt', '?')} · "
                f"{_fmt_duration(row.get('seconds'))}"
            )
    elif not state.get("finished"):
        lines.append("in flight: none (between cells)")
    return "\n".join(lines)


def watch_loop(
    directory: Union[str, Path],
    interval: float = 1.0,
    once: bool = False,
    stream=None,
    clock=time.time,
    sleep=time.sleep,
) -> int:
    """Poll a campaign directory's heartbeat and render the board.

    ``once=True`` renders a single frame and returns (scripts, tests,
    CI).  The continuous mode redraws every ``interval`` seconds until
    the state reports ``finished`` or the user interrupts.  Returns a
    shell exit code: 0 normally, 1 when no state file ever appeared in
    once-mode.
    """
    import sys

    stream = sys.stdout if stream is None else stream
    path = Path(directory) / WATCH_FILENAME
    while True:
        state = read_watch_state(path)
        if state is None:
            frame = (
                f"no heartbeat yet at {path} "
                "(campaign not started, or an old run without heartbeats)"
            )
        else:
            frame = render_board(state, now=clock())
        if not once:
            # ANSI clear + home keeps the board in place without
            # depending on curses; piped output degrades to frames.
            stream.write("\x1b[2J\x1b[H" if stream.isatty() else "")
        stream.write(frame + "\n")
        stream.flush()
        if once:
            return 0 if state is not None else 1
        if state is not None and state.get("finished"):
            return 0
        try:
            sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0

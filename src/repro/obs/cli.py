"""``gc-caching obs`` subcommand: trace-export and bench-compare.

Observability post-processing lives here; the *live* side (``campaign
watch``) sits with the campaign CLI because it is addressed by
campaign directory.  Both handlers return ``(text, exit_code)`` so the
main dispatcher can propagate nonzero exits (the bench-compare CI gate
depends on it).
"""

from __future__ import annotations

import argparse
from typing import List, Tuple

from repro.obs.bench_compare import (
    compare_benchmarks,
    load_bench,
    render_compare,
)
from repro.obs.trace_export import export_chrome_trace
from repro.errors import ConfigurationError

__all__ = ["add_obs_parser", "run_obs_command"]


def _csv_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def add_obs_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``obs`` subparser tree to the main CLI."""
    p = sub.add_parser(
        "obs",
        help="observability tools (span trace export, bench regression gate)",
    )
    action = p.add_subparsers(dest="obs_command", required=True)

    p_trace = action.add_parser(
        "trace-export",
        help="convert a span JSONL file to Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing)",
    )
    p_trace.add_argument("spans", help="span JSONL file (--trace-spans output)")
    p_trace.add_argument(
        "--out",
        default=None,
        help="write the trace here instead of stdout",
    )

    p_cmp = action.add_parser(
        "bench-compare",
        help="diff two BENCH_<name>.json files; exit nonzero on regression",
    )
    p_cmp.add_argument("baseline", help="baseline BENCH_*.json")
    p_cmp.add_argument("candidate", help="candidate BENCH_*.json")
    p_cmp.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional movement in the bad direction "
        "(default 0.15 = 15%%)",
    )
    p_cmp.add_argument(
        "--metrics",
        type=_csv_list,
        default=None,
        metavar="M1,M2,...",
        help="gate only these metrics (default: every shared metric); "
        "use machine-independent ratios when baseline and candidate "
        "come from different machines",
    )


def run_obs_command(ns: argparse.Namespace) -> Tuple[str, int]:
    """Dispatch one ``obs`` subcommand; returns (output, exit code)."""
    if ns.obs_command == "trace-export":
        text = export_chrome_trace(ns.spans, out=ns.out)
        if ns.out:
            return f"wrote Chrome trace to {ns.out}", 0
        return text, 0
    if ns.obs_command == "bench-compare":
        report = compare_benchmarks(
            load_bench(ns.baseline),
            load_bench(ns.candidate),
            tolerance=ns.tolerance,
            metrics=ns.metrics,
        )
        return render_compare(report), 1 if report["regressions"] else 0
    raise ConfigurationError(
        f"unknown obs command {ns.obs_command!r}"
    )  # pragma: no cover

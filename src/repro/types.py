"""Shared value types for the GC caching library.

The simulator models the Granularity-Change Caching Problem
(Definition 1 of the paper): requests arrive for *items*; items are
partitioned into *blocks* of at most ``B`` items; on a miss the cache
may load any subset of the missed item's block (containing the item)
for a single unit of cost.

Items and blocks are dense non-negative integers throughout the
library; traces are NumPy ``int64`` arrays.  The dataclasses here are
small, immutable records exchanged between policies, the engine, and
the analysis layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

__all__ = [
    "ItemId",
    "BlockId",
    "HitKind",
    "AccessOutcome",
    "SimResult",
]

#: Type alias for item identifiers (dense, non-negative ints).
ItemId = int
#: Type alias for block identifiers (dense, non-negative ints).
BlockId = int


class HitKind(enum.Enum):
    """Classification of a single access, following §2 of the paper.

    * ``MISS`` — the requested item was not resident; unit cost charged.
    * ``TEMPORAL_HIT`` — the item was resident because of a previous
      access *to the item itself* (it was requested before and kept),
      or it is a repeat hit to an item first served spatially.
    * ``SPATIAL_HIT`` — the *first* hit to an item whose residency was
      created as a side effect of a different item's miss in the same
      block.  Per §2: "Any hits to item I beyond the first are due to
      temporal locality, since I would have been brought in cache
      anyway."
    """

    MISS = "miss"
    TEMPORAL_HIT = "temporal"
    SPATIAL_HIT = "spatial"

    @property
    def is_hit(self) -> bool:
        """``True`` for either hit kind."""
        return self is not HitKind.MISS


@dataclass(frozen=True)
class AccessOutcome:
    """The result of a single ``policy.access(item)`` call.

    Attributes
    ----------
    item:
        The requested item.
    hit:
        Whether the item was resident when requested.
    loaded:
        Items brought into the cache by this access (empty on a hit).
        Must be a subset of the requested item's block and contain the
        item itself; the engine enforces this.
    evicted:
        Items removed from the cache by this access.
    """

    item: ItemId
    hit: bool
    loaded: FrozenSet[ItemId] = frozenset()
    evicted: FrozenSet[ItemId] = frozenset()

    def __post_init__(self) -> None:
        if self.hit and self.loaded:
            raise ValueError("a hit must not load items")
        if not self.hit and self.item not in self.loaded:
            raise ValueError("a miss must load the requested item")


@dataclass
class SimResult:
    """Aggregate statistics of one simulation run.

    ``misses`` counts unit-cost loads (the objective of Definition 1).
    ``spatial_hits`` and ``temporal_hits`` decompose the hits per the
    paper's locality taxonomy.  ``loaded_items`` counts every item
    brought into cache (≥ ``misses``); ``loaded_items / misses`` is the
    mean load-set size, i.e. how aggressively the policy exploited the
    free-subset rule.
    """

    accesses: int = 0
    misses: int = 0
    temporal_hits: int = 0
    spatial_hits: int = 0
    loaded_items: int = 0
    evicted_items: int = 0
    policy: str = ""
    capacity: int = 0
    metadata: dict = field(default_factory=dict)
    #: Why ``simulate(fast=True)`` fell back to the referee
    #: (``"unsupported-policy"``, ``"mapping-mismatch"``,
    #: ``"warm-policy"``, ``"observed"``), or ``None`` when the fast
    #: path ran or was not requested.  Telemetry only: excluded from
    #: equality so referee and fast runs still compare bit-identical.
    fallback_reason: Optional[str] = field(default=None, compare=False)

    @property
    def hits(self) -> int:
        """Total hits of either kind."""
        return self.temporal_hits + self.spatial_hits

    @property
    def miss_ratio(self) -> float:
        """Misses per access (the paper's *fault rate*)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        """Hits per access."""
        return 1.0 - self.miss_ratio if self.accesses else 0.0

    @property
    def spatial_fraction(self) -> float:
        """Fraction of hits that are spatial (0.0 when there are no
        hits) — the paper's headline per-trace locality signal."""
        return self.spatial_hits / self.hits if self.hits else 0.0

    @property
    def mean_load_set_size(self) -> float:
        """Average number of items loaded per miss, i.e. how
        aggressively the policy exploited the free-subset rule."""
        return self.loaded_items / self.misses if self.misses else 0.0

    @property
    def mean_load_size(self) -> float:
        """Deprecated alias of :attr:`mean_load_set_size`."""
        return self.mean_load_set_size

    def as_row(self) -> dict:
        """Flatten into a plain dict suitable for tables / CSV export."""
        row = {
            "policy": self.policy,
            "capacity": self.capacity,
            "accesses": self.accesses,
            "misses": self.misses,
            "temporal_hits": self.temporal_hits,
            "spatial_hits": self.spatial_hits,
            "miss_ratio": self.miss_ratio,
            "spatial_fraction": self.spatial_fraction,
            "mean_load_size": self.mean_load_size,
        }
        if self.fallback_reason is not None:
            row["fallback_reason"] = self.fallback_reason
        row.update(self.metadata)
        return row

    def merged_with(self, other: "SimResult") -> "SimResult":
        """Combine two results (e.g. from trace shards) into one."""
        if self.policy != other.policy or self.capacity != other.capacity:
            raise ValueError("cannot merge results from different configurations")
        return SimResult(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
            temporal_hits=self.temporal_hits + other.temporal_hits,
            spatial_hits=self.spatial_hits + other.spatial_hits,
            loaded_items=self.loaded_items + other.loaded_items,
            evicted_items=self.evicted_items + other.evicted_items,
            policy=self.policy,
            capacity=self.capacity,
            metadata={**self.metadata, **other.metadata},
        )


#: Convenience tuple describing the three Table 1 comparison settings.
TABLE1_SETTINGS: Tuple[str, ...] = (
    "constant_augmentation",
    "ratio_equals_augmentation",
    "constant_ratio",
)

"""Granularity-Change Caching: a reproduction of Beckmann, Gibbons &
McGuffey, *Spatial Locality and Granularity Change in Caching*
(SPAA 2022, arXiv:2205.14543).

The package provides, end to end:

* a referee-validated trace-driven simulator for the GC caching model
  (:mod:`repro.core`),
* every policy the paper discusses — Item/Block caches, the IBLP
  contribution, marking and GCM, offline Belady variants
  (:mod:`repro.policies`),
* the adversarial constructions behind Theorems 2–4 and the
  Sleator–Tarjan bound (:mod:`repro.adversary`),
* closed-form bounds for Theorems 2–11, Table 1 and Table 2
  (:mod:`repro.bounds`),
* the §3 NP-completeness reduction with exact offline solvers
  (:mod:`repro.offline`),
* the locality model: empirical f(n)/g(n) profiling and analytic
  families (:mod:`repro.locality`),
* workload generators, sweep/LP analysis tooling, and the experiment
  drivers that regenerate every table and figure
  (:mod:`repro.workloads`, :mod:`repro.analysis`,
  :mod:`repro.experiments`).

Quickstart
----------
>>> from repro import FixedBlockMapping, Trace, simulate, IBLP, ItemLRU
>>> import numpy as np
>>> mapping = FixedBlockMapping(universe=1024, block_size=8)
>>> trace = Trace(np.arange(1024), mapping)           # one sequential scan
>>> simulate(IBLP(64, mapping), trace).misses < simulate(
...     ItemLRU(64, mapping), trace).misses
True
"""

from repro.core import (
    BlockMapping,
    Engine,
    ExplicitBlockMapping,
    FixedBlockMapping,
    Trace,
    simulate,
)
from repro.policies import (
    GCM,
    IBLP,
    AdaptiveIBLP,
    AThresholdLRU,
    BeladyBlock,
    BeladyItem,
    BlockFIFO,
    BlockFirstIBLP,
    BlockLRU,
    ItemClock,
    ItemFIFO,
    ItemLFU,
    ItemLRU,
    ItemMRU,
    ItemRandom,
    MarkAllGCM,
    MarkingLRU,
    PartialGCM,
    Policy,
    make_policy,
    policy_names,
)
from repro.types import AccessOutcome, HitKind, SimResult

# Importing the offline heuristics registers the `belady-gc` policy so
# `make_policy` always sees the full registry.
import repro.offline.heuristics  # noqa: E402,F401  (registration side effect)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BlockMapping",
    "FixedBlockMapping",
    "ExplicitBlockMapping",
    "Trace",
    "simulate",
    "Engine",
    # types
    "AccessOutcome",
    "HitKind",
    "SimResult",
    # policies
    "Policy",
    "make_policy",
    "policy_names",
    "ItemLRU",
    "ItemFIFO",
    "ItemMRU",
    "ItemClock",
    "ItemLFU",
    "ItemRandom",
    "BlockLRU",
    "BlockFIFO",
    "IBLP",
    "BlockFirstIBLP",
    "AdaptiveIBLP",
    "AThresholdLRU",
    "MarkingLRU",
    "GCM",
    "MarkAllGCM",
    "PartialGCM",
    "BeladyItem",
    "BeladyBlock",
]

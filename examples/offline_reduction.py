#!/usr/bin/env python
"""NP-completeness, executed: the §3 reduction and exact solvers.

Walks through Figure 2's worked example — variable-size items A (2),
B (1), C (3) with cache 3 — generates the corresponding GC instance,
solves both sides exactly, and shows the polynomial OPT bracket
(certified lower bound + clairvoyant heuristic upper bound) that the
large-scale experiments rely on when exact solving is hopeless.

Run:  python examples/offline_reduction.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.offline import (
    VSCInstance,
    gc_opt_lower,
    gc_opt_upper,
    reduce_vsc_to_gc,
    solve_gc_exact,
    solve_vsc_exact,
)
from repro.offline.reduction import figure2_instance


def main() -> None:
    vsc, reduced = figure2_instance()
    print("Figure 2 instance: sizes", list(vsc.sizes), "cache", vsc.capacity)
    print("  VSC trace:", [("A", "B", "C")[i] for i in vsc.trace])
    print("  active sets:", reduced.active_sets)
    print("  generated GC trace:", reduced.trace.items.tolist())
    v = solve_vsc_exact(vsc)
    g = solve_gc_exact(reduced.trace, reduced.capacity)
    print(f"  exact VSC optimum = {v},  exact GC optimum = {g}  "
          f"({'EQUAL — reduction preserves cost' if v == g else 'MISMATCH!'})")
    print()

    rng = np.random.default_rng(99)
    rows = []
    for t in range(8):
        n = int(rng.integers(2, 4))
        sizes = [int(rng.integers(1, 4)) for _ in range(n)]
        cap = max(sizes) + int(rng.integers(0, 3))
        trace = [int(rng.integers(n)) for _ in range(int(rng.integers(5, 9)))]
        inst = VSCInstance.build(sizes, cap, trace, name=f"rand{t}")
        red = reduce_vsc_to_gc(inst)
        v = solve_vsc_exact(inst)
        g = solve_gc_exact(red.trace, red.capacity)
        rows.append(
            {
                "instance": inst.name,
                "sizes": str(sizes),
                "cache": cap,
                "vsc_opt": v,
                "gc_opt": g,
                "equal": v == g,
                "poly_lower": gc_opt_lower(red.trace, red.capacity),
                "poly_upper": gc_opt_upper(red.trace, red.capacity),
            }
        )
    print(format_table(rows, title="random instances through the reduction"))
    print()
    print(
        "Offline GC caching is NP-complete (the reduction above is the\n"
        "proof's construction), so large experiments bracket OPT with\n"
        "poly_lower/poly_upper instead of solving exactly."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Locality profiling: measure f(n)/g(n) and predict fault rates (§7).

Profiles several workloads, fits the polynomial locality family of
§7.3, then evaluates the Theorem 8 lower bound and the Theorem 11 IBLP
upper bound on the *empirical* profile — and compares them with
measured miss ratios.

Run:  python examples/locality_profiling.py
"""

from repro import IBLP, BlockLRU, ItemLRU, simulate
from repro.analysis.tables import format_table
from repro.bounds.locality import fault_rate_lower, iblp_fault_rate_upper
from repro.locality.profile import profile_trace
from repro.workloads import (
    block_runs,
    markov_spatial,
    page_cache_workload,
    zipf_items,
)

K = 128
B = 8


def main() -> None:
    workloads = {
        "zipf (temporal only)": zipf_items(
            40_000, 2048, alpha=1.0, block_size=B, seed=1
        ),
        "block runs (spatial only)": block_runs(
            40_000, 2048, block_size=B, seed=2
        ),
        "markov stay=0.85 (mixed)": markov_spatial(
            40_000, 2048, block_size=B, stay=0.85, seed=3
        ),
        "page cache": page_cache_workload(
            40_000, files=256, pages_per_file=B, seed=4
        ),
    }
    rows = []
    for name, trace in workloads.items():
        profile = profile_trace(trace)
        c, p, gamma = profile.fit_polynomial()
        loc = profile.to_bounds()
        lower = fault_rate_lower(loc, K)
        upper = iblp_fault_rate_upper(loc, K // 2, K - K // 2, B)
        measured = {
            "item-lru": simulate(ItemLRU(K, trace.mapping), trace).miss_ratio,
            "block-lru": simulate(BlockLRU(K, trace.mapping), trace).miss_ratio,
            "iblp": simulate(IBLP(K, trace.mapping), trace).miss_ratio,
        }
        rows.append(
            {
                "workload": name,
                "fit_p": p,
                "fit_gamma": gamma,
                "thm8_lower": lower,
                "thm11_iblp_upper": upper,
                **{f"measured_{k}": v for k, v in measured.items()},
            }
        )
    print(
        format_table(
            rows,
            title=f"Locality model on empirical profiles (k={K}, B={B})",
            floatfmt=".3g",
        )
    )
    print()
    print(
        "thm8_lower is the worst case over traces with this profile —\n"
        "concrete traces may do better; thm11 bounds IBLP from above.\n"
        "High fit_gamma (spatial locality) is where block-aware\n"
        "policies separate from the item baseline."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate GC caching policies on a mixed workload.

Builds the paper's motivating scenario — a hot item set (temporal
locality) interleaved with streaming whole-block reads (spatial
locality) — and compares the two baselines from §2 against IBLP (§5)
and GCM (§6), printing the miss breakdown the engine's referee
certifies.

Run:  python examples/quickstart.py
"""

from repro import GCM, IBLP, BlockLRU, ItemLRU, simulate
from repro.analysis.tables import format_table
from repro.workloads import hot_and_stream


def main() -> None:
    # 64 hot items scattered one-per-block, plus 256 streaming blocks
    # of 8 items each; 55% of accesses go to the hot set.
    trace = hot_and_stream(
        length=60_000,
        hot_items=64,
        stream_blocks=256,
        block_size=8,
        hot_fraction=0.55,
        seed=2022,
    )
    capacity = 256
    print(
        f"workload: {len(trace):,} accesses, universe={trace.universe:,} "
        f"items, B={trace.block_size}, cache k={capacity}"
    )

    rows = []
    for policy in (
        ItemLRU(capacity, trace.mapping),
        BlockLRU(capacity, trace.mapping),
        IBLP(capacity, trace.mapping),  # even split i = b = k/2
        IBLP(capacity, trace.mapping, item_layer_size=3 * capacity // 4),
        GCM(capacity, trace.mapping, seed=1),
    ):
        result = simulate(policy, trace)
        row = result.as_row()
        if isinstance(policy, IBLP):
            row["policy"] = f"iblp(i={policy.item_layer_size})"
        rows.append(row)

    print()
    print(
        format_table(
            rows,
            columns=[
                "policy",
                "misses",
                "miss_ratio",
                "temporal_hits",
                "spatial_hits",
                "mean_load_size",
            ],
            title="hot-items + streaming-blocks (the §5.1 motivation)",
        )
    )
    print()
    print(
        "IBLP serves the hot set from its item layer and the stream from\n"
        "its block layer; each baseline sacrifices one kind of locality."
    )


if __name__ == "__main__":
    main()

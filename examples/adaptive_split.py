#!/usr/bin/env python
"""Adaptive layer splitting: hedging §5.3's unknown-optimal-size problem.

The paper shows (§5.3, Figure 6) that IBLP's best layer split depends
on the offline cache size it is compared against — equivalently, on
how temporal vs spatial the workload turns out to be — and that a
fixed split degrades badly outside its design regime.  This example
runs two fixed splits and the library's ARC-style
:class:`~repro.policies.adaptive_iblp.AdaptiveIBLP` across a regime
shift: a temporal-heavy phase followed by a spatial-heavy phase.

Run:  python examples/adaptive_split.py
"""

import numpy as np

from repro import IBLP, AdaptiveIBLP, simulate
from repro.analysis.tables import format_table
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.workloads import hot_and_stream, interleaved_streams

K, B = 128, 8


def build_phase_shift_trace(length_per_phase: int = 25_000) -> Trace:
    """Temporal-heavy phase, then spatial-heavy phase, shared universe."""
    temporal = hot_and_stream(
        length=length_per_phase,
        hot_items=int(0.8 * K),
        stream_blocks=4 * K // B,
        block_size=B,
        hot_fraction=0.95,
        seed=1,
    )
    spatial = interleaved_streams(
        length=length_per_phase,
        streams=12,
        blocks_per_stream=32,
        block_size=B,
    )
    universe = max(temporal.universe, spatial.universe)
    mapping = FixedBlockMapping(universe=universe, block_size=B)
    return Trace(
        np.concatenate([temporal.items, spatial.items]),
        mapping,
        {"generator": "phase_shift"},
    )


def main() -> None:
    trace = build_phase_shift_trace()
    print(
        f"phase-shift workload: {len(trace):,} accesses "
        f"(temporal half, then spatial half), k={K}, B={B}"
    )
    rows = []
    policies = {
        "fixed i=0.9k (temporal-tuned)": IBLP(
            K, trace.mapping, item_layer_size=int(0.9 * K)
        ),
        "fixed i=0.25k (spatial-tuned)": IBLP(
            K, trace.mapping, item_layer_size=int(0.25 * K)
        ),
        "fixed i=0.5k (even, §7.3)": IBLP(K, trace.mapping),
        "adaptive (ghost-tuned)": AdaptiveIBLP(K, trace.mapping),
    }
    for label, policy in policies.items():
        res = simulate(policy, trace)
        row = {
            "policy": label,
            "misses": res.misses,
            "miss_ratio": res.miss_ratio,
        }
        if isinstance(policy, AdaptiveIBLP):
            row["final_item_layer"] = policy.item_layer_target
        rows.append(row)
    print()
    print(format_table(rows, title="regime shift: fixed vs adaptive splits"))
    print()
    print(
        "Each fixed split collapses in the phase it was not tuned for;\n"
        "the adaptive split follows the regime (watch final_item_layer)\n"
        "— the library's answer to the paper's observation that no\n"
        "fixed policy is simultaneously competitive at every h."
    )


if __name__ == "__main__":
    main()

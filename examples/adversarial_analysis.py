#!/usr/bin/env python
"""Adversarial competitive analysis: watch the §4 theorems happen.

Builds the paper's worst-case constructions *adaptively* against live
policies and prints measured competitive ratios next to the closed-form
bounds (Theorems 2-4).  Everything is referee-validated: the adversary
can only request items, and the claimed OPT costs are certified by a
clairvoyant replay (``gc_opt_upper``).

Run:  python examples/adversarial_analysis.py
"""

from repro import (
    GCM,
    IBLP,
    AThresholdLRU,
    BlockLRU,
    ItemLRU,
    MarkingLRU,
)
from repro.adversary import (
    BlockCacheAdversary,
    GeneralAdversary,
    ItemCacheAdversary,
    SleatorTarjanAdversary,
)
from repro.analysis.competitive import measure_adversarial
from repro.analysis.tables import format_table
from repro.bounds import (
    block_cache_lower,
    gc_general_lower,
    general_a_lower,
    iblp_optimal_ratio,
    item_cache_lower,
    sleator_tarjan_lower,
)

K, H, B = 256, 48, 8


def main() -> None:
    print(f"game: online cache k={K}, offline OPT h={H}, block size B={B}")
    print(f"  Sleator-Tarjan bound:      {sleator_tarjan_lower(K, H):7.3f}")
    print(f"  Theorem 2 (item caches):   {item_cache_lower(K, H, B):7.3f}")
    print(f"  Theorem 4 (any policy):    {gc_general_lower(K, H, B):7.3f}")
    print(f"  Theorem 7 (IBLP, best split): {iblp_optimal_ratio(K, H, B):5.3f}")
    print()

    policies = {
        "item-lru": lambda m: ItemLRU(K, m),
        "marking-lru": lambda m: MarkingLRU(K, m),
        "block-lru": lambda m: BlockLRU(K, m),
        "athreshold(a=4)": lambda m: AThresholdLRU(K, m, a=4),
        "iblp": lambda m: IBLP(K, m),
        "gcm": lambda m: GCM(K, m),
    }

    rows = []
    for name, factory in policies.items():
        adv = GeneralAdversary(K, H, B)
        m = measure_adversarial(adv, factory, cycles=4, bracket_opt=True)
        a = max(max(c) for c in adv.probed_a)
        rows.append(
            {
                "policy": name,
                "probed_a": a,
                "measured_ratio": m.ratio_vs_claimed,
                "thm4_bound(a)": general_a_lower(K, H, B, a),
                "certified_opt<=": m.opt_upper,
            }
        )
    print(
        format_table(
            rows,
            title="Theorem 4 adversary: ratio matches the probed-a bound",
        )
    )
    print()

    rows = []
    for name, factory in policies.items():
        adv = ItemCacheAdversary(K, H, B)
        m = measure_adversarial(adv, factory, cycles=4)
        rows.append({"policy": name, "measured_ratio": m.ratio_vs_claimed})
    print(
        format_table(
            rows,
            title=f"Theorem 2 adversary (bound {item_cache_lower(K, H, B):.2f}): "
            "item caches pinned, block loaders escape",
        )
    )
    print()

    h3 = K // (2 * B)
    rows = []
    for name, factory in policies.items():
        adv = BlockCacheAdversary(K, h3, B)
        m = measure_adversarial(adv, factory, cycles=4)
        rows.append({"policy": name, "measured_ratio": m.ratio_vs_claimed})
    print(
        format_table(
            rows,
            title=f"Theorem 3 adversary at h={h3} "
            f"(bound {block_cache_lower(K, h3, B):.2f}): pollution hurts "
            "whole-block eviction",
        )
    )
    print()

    adv = SleatorTarjanAdversary(K, H, B)
    m = measure_adversarial(adv, lambda mp: ItemLRU(K, mp), cycles=4)
    print(
        f"Classical check: ST adversary vs LRU measures "
        f"{m.ratio_vs_claimed:.3f} (bound {sleator_tarjan_lower(K, H):.3f})"
    )


if __name__ == "__main__":
    main()

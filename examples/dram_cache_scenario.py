#!/usr/bin/env python
"""DRAM-cache scenario: 64-line rows at a granularity boundary.

Models the motivating system from the paper's introduction — a cache of
64 B lines in front of a memory organized in rows of 64 lines (B = 64),
as in die-stacked DRAM caches [Qureshi & Loh 2012; Jevdjic et al.].
Row-buffer-friendly bursts coexist with pointer-chase noise; the
question is how much of the row to pull into the cache on each miss.

Sweeps the cache size and prints, for each policy, the miss ratio and
how the hits decompose into temporal vs spatial — the quantity the GC
model is about.

Run:  python examples/dram_cache_scenario.py
"""

from repro import simulate, make_policy
from repro.analysis.tables import format_table
from repro.locality.profile import profile_trace
from repro.workloads import dram_cache_workload

POLICIES = ["item-lru", "block-lru", "iblp", "gcm", "athreshold-lru"]


def main() -> None:
    trace = dram_cache_workload(
        length=60_000,
        rows=512,
        lines_per_row=64,
        hot_row_fraction=0.08,
        burst_mean=10.0,
        noise_fraction=0.25,
        seed=7,
    )
    profile = profile_trace(trace, windows=[16, 256, 4096])
    ratios = profile.spatial_ratio()
    print(
        f"workload: {len(trace):,} accesses over {trace.universe:,} lines "
        f"({trace.mapping.num_blocks} rows of {trace.block_size})"
    )
    print(
        "spatial locality f/g at windows 16/256/4096: "
        + ", ".join(f"{r:.1f}" for r in ratios)
        + f"  (1 = none, {trace.block_size} = whole-row reuse)"
    )

    rows = []
    for k in (512, 2048, 4096):
        for name in POLICIES:
            res = simulate(make_policy(name, k, trace.mapping), trace)
            rows.append(
                {
                    "k": k,
                    "policy": name,
                    "miss_ratio": res.miss_ratio,
                    "temporal_hits": res.temporal_hits,
                    "spatial_hits": res.spatial_hits,
                    "mean_load": res.mean_load_size,
                }
            )
    print()
    print(format_table(rows, title="DRAM cache sweep (B = 64)"))
    print()
    print(
        "Row bursts reward row-granularity loads: the pure item cache\n"
        "pays several times more misses at every size. IBLP and GCM\n"
        "stay within a small factor of the best baseline at every size\n"
        "without knowing the workload regime in advance — the paper's\n"
        "robustness argument for granularity-aware policies (§4.4, §5)."
    )


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The execution environment has no ``wheel`` package and an older
setuptools, so PEP 660 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` use the legacy develop path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

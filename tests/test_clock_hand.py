"""ClockHand (second-chance) structure tests."""

import pytest

from repro.structs.clock_hand import ClockHand


def test_insert_and_contains():
    c = ClockHand()
    c.insert(1)
    c.insert(2)
    assert 1 in c and 2 in c
    assert len(c) == 2


def test_duplicate_insert_raises():
    c = ClockHand()
    c.insert(1)
    with pytest.raises(KeyError):
        c.insert(1)


def test_evict_empty_raises():
    with pytest.raises(KeyError):
        ClockHand().evict()


def test_second_chance_semantics():
    """Referenced entries survive one sweep; unreferenced are victims."""
    c = ClockHand()
    for x in (1, 2, 3):
        c.insert(x)  # all referenced on insert
    victim = c.evict()  # sweep clears bits, evicts one
    assert victim in (1, 2, 3)
    assert victim not in c
    # Re-reference a survivor: it must outlive an unreferenced peer.
    survivors = [x for x in (1, 2, 3) if x in c]
    c.reference(survivors[0])
    second = c.evict()
    assert second == survivors[1]


def test_referenced_item_survives_full_sweep():
    c = ClockHand()
    c.insert(1)
    c.insert(2)
    c.reference(1)
    c.reference(2)
    # Both referenced: eviction clears bits then evicts someone.
    v = c.evict()
    assert len(c) == 1
    assert v not in c


def test_remove_arbitrary():
    c = ClockHand()
    for x in range(5):
        c.insert(x)
    c.remove(2)
    assert 2 not in c
    assert len(c) == 4
    # Structure still functional after surgery.
    for _ in range(4):
        c.evict()
    assert len(c) == 0


def test_peek_victim_matches_evict():
    c = ClockHand()
    for x in range(4):
        c.insert(x)
    c.reference(0)
    predicted = c.peek_victim()
    assert predicted == c.evict()


def test_peek_victim_empty():
    assert ClockHand().peek_victim() is None

"""Adversary tests: each §4 construction realizes its bound."""

import pytest

from repro.adversary import (
    BlockCacheAdversary,
    GeneralAdversary,
    ItemCacheAdversary,
    SleatorTarjanAdversary,
)
from repro.bounds import (
    block_cache_lower,
    gc_general_lower,
    general_a_lower,
    item_cache_lower,
    sleator_tarjan_lower,
)
from repro.core.engine import simulate
from repro.errors import ConfigurationError
from repro.offline.heuristics import gc_opt_upper
from repro.policies import (
    GCM,
    IBLP,
    AThresholdLRU,
    BeladyItem,
    BlockLRU,
    ItemFIFO,
    ItemLRU,
    MarkingLRU,
)

K, H, B = 128, 32, 8


def _attack(adv_cls, policy_factory, cycles=4, **adv_kwargs):
    adv = adv_cls(**adv_kwargs)
    mapping = adv.make_mapping(cycles)
    run = adv.run(policy_factory(mapping), cycles=cycles)
    return adv, run


class TestSleatorTarjan:
    def test_lru_achieves_classical_bound(self):
        _, run = _attack(
            SleatorTarjanAdversary,
            lambda m: ItemLRU(K, m),
            k=K,
            h=H,
            B=B,
        )
        assert run.empirical_ratio == pytest.approx(
            sleator_tarjan_lower(K, H), rel=0.02
        )

    def test_claimed_opt_verified_by_belady(self):
        """Single-item blocks => item Belady is true OPT; it must not
        beat the prescription (equality certifies the claim)."""
        adv, run = _attack(
            SleatorTarjanAdversary, lambda m: ItemLRU(K, m), k=K, h=H, B=B
        )
        belady = simulate(
            BeladyItem(H, run.trace.mapping), run.trace
        ).misses
        total_claimed = run.claimed_opt_misses + run.warmup_misses
        assert belady <= total_claimed
        # The prescription is near-tight: Belady saves at most one
        # cycle's worth of slack.
        assert belady >= run.claimed_opt_misses

    def test_fifo_also_pinned(self):
        _, run = _attack(
            SleatorTarjanAdversary, lambda m: ItemFIFO(K, m), k=K, h=H, B=B
        )
        assert run.empirical_ratio >= sleator_tarjan_lower(K, H) * 0.95


class TestTheorem2:
    def test_item_lru_hits_bound(self):
        _, run = _attack(
            ItemCacheAdversary, lambda m: ItemLRU(K, m), k=K, h=H, B=B
        )
        assert run.empirical_ratio == pytest.approx(
            item_cache_lower(K, H, B), rel=0.05
        )

    def test_bound_is_policy_independent_for_item_caches(self):
        for factory in (
            lambda m: ItemLRU(K, m),
            lambda m: ItemFIFO(K, m),
            lambda m: MarkingLRU(K, m),
        ):
            _, run = _attack(ItemCacheAdversary, factory, k=K, h=H, B=B)
            assert run.empirical_ratio >= item_cache_lower(K, H, B) * 0.9

    def test_block_loading_policies_escape(self):
        """Thm 2's trace is block-friendly: IBLP/BlockLRU evade it."""
        for factory in (lambda m: IBLP(K, m), lambda m: BlockLRU(K, m)):
            _, run = _attack(ItemCacheAdversary, factory, k=K, h=H, B=B)
            assert run.empirical_ratio < item_cache_lower(K, H, B) / 2

    def test_requires_h_greater_than_b(self):
        with pytest.raises(ConfigurationError):
            ItemCacheAdversary(K, B, B)

    def test_claimed_opt_achievable_by_clairvoyant_heuristic(self):
        adv, run = _attack(
            ItemCacheAdversary, lambda m: ItemLRU(K, m), k=K, h=H, B=B
        )
        upper = gc_opt_upper(run.trace, H)
        assert upper <= run.claimed_opt_misses + run.warmup_misses


class TestTheorem3:
    H3 = 4

    def test_block_lru_hits_bound(self):
        _, run = _attack(
            BlockCacheAdversary, lambda m: BlockLRU(K, m), k=K, h=self.H3, B=B
        )
        assert run.empirical_ratio == pytest.approx(
            block_cache_lower(K, self.H3, B), rel=0.05
        )

    def test_item_cache_escapes(self):
        """The sparse trace is exactly what item caches are good at."""
        _, run = _attack(
            BlockCacheAdversary, lambda m: ItemLRU(K, m), k=K, h=self.H3, B=B
        )
        assert run.empirical_ratio < block_cache_lower(K, self.H3, B)

    def test_rejects_infeasible_configuration(self):
        with pytest.raises(ConfigurationError):
            BlockCacheAdversary(k=32, h=10, B=8)  # ceil(k/B) < h


class TestTheorem4:
    def test_probes_a_correctly(self):
        for a in (1, 2, 4, 8):
            adv, run = _attack(
                GeneralAdversary,
                lambda m, a=a: AThresholdLRU(K, m, a=a),
                k=K,
                h=H,
                B=B,
            )
            probed = max(max(c) for c in adv.probed_a)
            assert probed == a

    def test_athreshold_family_matches_formula(self):
        for a in (1, 2, 4, 8):
            adv, run = _attack(
                GeneralAdversary,
                lambda m, a=a: AThresholdLRU(K, m, a=a),
                k=K,
                h=H,
                B=B,
            )
            assert run.empirical_ratio == pytest.approx(
                general_a_lower(K, H, B, a), rel=0.06
            )

    def test_every_policy_at_least_general_lower_bound(self):
        for factory in (
            lambda m: ItemLRU(K, m),
            lambda m: BlockLRU(K, m),
            lambda m: IBLP(K, m),
            lambda m: MarkingLRU(K, m),
        ):
            _, run = _attack(GeneralAdversary, factory, k=K, h=H, B=B)
            assert run.empirical_ratio >= gc_general_lower(K, H, B) * 0.9

    def test_iblp_lands_near_lower_bound(self):
        """IBLP loads whole blocks (a=1), the optimal extreme here."""
        adv, run = _attack(GeneralAdversary, lambda m: IBLP(K, m), k=K, h=H, B=B)
        probed = max(max(c) for c in adv.probed_a)
        assert probed == 1
        assert run.empirical_ratio <= general_a_lower(K, H, B, 1) * 1.05

    def test_gcm_randomization_beats_its_deterministic_a(self):
        adv, run = _attack(GeneralAdversary, lambda m: GCM(K, m), k=K, h=H, B=B)
        probed = max(max(c) for c in adv.probed_a)
        # The adversary cannot pin the randomized policy to the full
        # deterministic penalty of its probed a.
        assert run.empirical_ratio <= general_a_lower(K, H, B, probed) * 1.05


class TestPlumbing:
    def test_capacity_mismatch_rejected(self):
        adv = SleatorTarjanAdversary(K, H, B)
        mapping = adv.make_mapping(2)
        with pytest.raises(ConfigurationError):
            adv.run(ItemLRU(K // 2, mapping), cycles=2)

    def test_block_size_mismatch_rejected(self):
        from repro.core.mapping import FixedBlockMapping

        adv = SleatorTarjanAdversary(K, H, B)
        wrong = FixedBlockMapping(universe=1024, block_size=B * 2)
        with pytest.raises(ConfigurationError):
            adv.run(ItemLRU(K, wrong), cycles=1)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            SleatorTarjanAdversary(10, 20, 4)
        with pytest.raises(ConfigurationError):
            SleatorTarjanAdversary(10, 0, 4)

    def test_trace_metadata_recorded(self):
        _, run = _attack(
            SleatorTarjanAdversary, lambda m: ItemLRU(K, m), k=K, h=H, B=B
        )
        assert run.trace.metadata["adversary"] == "SleatorTarjanAdversary"
        assert run.trace.metadata["k"] == K

    def test_more_cycles_tighten_nothing_but_stay_consistent(self):
        ratios = []
        for cycles in (2, 6):
            _, run = _attack(
                ItemCacheAdversary,
                lambda m: ItemLRU(K, m),
                cycles=cycles,
                k=K,
                h=H,
                B=B,
            )
            ratios.append(run.empirical_ratio)
        assert ratios[0] == pytest.approx(ratios[1], rel=0.02)

"""Tests for the shared value types and the exception hierarchy."""

import pytest

from repro.errors import (
    CapacityExceeded,
    ConfigurationError,
    GCCachingError,
    IllegalLoadSet,
    ProtocolViolation,
    SolverError,
    TraceFormatError,
)
from repro.types import AccessOutcome, HitKind, SimResult


class TestHitKind:
    def test_is_hit(self):
        assert not HitKind.MISS.is_hit
        assert HitKind.TEMPORAL_HIT.is_hit
        assert HitKind.SPATIAL_HIT.is_hit

    def test_values_stable(self):
        # Serialized in CSVs; changing them breaks artifacts.
        assert HitKind.MISS.value == "miss"
        assert HitKind.TEMPORAL_HIT.value == "temporal"
        assert HitKind.SPATIAL_HIT.value == "spatial"


class TestAccessOutcome:
    def test_hit_with_loads_rejected(self):
        with pytest.raises(ValueError):
            AccessOutcome(item=1, hit=True, loaded=frozenset([1]))

    def test_miss_must_load_item(self):
        with pytest.raises(ValueError):
            AccessOutcome(item=1, hit=False, loaded=frozenset([2]))

    def test_frozen(self):
        out = AccessOutcome(item=1, hit=True)
        with pytest.raises(AttributeError):
            out.hit = False  # type: ignore[misc]

    def test_defaults_empty(self):
        out = AccessOutcome(item=1, hit=True)
        assert out.loaded == frozenset()
        assert out.evicted == frozenset()


class TestSimResult:
    def test_ratios(self):
        r = SimResult(accesses=10, misses=4, temporal_hits=3, spatial_hits=3)
        assert r.hits == 6
        assert r.miss_ratio == pytest.approx(0.4)
        assert r.hit_ratio == pytest.approx(0.6)

    def test_empty_result(self):
        r = SimResult()
        assert r.miss_ratio == 0.0
        assert r.hit_ratio == 0.0
        assert r.mean_load_size == 0.0

    def test_mean_load_size(self):
        r = SimResult(accesses=8, misses=2, loaded_items=10)
        assert r.mean_load_size == 5.0

    def test_mean_load_set_size_and_alias(self):
        r = SimResult(accesses=8, misses=2, loaded_items=10)
        assert r.mean_load_set_size == 5.0
        assert r.mean_load_size == r.mean_load_set_size
        assert SimResult().mean_load_set_size == 0.0

    def test_spatial_fraction(self):
        r = SimResult(accesses=10, misses=4, temporal_hits=2, spatial_hits=4)
        assert r.spatial_fraction == pytest.approx(4 / 6)
        assert SimResult().spatial_fraction == 0.0
        no_hits = SimResult(accesses=3, misses=3)
        assert no_hits.spatial_fraction == 0.0

    def test_as_row_includes_spatial_fraction(self):
        r = SimResult(accesses=10, misses=4, temporal_hits=3, spatial_hits=3)
        assert r.as_row()["spatial_fraction"] == pytest.approx(0.5)

    def test_as_row_includes_metadata(self):
        r = SimResult(
            accesses=1, misses=1, policy="p", capacity=4, metadata={"x": 9}
        )
        row = r.as_row()
        assert row["policy"] == "p"
        assert row["x"] == 9
        assert row["miss_ratio"] == 1.0

    def test_merge_adds_counters(self):
        a = SimResult(accesses=5, misses=2, policy="p", capacity=4)
        b = SimResult(accesses=3, misses=1, policy="p", capacity=4)
        m = a.merged_with(b)
        assert (m.accesses, m.misses) == (8, 3)

    def test_merge_requires_same_config(self):
        a = SimResult(policy="p", capacity=4)
        b = SimResult(policy="q", capacity=4)
        with pytest.raises(ValueError):
            a.merged_with(b)


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for exc in (
            ConfigurationError,
            ProtocolViolation,
            CapacityExceeded,
            IllegalLoadSet,
            TraceFormatError,
            SolverError,
        ):
            assert issubclass(exc, GCCachingError)

    def test_protocol_specializations(self):
        assert issubclass(CapacityExceeded, ProtocolViolation)
        assert issubclass(IllegalLoadSet, ProtocolViolation)

    def test_configuration_is_value_error(self):
        # Callers may catch ValueError for bad parameters.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(TraceFormatError, ValueError)

    def test_solver_is_runtime_error(self):
        assert issubclass(SolverError, RuntimeError)

    def test_catching_base_catches_all(self):
        with pytest.raises(GCCachingError):
            raise IllegalLoadSet("nope")

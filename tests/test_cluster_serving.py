"""Cluster serving bridge: the unmodified event loop over N shards.

``serve_cluster`` must collapse to single-cache ``serve`` exactly at
``n_shards=1`` — full :meth:`ServingResult.fields` payloads, latency
histograms included — because the serving loop is reused verbatim and
only the engine behind it changes.  Multi-shard runs must still serve
every arrival exactly once under both hash schemes and both queue
disciplines, with the scheme's effect confined to the cache taxonomy.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.cluster.serving_bridge import ClusterEngine, serve_cluster
from repro.serving import ArrivalSpec, ServiceModel, ServingConfig, serve_policy
from repro.workloads import markov_spatial

CAPACITY = 128


def trace():
    return markov_spatial(
        length=4000, universe=512, block_size=8, stay=0.85, seed=3
    )


def config(queue="fifo", rate=0.02):
    return ServingConfig(
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=2),
        service=ServiceModel(t_hit=1.0, t_miss=50.0, t_item=1.0),
        concurrency=3,
        queue=queue,
    )


@pytest.mark.parametrize("policy", ["item-lru", "iblp", "gcm"])
@pytest.mark.parametrize("scheme", ["block", "item"])
def test_single_shard_serving_bit_identical(policy, scheme):
    tr = trace()
    reference = serve_policy(policy, CAPACITY, tr, config())
    clustered = serve_cluster(
        policy, CAPACITY, tr, ClusterSpec(n_shards=1, scheme=scheme), config()
    )
    assert clustered.fields() == reference.fields()


@pytest.mark.parametrize("scheme", ["block", "item"])
@pytest.mark.parametrize("queue", ["fifo", "sjf"])
def test_multi_shard_serving_serves_every_request_once(scheme, queue):
    tr = trace()
    result = serve_cluster(
        "iblp",
        CAPACITY,
        tr,
        ClusterSpec(n_shards=4, scheme=scheme),
        config(queue=queue),
    )
    assert result.completions == len(tr)
    assert result.sim.accesses == len(tr)
    total_hits = result.sim.temporal_hits + result.sim.spatial_hits
    assert result.sim.misses + total_hits == len(tr)
    assert result.p99 >= result.p50 > 0


def test_scheme_shows_up_in_tail_latency_on_spatial_workload():
    """Same arrivals, same servers: item-striping's lost spatial hits
    surface as a strictly worse mean latency than block-aware hashing
    on the same 4-shard cluster."""
    tr = trace()
    block = serve_cluster(
        "iblp", 256, tr, ClusterSpec(n_shards=4, scheme="block"), config()
    )
    item = serve_cluster(
        "iblp", 256, tr, ClusterSpec(n_shards=4, scheme="item"), config()
    )
    assert block.arrivals == item.arrivals
    assert item.sim.miss_ratio > block.sim.miss_ratio
    assert item.mean_latency > block.mean_latency


def test_cluster_engine_merges_counters_and_tracks_outcomes():
    tr = trace()
    engine = ClusterEngine(
        "item-lru", CAPACITY, tr, ClusterSpec(n_shards=4, scheme="block")
    )
    for item in tr.items[:500].tolist():
        engine.access(item)
        assert engine.last_outcome is not None
        assert engine.last_outcome.item == item
    shard_sums = {
        f: sum(getattr(r, f) for r in engine.shard_results())
        for f in ("accesses", "misses", "loaded_items", "evicted_items")
    }
    assert engine.result.accesses == 500 == shard_sums["accesses"]
    assert engine.result.misses == shard_sums["misses"]
    assert engine.result.loaded_items == shard_sums["loaded_items"]
    assert engine.result.evicted_items == shard_sums["evicted_items"]
    assert len(engine.resident) <= CAPACITY

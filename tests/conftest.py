"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace


@pytest.fixture
def small_mapping() -> FixedBlockMapping:
    """64 items in blocks of 4."""
    return FixedBlockMapping(universe=64, block_size=4)


@pytest.fixture
def medium_mapping() -> FixedBlockMapping:
    """1024 items in blocks of 8."""
    return FixedBlockMapping(universe=1024, block_size=8)


@pytest.fixture
def scan_trace(small_mapping) -> Trace:
    """One sequential pass over the small universe."""
    return Trace(np.arange(small_mapping.universe), small_mapping)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_trace(
    mapping: FixedBlockMapping, length: int, seed: int = 0
) -> Trace:
    """Uniform random trace over a mapping (helper, not a fixture)."""
    gen = np.random.default_rng(seed)
    return Trace(
        gen.integers(0, mapping.universe, size=length, dtype=np.int64), mapping
    )

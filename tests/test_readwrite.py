"""Read/write extension tests: dirty tracking and write amplification."""

import numpy as np
import pytest

from repro.core.mapping import FixedBlockMapping
from repro.core.readwrite import (
    RWTrace,
    WritebackSimulator,
    make_rw_trace,
)
from repro.core.trace import Trace
from repro.errors import ConfigurationError, TraceFormatError
from repro.policies import BlockLRU, IBLP, ItemLRU
from repro.workloads import sequential_scan, zipf_items


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=64, block_size=4)


def _rw(items, writes, mapping):
    trace = Trace(np.asarray(items, dtype=np.int64), mapping)
    return RWTrace(trace=trace, is_write=np.asarray(writes, dtype=bool))


class TestRWTrace:
    def test_alignment_enforced(self, mapping):
        trace = Trace(np.array([0, 1]), mapping)
        with pytest.raises(TraceFormatError):
            RWTrace(trace=trace, is_write=np.array([True]))

    def test_write_fraction(self, mapping):
        rw = _rw([0, 1, 2, 3], [1, 0, 1, 0], mapping)
        assert rw.write_fraction == 0.5

    def test_make_rw_trace_seeded(self, mapping):
        trace = Trace(np.arange(64), mapping)
        a = make_rw_trace(trace, 0.3, seed=1)
        b = make_rw_trace(trace, 0.3, seed=1)
        assert (a.is_write == b.is_write).all()
        assert 0.1 < a.write_fraction < 0.5

    def test_make_rw_trace_validates(self, mapping):
        trace = Trace(np.array([0]), mapping)
        with pytest.raises(ConfigurationError):
            make_rw_trace(trace, 1.5)


class TestWritebackAccounting:
    def test_read_only_trace_never_writes_back(self, mapping):
        rw = _rw([0, 1, 2, 3, 8], [0] * 5, mapping)
        stats = WritebackSimulator(ItemLRU(4, mapping)).run(rw)
        assert stats.writebacks == 0
        assert stats.write_amplification == 0.0

    def test_final_flush_counts(self, mapping):
        # One write; item never evicted; flushed at end of trace.
        rw = _rw([0], [1], mapping)
        stats = WritebackSimulator(ItemLRU(4, mapping)).run(rw)
        assert stats.writebacks == 1
        assert stats.rmw_writebacks == 1  # 1 of 4 items dirty
        assert stats.device_items_written == 4
        assert stats.write_amplification == 4.0

    def test_fully_dirty_block_needs_no_rmw(self, mapping):
        rw = _rw([0, 1, 2, 3], [1, 1, 1, 1], mapping)
        stats = WritebackSimulator(BlockLRU(8, mapping)).run(rw)
        assert stats.writebacks == 1
        assert stats.rmw_writebacks == 0
        assert stats.write_amplification == 1.0

    def test_eviction_triggers_writeback(self, mapping):
        # Write item 0, then force its eviction with a capacity-1 cache.
        rw = _rw([0, 5], [1, 0], mapping)
        stats = WritebackSimulator(ItemLRU(1, mapping)).run(rw)
        assert stats.writebacks == 1
        assert stats.dirty_items_flushed == 1

    def test_coalescing_within_one_eviction(self, mapping):
        # Block cache evicts blocks whole: 4 dirty items, one writeback.
        rw = _rw([0, 1, 2, 3, 8], [1, 1, 1, 1, 0], mapping)
        stats = WritebackSimulator(BlockLRU(4, mapping)).run(rw)
        assert stats.writebacks == 1
        assert stats.dirty_items_flushed == 4

    def test_rewrite_before_eviction_coalesces(self, mapping):
        # Writing the same item repeatedly is one flush, not many.
        rw = _rw([0, 0, 0], [1, 1, 1], mapping)
        stats = WritebackSimulator(ItemLRU(2, mapping)).run(rw)
        assert stats.writes == 3
        assert stats.dirty_items_flushed == 1
        assert stats.writebacks == 1


class TestWriteAmplificationTradeoff:
    def test_sequential_writes_favor_block_granularity(self):
        trace = sequential_scan(512, block_size=8, repeats=1)
        rw = make_rw_trace(trace, 1.0, seed=0)  # all writes
        k = 64
        blk = WritebackSimulator(BlockLRU(k, trace.mapping)).run(rw)
        itm = WritebackSimulator(ItemLRU(k, trace.mapping)).run(rw)
        # Both coalesce sequential dirty data well, but the block cache
        # always retires fully-dirty blocks (no RMW).
        assert blk.rmw_fraction == 0.0
        assert blk.write_amplification == pytest.approx(1.0)
        assert itm.write_amplification >= 1.0

    def test_scattered_writes_punish_block_granularity(self):
        # One dirty item per block: every writeback is a whole-block RMW.
        mapping = FixedBlockMapping(universe=512, block_size=8)
        items = np.arange(0, 512, 8, dtype=np.int64)
        rw = _rw(items, [1] * len(items), mapping)
        stats = WritebackSimulator(ItemLRU(16, mapping)).run(rw)
        assert stats.rmw_fraction == 1.0
        assert stats.write_amplification == pytest.approx(8.0)

    def test_iblp_runs_cleanly_with_writes(self):
        trace = zipf_items(4000, 512, alpha=0.9, block_size=8, seed=2)
        rw = make_rw_trace(trace, 0.3, seed=3)
        stats = WritebackSimulator(IBLP(64, trace.mapping)).run(rw)
        assert stats.accesses == 4000
        assert stats.writes == int(rw.is_write.sum())
        assert stats.dirty_items_flushed <= stats.writes
        assert stats.write_amplification >= 1.0

"""AThresholdLRU tests: the Theorem 4 ``a``-parameter family."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import AThresholdLRU, ItemLRU


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=64, block_size=4)


def test_rejects_invalid_a(mapping):
    with pytest.raises(ConfigurationError):
        AThresholdLRU(8, mapping, a=0)


def test_a1_loads_block_on_first_miss(mapping):
    p = AThresholdLRU(16, mapping, a=1)
    out = p.access(1)
    assert out.loaded == frozenset([0, 1, 2, 3])


def test_a2_loads_single_then_block(mapping):
    p = AThresholdLRU(16, mapping, a=2)
    first = p.access(0)
    assert first.loaded == frozenset([0])
    second = p.access(1)  # second distinct miss on block 0
    assert second.loaded == frozenset([1, 2, 3])


def test_hits_do_not_count_toward_threshold(mapping):
    p = AThresholdLRU(16, mapping, a=2)
    p.access(0)
    p.access(0)  # hit
    assert not p.contains(1)
    out = p.access(1)
    assert out.loaded == frozenset([1, 2, 3])


def test_large_a_degenerates_to_item_lru(mapping):
    trace = Trace(
        np.random.default_rng(4).integers(0, 64, 1500, dtype=np.int64), mapping
    )
    athr = simulate(AThresholdLRU(8, mapping, a=99), trace)
    lru = simulate(ItemLRU(8, mapping), trace)
    assert athr.misses == lru.misses


def test_counter_resets_when_block_fully_evicted(mapping):
    p = AThresholdLRU(2, mapping, a=2)
    p.access(0)  # block 0 count = 1
    p.access(4)
    p.access(8)  # evicts 0 -> block 0 fully absent -> counter reset
    out = p.access(1)  # first miss of a new episode for block 0
    assert out.loaded == frozenset([1])


def test_evicts_individual_items_lru_order(mapping):
    p = AThresholdLRU(3, mapping, a=99)  # pure item behaviour
    p.access(0)
    p.access(4)
    p.access(8)
    out = p.access(12)
    assert out.evicted == frozenset([0])


def test_never_evicts_items_being_loaded(mapping):
    # Whole-block load into a tight cache must not evict its own items.
    p = AThresholdLRU(4, mapping, a=1)
    p.access(0)
    out = p.access(4)
    assert out.loaded == frozenset([4, 5, 6, 7])
    assert out.evicted == frozenset([0, 1, 2, 3])


def test_block_larger_than_capacity_is_trimmed(mapping):
    p = AThresholdLRU(2, mapping, a=1)
    out = p.access(1)
    assert 1 in out.loaded
    assert len(out.loaded) <= 2


def test_referee_validates(mapping):
    trace = Trace(
        np.random.default_rng(6).integers(0, 64, 2000, dtype=np.int64), mapping
    )
    for a in (1, 2, 3, 4):
        res = simulate(
            AThresholdLRU(10, mapping, a=a), trace, cross_check_every=83
        )
        assert res.accesses == 2000


def test_reset_preserves_a(mapping):
    p = AThresholdLRU(8, mapping, a=3)
    p.access(0)
    p.reset()
    assert p.a == 3
    assert not p.contains(0)


def test_scan_misses_decrease_with_smaller_a(mapping):
    trace = Trace(np.tile(np.arange(64), 2), mapping)
    misses = {
        a: simulate(AThresholdLRU(16, mapping, a=a), trace).misses
        for a in (1, 2, 4)
    }
    assert misses[1] <= misses[2] <= misses[4]

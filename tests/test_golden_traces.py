"""Golden-trace regression: both engines vs committed truth.

``tests/golden/*.json`` (written by ``tests/golden/regen.py``) hold
small canonical traces with referee-computed results for every
registered policy at two capacities.  Refactors of the referee *or*
the fast kernels diff against this stored truth: a behavior change in
either engine fails here even if the two engines still agree with each
other, which closes the "both drifted together" hole a purely
differential harness leaves open.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.fast import fast_simulate
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import make_policy, policy_names

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))
FIELDS = (
    "accesses",
    "misses",
    "temporal_hits",
    "spatial_hits",
    "loaded_items",
    "evicted_items",
)


def _load(path: Path):
    payload = json.loads(path.read_text())
    m = payload["mapping"]
    if m["kind"] == "fixed":
        mapping = FixedBlockMapping(m["universe"], m["block_size"])
    else:
        mapping = ExplicitBlockMapping(
            m["block_ids"], max_block_size=m["max_block_size"]
        )
    trace = Trace(np.asarray(payload["items"], dtype=np.int64), mapping)
    return trace, payload


def test_golden_fixtures_exist_and_cover_the_registry():
    assert len(GOLDEN_FILES) >= 4
    for path in GOLDEN_FILES:
        _, payload = _load(path)
        assert sorted(payload["expected"]) == sorted(policy_names()), (
            f"{path.name} is stale: regenerate with "
            "`PYTHONPATH=src python tests/golden/regen.py` and review the diff"
        )
        assert "multi_capacity" in payload, (
            f"{path.name} predates the batched-replay payload: regenerate "
            "with `PYTHONPATH=src python tests/golden/regen.py`"
        )


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_referee_matches_golden(path):
    trace, payload = _load(path)
    mismatches = []
    for policy_name, by_capacity in payload["expected"].items():
        for k_str, want in by_capacity.items():
            res = simulate(
                make_policy(policy_name, int(k_str), trace.mapping),
                trace,
                cross_check_every=25,
            )
            got = {f: getattr(res, f) for f in FIELDS}
            if got != want:
                mismatches.append(f"{policy_name}/k={k_str}: {want} -> {got}")
    assert not mismatches, "referee drifted from golden truth:\n" + "\n".join(
        mismatches
    )


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_fast_kernels_match_golden(path):
    trace, payload = _load(path)
    mismatches = []
    checked = 0
    for policy_name, by_capacity in payload["expected"].items():
        for k_str, want in by_capacity.items():
            res = fast_simulate(
                make_policy(policy_name, int(k_str), trace.mapping), trace
            )
            if res is None:  # no kernel for this policy
                continue
            checked += 1
            got = {f: getattr(res, f) for f in FIELDS}
            if got != want:
                mismatches.append(f"{policy_name}/k={k_str}: {want} -> {got}")
    assert checked > 0  # the kernel set must intersect the registry
    assert not mismatches, "fast kernels drifted from golden truth:\n" + "\n".join(
        mismatches
    )


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_multi_capacity_replay_matches_golden(path):
    """One batched replay per policy reproduces the stored referee truth."""
    from repro.core.fast import multi_capacity_replay, multi_capacity_supported

    trace, payload = _load(path)
    mismatches = []
    checked = 0
    for policy_name, entry in payload["multi_capacity"].items():
        if not entry["supported"]:
            # The fixture says no capacity batches here (e.g. Block-LRU
            # over ragged blocks); the kernel must agree, not guess.
            assert not multi_capacity_supported(policy_name, trace, [4, 16])
            continue
        caps = entry["capacities"]
        assert multi_capacity_supported(policy_name, trace, caps)
        results = multi_capacity_replay(policy_name, trace, caps)
        for k in caps:
            want = entry["expected"][str(k)]
            got = {f: getattr(results[k], f) for f in FIELDS}
            checked += 1
            if got != want:
                mismatches.append(f"{policy_name}/k={k}: {want} -> {got}")
    assert checked > 0
    assert not mismatches, (
        "batched multi-capacity replay drifted from golden truth:\n"
        + "\n".join(mismatches)
    )


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_multi_policy_replay_matches_golden(path):
    """ONE shared traversal reproduces the stored referee truth for the
    whole kernel-covered policy matrix — the single-pass engine cannot
    drift even if per-cell ``fast_simulate`` stays correct."""
    from repro.core.fast import multi_policy_replay, multi_policy_supported

    trace, payload = _load(path)
    assert "multi_policy" in payload, (
        f"{path.name} predates the multi-policy payload: regenerate "
        "with `PYTHONPATH=src python tests/golden/regen.py`"
    )
    cells = [tuple(c) for c in payload["multi_policy"]["cells"]]
    assert len(cells) >= 2
    assert multi_policy_supported(cells, trace)
    results = multi_policy_replay(cells, trace)
    mismatches = []
    for (policy_name, k), res in zip(cells, results):
        want = payload["expected"][policy_name][str(k)]
        got = {f: getattr(res, f) for f in FIELDS}
        if got != want:
            mismatches.append(f"{policy_name}/k={k}: {want} -> {got}")
    assert not mismatches, (
        "single-pass multi-policy replay drifted from golden truth:\n"
        + "\n".join(mismatches)
    )

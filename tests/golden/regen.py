"""Regenerate the golden-trace regression fixtures.

Run from the repo root after an *intentional* behavior change::

    PYTHONPATH=src python tests/golden/regen.py

Each fixture is a small canonical trace plus the referee-computed
:class:`SimResult` core fields for **every registered policy** at two
capacities.  ``tests/test_golden_traces.py`` replays the traces through
the referee (all policies) and the fast kernels (supported policies)
and diffs against the stored truth, so a refactor of *either* engine
that changes behavior — or a fixture regenerated to paper over one —
shows up as a reviewable diff of these JSON files.

Randomized policies (``gcm*``, ``item-random``) are pinned by their
default seeds; the fixtures are deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.engine import simulate
from repro.core.fast import (
    FAST_POLICY_NAMES,
    MULTI_CAPACITY_POLICIES,
    multi_capacity_supported,
    multi_policy_supported,
)
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import make_policy, policy_names

HERE = Path(__file__).parent
CAPACITIES = [4, 16]

#: Wider capacity family for the batched multi-capacity payload
#: (includes 6, a non-multiple of every fixture block size, to pin the
#: partial-block slot arithmetic).  Capacities a policy cannot batch on
#: a given trace (Block-LRU below its block size, or over ragged
#: blocks) are dropped per fixture; referee truth is stored for the
#: rest.
MULTI_CAPACITIES = [2, 4, 6, 8, 16, 32]

#: SimResult fields stored per (policy, capacity) cell.
FIELDS = (
    "accesses",
    "misses",
    "temporal_hits",
    "spatial_hits",
    "loaded_items",
    "evicted_items",
)


def golden_traces() -> dict:
    """The canonical fixture traces (small, seeded, diverse geometry)."""
    rng = np.random.default_rng(2022)
    scan = Trace(
        np.tile(np.arange(48, dtype=np.int64), 3), FixedBlockMapping(48, 4)
    )
    zipf = Trace(
        np.minimum((rng.zipf(1.3, 400) - 1) % 64, 63).astype(np.int64),
        FixedBlockMapping(64, 8),
    )
    walk = [0]
    for _ in range(399):
        if rng.random() < 0.8:  # stay in block, possibly another item
            walk.append((walk[-1] // 8) * 8 + int(rng.integers(8)))
        else:
            walk.append(int(rng.integers(64)))
    markov = Trace(np.asarray(walk, dtype=np.int64), FixedBlockMapping(64, 8))
    pollution = Trace(
        np.asarray(
            [x for i in range(200) for x in (0, 8 + (4 * i) % 56)],
            dtype=np.int64,
        ),
        FixedBlockMapping(64, 4),
    )
    ragged = Trace(
        rng.integers(0, 14, 300, dtype=np.int64),
        ExplicitBlockMapping.from_groups(
            [[0], [1, 2], [3, 4, 5], [6, 7, 8, 9], [10], [11, 12, 13]],
            max_block_size=4,
        ),
    )
    return {
        "scan": scan,
        "zipf": zipf,
        "markov": markov,
        "pollution": pollution,
        "ragged": ragged,
    }


def _mapping_payload(mapping) -> dict:
    if isinstance(mapping, FixedBlockMapping):
        return {
            "kind": "fixed",
            "universe": mapping.universe,
            "block_size": mapping.max_block_size,
        }
    block_ids = mapping.blocks_of(np.arange(mapping.universe, dtype=np.int64))
    return {
        "kind": "explicit",
        "block_ids": block_ids.tolist(),
        "max_block_size": mapping.max_block_size,
    }


def main() -> None:
    for name, trace in golden_traces().items():
        expected: dict = {}
        for policy_name in sorted(policy_names()):
            expected[policy_name] = {}
            for k in CAPACITIES:
                policy = make_policy(policy_name, k, trace.mapping)
                res = simulate(policy, trace, cross_check_every=25)
                expected[policy_name][str(k)] = {
                    f: getattr(res, f) for f in FIELDS
                }
        multi: dict = {}
        for policy_name in MULTI_CAPACITY_POLICIES:
            caps = [
                k
                for k in MULTI_CAPACITIES
                if multi_capacity_supported(policy_name, trace, [k])
            ]
            if not caps:
                multi[policy_name] = {"supported": False, "capacities": []}
                continue
            expected_mc = {}
            for k in caps:
                policy = make_policy(policy_name, k, trace.mapping)
                res = simulate(policy, trace, cross_check_every=25)
                expected_mc[str(k)] = {f: getattr(res, f) for f in FIELDS}
            multi[policy_name] = {
                "supported": True,
                "capacities": caps,
                "expected": expected_mc,
            }
        # The single-pass multi-policy engine must reproduce the stored
        # referee truth for every kernel-covered (policy, capacity) cell
        # in ONE shared traversal; the cell list is recorded (truth
        # lives in "expected") so the test replays exactly this matrix.
        multi_policy_cells = [
            [policy_name, k]
            for policy_name in sorted(FAST_POLICY_NAMES)
            for k in CAPACITIES
        ]
        assert multi_policy_supported(
            [tuple(c) for c in multi_policy_cells], trace
        ), f"golden trace {name} lost multi-policy coverage"
        payload = {
            "trace": name,
            "mapping": _mapping_payload(trace.mapping),
            "items": trace.items.tolist(),
            "capacities": CAPACITIES,
            "expected": expected,
            "multi_capacity": multi,
            "multi_policy": {"cells": multi_policy_cells},
        }
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path} ({len(trace)} accesses, "
              f"{len(expected)} policies x {len(CAPACITIES)} capacities)")


if __name__ == "__main__":
    main()

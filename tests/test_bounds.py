"""Closed-form bound tests (Theorems 2-7, Sleator-Tarjan, §5.3)."""

import math

import numpy as np
import pytest

from repro.bounds import (
    block_cache_lower,
    gc_general_lower,
    general_a_lower,
    iblp_block_layer_upper,
    iblp_item_layer_upper,
    iblp_optimal_item_layer,
    iblp_optimal_ratio,
    iblp_ratio,
    iblp_small_k_threshold,
    item_cache_lower,
    lru_competitive_upper,
    optimal_a,
    sleator_tarjan_lower,
)
from repro.errors import ConfigurationError


class TestSleatorTarjan:
    def test_k_equals_2h_gives_2(self):
        assert sleator_tarjan_lower(2000, 1000) == pytest.approx(2.0, rel=1e-3)

    def test_equal_sizes_gives_k(self):
        assert sleator_tarjan_lower(100, 100) == pytest.approx(100.0)

    def test_upper_matches_lower(self):
        assert lru_competitive_upper(500, 200) == sleator_tarjan_lower(500, 200)

    def test_rejects_h_greater_than_k(self):
        with pytest.raises(ConfigurationError):
            sleator_tarjan_lower(10, 20)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            sleator_tarjan_lower(0, 0)


class TestTheorem2:
    def test_formula(self):
        # B(k - B + 1)/(k - h + 1)
        assert item_cache_lower(128, 32, 8) == pytest.approx(
            8 * (128 - 8 + 1) / (128 - 32 + 1)
        )

    def test_b1_reduces_to_sleator_tarjan(self):
        assert item_cache_lower(100, 40, 1) == pytest.approx(
            sleator_tarjan_lower(100, 40)
        )

    def test_roughly_b_times_worse_at_k_2h(self):
        k, h, B = 1_000_000, 500_000, 64
        assert item_cache_lower(k, h, B) / sleator_tarjan_lower(k, h) == (
            pytest.approx(B, rel=0.01)
        )


class TestTheorem3:
    def test_formula(self):
        assert block_cache_lower(128, 4, 8) == pytest.approx(
            128 / (128 - 8 * 3)
        )

    def test_infinite_below_threshold(self):
        assert math.isinf(block_cache_lower(64, 16, 8))
        assert math.isinf(block_cache_lower(64, 9, 8))

    def test_approaches_one_for_huge_k(self):
        assert block_cache_lower(10**9, 4, 8) == pytest.approx(1.0, rel=1e-6)


class TestTheorem4:
    def test_a_extremes_recover_item_and_block_shapes(self):
        k, h, B = 256, 64, 8
        # a=B reproduces the Theorem 2 value.
        assert general_a_lower(k, h, B, B) == pytest.approx(
            item_cache_lower(k, h, B)
        )
        # a=1: 1 + B(h-1)/(k-h+1).
        assert general_a_lower(k, h, B, 1) == pytest.approx(
            1 + B * (h - 1) / (k - h + 1)
        )

    def test_linear_in_a(self):
        k, h, B = 512, 128, 16
        vals = [general_a_lower(k, h, B, a) for a in range(1, B + 1)]
        diffs = np.diff(vals)
        assert np.allclose(diffs, diffs[0])

    def test_optimal_a_switches_at_threshold(self):
        B = 16
        assert optimal_a(1000, 10, B) == 1  # k - h + 1 > B
        assert optimal_a(20, 18, B) == B  # k - h + 1 = 3 < B

    def test_general_lower_is_min_of_extremes(self):
        k, h, B = 300, 100, 8
        assert gc_general_lower(k, h, B) == min(
            general_a_lower(k, h, B, 1), general_a_lower(k, h, B, B)
        )

    def test_rejects_bad_a(self):
        with pytest.raises(ConfigurationError):
            general_a_lower(100, 10, 8, 0)
        with pytest.raises(ConfigurationError):
            general_a_lower(100, 10, 8, 9)


class TestTheorem567:
    def test_item_layer_matches_sleator_tarjan_shape(self):
        assert iblp_item_layer_upper(200, 50) == pytest.approx(200 / 150)

    def test_item_layer_infinite_at_i_le_h(self):
        assert math.isinf(iblp_item_layer_upper(50, 50))
        assert math.isinf(iblp_item_layer_upper(40, 50))

    def test_block_layer_capped_at_b(self):
        assert iblp_block_layer_upper(10, 10**6, 16) == 16

    def test_block_layer_formula(self):
        b, h, B = 100, 5, 8
        assert iblp_block_layer_upper(b, h, B) == pytest.approx(
            (b + 2 * B * h - B) / (b + B)
        )

    def test_thm7_infinite_at_i_le_h(self):
        assert math.isinf(iblp_ratio(50, 100, 60, 8))

    def test_thm7_continuous_at_regime_boundary(self):
        B, b, h = 8.0, 64.0, 5.0
        boundary = (2 * B * b - b + 2 * B * B + B) / (2 * B)
        lo = iblp_ratio(boundary - 1e-6, b, h, B)
        hi = iblp_ratio(boundary + 1e-6, b, h, B)
        assert lo == pytest.approx(hi, rel=1e-3)

    def test_optimal_split_minimizes_thm7(self):
        k, h, B = 50_000, 2_000, 32
        i_star = iblp_optimal_item_layer(k, h, B)
        best = iblp_optimal_ratio(k, h, B)
        scan = min(
            iblp_ratio(i, k - i, h, B)
            for i in np.linspace(h + 1, k, 5000)
        )
        assert best == pytest.approx(scan, rel=1e-4)
        assert h < i_star <= k

    def test_small_k_regime_uses_full_item_layer(self):
        B, h = 64, 1000
        k = int(iblp_small_k_threshold(h, B)) - 100
        assert iblp_optimal_item_layer(k, h, B) == float(k)
        expected = (2 * B * k - B * B - B) / (2 * (k - h))
        assert iblp_optimal_ratio(k, h, B) == pytest.approx(expected)

    def test_upper_bound_above_general_lower(self):
        """Sanity: the Thm 7 UB dominates the Thm 4 LB everywhere."""
        B = 64
        k = 1_280_000
        for h in np.logspace(2, math.log10(k * 0.9), 40):
            assert iblp_optimal_ratio(k, h, B) >= gc_general_lower(k, h, B) * 0.999

    def test_paper_large_cache_approximations(self):
        """§5.3: ratio ~= k(k+2Bh)/(k-h)^2 when k >= 3h >> B."""
        k, B = 10**7, 64
        h = k / 10
        approx = k * (k + 2 * B * h) / (k - h) ** 2
        assert iblp_optimal_ratio(k, h, B) == pytest.approx(approx, rel=0.05)
